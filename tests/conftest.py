"""Shared fixtures: small calibrated datasets and feature instances."""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.data.synthetic import AbusiveDatasetGenerator
from repro.data.tweet import Tweet, UserProfile
from repro.streamml.instance import Instance


@pytest.fixture(scope="session")
def small_stream() -> List[Tweet]:
    """2k-tweet synthetic stream (session-cached; generation is pure)."""
    return AbusiveDatasetGenerator(n_tweets=2000, seed=123).generate_list()


@pytest.fixture(scope="session")
def medium_stream() -> List[Tweet]:
    """8k-tweet synthetic stream for accuracy-sensitive tests."""
    return AbusiveDatasetGenerator(n_tweets=8000, seed=7).generate_list()


@pytest.fixture()
def gaussian_instances() -> List[Instance]:
    """Linearly separable-ish 2-class Gaussian instances."""
    rng = random.Random(0)
    instances = []
    for _ in range(2000):
        label = rng.random() < 0.5
        x = (
            rng.gauss(2.0 if label else 0.0, 1.0),
            rng.gauss(0.0, 1.0),
            rng.gauss(-1.0 if label else 1.0, 1.5),
        )
        instances.append(Instance(x=x, y=int(label)))
    return instances


@pytest.fixture()
def example_tweet() -> Tweet:
    """One hand-built labeled tweet."""
    user = UserProfile(
        user_id="42",
        screen_name="tester",
        created_at=0.0,
        statuses_count=1000,
        listed_count=3,
        followers_count=250,
        friends_count=300,
    )
    return Tweet(
        tweet_id="1",
        text="@alex you are a fucking IDIOT #mad https://t.co/abc",
        created_at=86400.0 * 365,
        user=user,
        label="abusive",
    )


def make_instance(x, y=None, **kwargs) -> Instance:
    """Terse instance constructor for tests."""
    return Instance(x=tuple(float(v) for v in x), y=y, **kwargs)
