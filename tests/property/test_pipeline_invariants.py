"""Property-based invariants for pipeline components on arbitrary text."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive_bow import AdaptiveBagOfWords
from repro.core.config import PipelineConfig
from repro.core.features import N_FEATURES, FeatureExtractor, LabelEncoder
from repro.core.pipeline import AggressionDetectionPipeline
from repro.data.tweet import Tweet, UserProfile

texts = st.text(max_size=280)  # tweets are capped at 280 characters
labels = st.sampled_from(["normal", "abusive", "hateful", None])


def _tweet(text, label):
    return Tweet(
        tweet_id="t",
        text=text,
        created_at=1e6,
        user=UserProfile(user_id="u", created_at=0.0),
        label=label,
    )


class TestFeatureExtractorTotality:
    @given(text=texts, label=labels)
    @settings(max_examples=120, deadline=None)
    def test_any_text_yields_full_vector(self, text, label):
        extractor = FeatureExtractor(encoder=LabelEncoder(3))
        instance = extractor.extract(_tweet(text, label))
        assert instance.n_features == N_FEATURES
        assert all(isinstance(v, float) for v in instance.x)
        # Counting features are non-negative.
        for index in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 16):
            assert instance.x[index] >= 0.0

    @given(text=texts)
    @settings(max_examples=60, deadline=None)
    def test_preprocessing_toggle_total(self, text):
        for preprocessing in (True, False):
            extractor = FeatureExtractor(preprocessing=preprocessing)
            extractor.extract(_tweet(text, None))

    @given(text=texts)
    @settings(max_examples=60, deadline=None)
    def test_deobfuscation_total(self, text):
        extractor = FeatureExtractor(deobfuscate=True)
        extractor.extract(_tweet(text, "abusive"))


class TestAdaptiveBowInvariants:
    words_lists = st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=12,
        ),
        max_size=15,
    )

    @given(updates=st.lists(
        st.tuples(words_lists, st.booleans()), max_size=40
    ))
    @settings(max_examples=60, deadline=None)
    def test_counts_and_size_stay_consistent(self, updates):
        bow = AdaptiveBagOfWords(
            seed_words=["alpha", "beta"], update_interval=7
        )
        for tokens, is_aggressive in updates:
            bow.update(tokens, is_aggressive)
        assert len(bow) >= 0
        assert bow.n_added >= 0 and bow.n_removed >= 0
        # Size history x-coordinates are monotonically increasing.
        xs = [x for x, _ in bow.size_history]
        assert xs == sorted(xs)

    @given(tokens=words_lists)
    @settings(max_examples=60, deadline=None)
    def test_count_matches_bounded_by_len(self, tokens):
        bow = AdaptiveBagOfWords(seed_words=["alpha"])
        assert 0 <= bow.count_matches(tokens) <= len(tokens)


class TestPipelineTotality:
    @given(items=st.lists(st.tuples(texts, labels), min_size=1, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_pipeline_survives_arbitrary_tweets(self, items):
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=3))
        for index, (text, label) in enumerate(items):
            tweet = Tweet(
                tweet_id=str(index),
                text=text,
                created_at=1e6 + index,
                user=UserProfile(user_id=str(index % 3), created_at=0.0),
                label=label,
            )
            classified = pipeline.process(tweet)
            assert classified.predicted in (0, 1, 2)
        labeled = sum(1 for _, label in items if label is not None)
        assert pipeline.n_labeled == labeled
        assert pipeline.n_unlabeled == len(items) - labeled
        metrics = pipeline.evaluator.summary()
        assert 0.0 <= metrics["accuracy"] <= 1.0
