"""Property tests for metric snapshot merge semantics.

The driver folds per-partition snapshots in arrival order, and the
supervisor may fold a checkpointed snapshot on top of that — so merge
must be associative (and, for the exact fields, commutative) or the
same run would report different totals depending on partition
completion order. Counters, gauges, and histogram count/sum/min/max
are exactly associative; the P² quantile sketches are only
approximately so and are therefore excluded from the equality checks
(their accuracy is covered in ``tests/obs/test_metrics.py``).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
amounts = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)

partition = st.fixed_dictionaries(
    {
        "counts": st.lists(amounts, max_size=8),
        "gauge": st.none() | finite,
        "observations": st.lists(finite, max_size=20),
    }
)


def _registry_for(data):
    registry = MetricsRegistry()
    for amount in data["counts"]:
        registry.counter("events_total", engine="p").inc(amount)
    if data["gauge"] is not None:
        registry.gauge("size").set(data["gauge"])
    hist = registry.histogram("latency_seconds")
    for value in data["observations"]:
        hist.observe(value)
    return registry


def _exact_view(registry):
    """Merge-exact registry state: counters, gauges, histogram fields."""
    snap = registry.snapshot()
    return {
        "counters": snap.counters,
        "gauges": snap.gauges,
        "histograms": {
            key: (state.count, state.sum, state.min, state.max)
            for key, state in snap.histograms.items()
        },
    }


def _merged(*parts):
    base = _registry_for(parts[0])
    for part in parts[1:]:
        base.merge_snapshot(_registry_for(part).snapshot())
    return base


def _assert_exact_equal(left, right):
    a, b = _exact_view(left), _exact_view(right)
    assert a["counters"].keys() == b["counters"].keys()
    for key in a["counters"]:
        assert a["counters"][key] == pytest.approx(b["counters"][key])
    assert a["gauges"] == b["gauges"]
    assert a["histograms"].keys() == b["histograms"].keys()
    for key in a["histograms"]:
        count_a, sum_a, min_a, max_a = a["histograms"][key]
        count_b, sum_b, min_b, max_b = b["histograms"][key]
        assert count_a == count_b
        assert sum_a == pytest.approx(sum_b)
        assert min_a == min_b
        assert max_a == max_b


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(partition, partition, partition)
    def test_merge_is_associative(self, a, b, c):
        left = _registry_for(a)
        bc = _registry_for(b)
        bc.merge_snapshot(_registry_for(c).snapshot())
        left.merge_snapshot(bc.snapshot())  # a ⊕ (b ⊕ c)
        right = _merged(a, b, c)  # (a ⊕ b) ⊕ c
        _assert_exact_equal(left, right)

    @settings(max_examples=60, deadline=None)
    @given(partition, partition)
    def test_exact_fields_commute(self, a, b):
        _assert_exact_equal(_merged(a, b), _merged(b, a))

    @settings(max_examples=60, deadline=None)
    @given(partition, partition)
    def test_merge_conserves_counts(self, a, b):
        merged = _merged(a, b)
        assert merged.total("events_total") == pytest.approx(
            sum(a["counts"]) + sum(b["counts"])
        )
        assert merged.histogram("latency_seconds").count == len(
            a["observations"]
        ) + len(b["observations"])

    @settings(max_examples=40, deadline=None)
    @given(partition)
    def test_merging_an_empty_snapshot_is_identity(self, a):
        merged = _registry_for(a)
        merged.merge_snapshot(MetricsRegistry().snapshot())
        _assert_exact_equal(merged, _registry_for(a))
