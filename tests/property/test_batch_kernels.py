"""Property tests: batch kernels must be bit-identical to scalar paths.

The ``*_many`` kernels (``Normalizer.observe_many`` /
``transform_many`` / ``observe_and_transform_many``,
``StreamClassifier.learn_many`` / ``predict_proba_many``) exist purely
to strip per-row dispatch out of the micro-batch partition loops. Their
contract is that running a batch through a kernel leaves the object in
*exactly* the state the scalar path would — same statistics, same clip
counters, same model weights, same outputs, compared with ``==`` — so
the fused partition path and the original per-tweet loop are
interchangeable. The fused one-pass feature extraction carries the same
contract across every degrade tier.
"""

from __future__ import annotations

import copy
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive_bow import FixedBagOfWords
from repro.core.features import DegradeTier, FeatureExtractor, LabelEncoder
from repro.core.normalization import KINDS, make_normalizer
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.streamml.arf import AdaptiveRandomForest
from repro.streamml.hoeffding_tree import HoeffdingTree
from repro.streamml.instance import Instance, InstanceBlock
from repro.streamml.slr import StreamingLogisticRegression

N_FEATURES = 5

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

rows = st.lists(
    st.lists(finite, min_size=N_FEATURES, max_size=N_FEATURES),
    min_size=0,
    max_size=30,
)

labels = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=2)),
    min_size=0,
    max_size=30,
)


def _instances(xs, ys):
    return [
        Instance(x=tuple(x), y=y)
        for x, y in zip(xs, ys + [None] * (len(xs) - len(ys)))
    ]


def _normalizer_state(normalizer):
    """Comparable full state: counters plus a probe transform."""
    probe = tuple(float(i) for i in range(N_FEATURES))
    clone = copy.deepcopy(normalizer)
    return (
        normalizer.observed,
        normalizer.n_transformed,
        normalizer.n_clipped,
        clone.transform(probe),
    )


NORMALIZER_KINDS = tuple(KINDS) + ("none",)


class TestNormalizerKernels:
    @pytest.mark.parametrize("kind", NORMALIZER_KINDS)
    @given(xs=rows)
    @settings(max_examples=40, deadline=None)
    def test_observe_many_matches_scalar(self, kind, xs):
        scalar = make_normalizer(kind, N_FEATURES)
        batch = make_normalizer(kind, N_FEATURES)
        for x in xs:
            scalar.observe(x)
        batch.observe_many(xs)
        assert _normalizer_state(scalar) == _normalizer_state(batch)

    @pytest.mark.parametrize("kind", NORMALIZER_KINDS)
    @given(warm=rows, xs=rows)
    @settings(max_examples=40, deadline=None)
    def test_transform_many_matches_scalar(self, kind, warm, xs):
        scalar = make_normalizer(kind, N_FEATURES)
        scalar.observe_many(warm)
        batch = copy.deepcopy(scalar)
        expected = [scalar.transform(x) for x in xs]
        assert batch.transform_many(xs) == expected
        assert _normalizer_state(scalar) == _normalizer_state(batch)

    @pytest.mark.parametrize("kind", NORMALIZER_KINDS)
    @given(warm=rows, xs=rows)
    @settings(max_examples=40, deadline=None)
    def test_observe_and_transform_many_matches_scalar(self, kind, warm, xs):
        scalar = make_normalizer(kind, N_FEATURES)
        scalar.observe_many(warm)
        batch = copy.deepcopy(scalar)
        expected = [scalar.observe_and_transform(x) for x in xs]
        assert batch.observe_and_transform_many(xs) == expected
        assert _normalizer_state(scalar) == _normalizer_state(batch)


def _model_for(name, n_classes=3):
    if name == "slr":
        return StreamingLogisticRegression(
            n_classes=n_classes, regularizer="l2"
        )
    if name == "ht":
        return HoeffdingTree(n_classes=n_classes, grace_period=5)
    return AdaptiveRandomForest(n_classes=n_classes, ensemble_size=3, seed=11)


class TestModelKernels:
    """learn_many/predict_proba_many ≡ scalar loops for SLR, HT, ARF."""

    @pytest.mark.parametrize("name", ["slr", "ht", "arf"])
    @given(xs=rows, ys=labels)
    @settings(max_examples=20, deadline=None)
    def test_learn_many_matches_learn_one(self, name, xs, ys):
        instances = [
            inst.with_label(inst.y if inst.y is not None else 0)
            for inst in _instances(xs, ys)
        ]
        scalar = _model_for(name)
        batch = _model_for(name)
        for inst in instances:
            scalar.learn_one(inst)
        batch.learn_many(instances)
        assert pickle.dumps(scalar) == pickle.dumps(batch)

    @pytest.mark.parametrize("name", ["slr", "ht", "arf"])
    @given(xs=rows, ys=labels)
    @settings(max_examples=20, deadline=None)
    def test_predict_proba_many_matches_scalar(self, name, xs, ys):
        model = _model_for(name)
        train = [
            inst.with_label(inst.y if inst.y is not None else 0)
            for inst in _instances(xs, ys)
        ]
        model.learn_many(train)
        probe = [tuple(x) for x in xs]
        expected = [model.predict_proba_one(x) for x in probe]
        assert model.predict_proba_many(probe) == expected

    @given(xs=rows, ys=labels)
    @settings(max_examples=20, deadline=None)
    def test_slr_learn_many_all_regularizers(self, xs, ys):
        instances = [
            inst.with_label(inst.y if inst.y is not None else 1)
            for inst in _instances(xs, ys)
        ]
        for reg in ("zero", "l1", "l2"):
            scalar = StreamingLogisticRegression(
                n_classes=3, regularizer=reg, decay=0.002
            )
            batch = StreamingLogisticRegression(
                n_classes=3, regularizer=reg, decay=0.002
            )
            for inst in instances:
                scalar.learn_one(inst)
            batch.learn_many(instances)
            assert scalar.weights == batch.weights
            assert scalar.bias == batch.bias
            assert scalar.instances_seen == batch.instances_seen


class TestInstanceBlock:
    @given(xs=rows, ys=labels)
    @settings(max_examples=30, deadline=None)
    def test_columns_parallel_to_instances(self, xs, ys):
        instances = _instances(xs, ys)
        block = InstanceBlock(instances)
        assert len(block) == len(instances)
        assert block.xs == [inst.x for inst in instances]
        assert block.ys == [inst.y for inst in instances]
        assert [b for b in block] == instances
        assert block.labeled().instances == [
            inst for inst in instances if inst.y is not None
        ]

    @given(xs=rows, ys=labels)
    @settings(max_examples=30, deadline=None)
    def test_with_xs_preserves_metadata(self, xs, ys):
        block = InstanceBlock(_instances(xs, ys))
        replaced = block.with_xs([tuple(0.0 for _ in x) for x in block.xs])
        assert replaced.ys == block.ys
        assert all(all(v == 0.0 for v in x) for x in replaced.xs)
        with pytest.raises(ValueError):
            block.with_xs(block.xs + [(0.0,) * N_FEATURES])


class TestFusedExtractionAcrossTiers:
    """The fused one-pass analyzer must impute exactly the tier-skipped
    features and agree with the FULL tier on everything else."""

    @pytest.fixture(scope="class")
    def stream(self):
        return AbusiveDatasetGenerator(n_tweets=120, seed=31).generate_list()

    @pytest.mark.parametrize(
        "tier", [DegradeTier.FULL, DegradeTier.NO_POS, DegradeTier.TEXT_ONLY]
    )
    @pytest.mark.parametrize("preprocessing", [True, False])
    def test_tiers_differ_only_in_imputed_features(
        self, stream, tier, preprocessing
    ):
        from repro.core.features import (
            FEATURE_NAMES,
            TIER_IMPUTED_VALUE,
            TIER_SKIPPED_FEATURES,
        )

        full = FeatureExtractor(
            LabelEncoder(3),
            preprocessing=preprocessing,
            bag_of_words=FixedBagOfWords(),
        )
        tiered = FeatureExtractor(
            LabelEncoder(3),
            preprocessing=preprocessing,
            bag_of_words=FixedBagOfWords(),
            tier=tier,
        )
        skipped = TIER_SKIPPED_FEATURES[tier]
        for tweet in stream:
            a = full.extract(tweet, update_bow=False)
            b = tiered.extract(tweet, update_bow=False)
            for name, va, vb in zip(FEATURE_NAMES, a.x, b.x):
                if name in skipped:
                    assert vb == TIER_IMPUTED_VALUE
                else:
                    assert va == vb
