"""Property tests for partition-merge normalizer semantics.

The micro-batch engine relies on ``merge(split_a, split_b)`` being
equivalent to a single-pass ``observe`` over the concatenated stream —
exactly for min-max and z-score, approximately for the P² variant.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalization import (
    IdentityNormalizer,
    MinMaxNormalizer,
    ZScoreNormalizer,
)

vectors = st.lists(
    st.tuples(
        st.floats(-1e4, 1e4, allow_nan=False),
        st.floats(-1e4, 1e4, allow_nan=False),
    ),
    min_size=1,
    max_size=80,
)

split_points = st.integers(min_value=0, max_value=80)

probes = st.tuples(
    st.floats(-1e4, 1e4, allow_nan=False),
    st.floats(-1e4, 1e4, allow_nan=False),
)


def _split_observe(normalizer_cls, data, split):
    """Observe ``data`` split in two, then merge the halves."""
    left = normalizer_cls(2)
    right = normalizer_cls(2)
    for vector in data[:split]:
        left.observe(vector)
    for vector in data[split:]:
        right.observe(vector)
    left.merge(right)
    return left


class TestMinMaxMergeEqualsSinglePass:
    @given(vectors, split_points, probes)
    @settings(max_examples=60, deadline=None)
    def test_merge_of_splits(self, data, split, probe):
        split = min(split, len(data))
        single = MinMaxNormalizer(2)
        for vector in data:
            single.observe(vector)
        merged = _split_observe(MinMaxNormalizer, data, split)
        assert merged.observed == single.observed == len(data)
        assert merged.transform(probe) == pytest.approx(
            single.transform(probe)
        )

    @given(vectors)
    @settings(max_examples=30, deadline=None)
    def test_merge_with_empty_is_identity(self, data):
        single = MinMaxNormalizer(2)
        for vector in data:
            single.observe(vector)
        merged = _split_observe(MinMaxNormalizer, data, len(data))
        assert merged.transform(data[0]) == pytest.approx(
            single.transform(data[0])
        )


# Integer-valued features keep the variance either exactly zero (all
# duplicates, on both code paths) or comfortably positive, so the
# transform comparison never divides by a rounding-noise-sized std.
int_vectors = st.lists(
    st.tuples(
        st.integers(-10_000, 10_000).map(float),
        st.integers(-10_000, 10_000).map(float),
    ),
    min_size=1,
    max_size=80,
)


class TestZScoreMergeEqualsSinglePass:
    @given(int_vectors, split_points, probes)
    @settings(max_examples=60, deadline=None)
    def test_merge_of_splits(self, data, split, probe):
        split = min(split, len(data))
        single = ZScoreNormalizer(2)
        for vector in data:
            single.observe(vector)
        merged = _split_observe(ZScoreNormalizer, data, split)
        assert merged.observed == single.observed == len(data)
        expected = single.transform(probe)
        got = merged.transform(probe)
        for g, e in zip(got, expected):
            assert g == pytest.approx(e, rel=1e-6, abs=1e-6)

    @given(vectors, split_points)
    @settings(max_examples=30, deadline=None)
    def test_merged_moments_match(self, data, split):
        split = min(split, len(data))
        single = ZScoreNormalizer(2)
        for vector in data:
            single.observe(vector)
        merged = _split_observe(ZScoreNormalizer, data, split)
        for merged_stats, single_stats in zip(merged._stats, single._stats):
            assert merged_stats.count == single_stats.count
            assert merged_stats.mean == pytest.approx(
                single_stats.mean, rel=1e-9, abs=1e-8
            )
            assert merged_stats.variance == pytest.approx(
                single_stats.variance, rel=1e-6, abs=1e-4
            )


class TestIdentityMerge:
    @given(vectors, split_points)
    @settings(max_examples=20, deadline=None)
    def test_counts_add_up(self, data, split):
        split = min(split, len(data))
        merged = _split_observe(IdentityNormalizer, data, split)
        assert merged.observed == len(data)
