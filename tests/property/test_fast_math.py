"""Tolerance suite: numpy ``fast_math`` kernels track the scalar kernels.

The default (``fast_math=False``) kernels carry a bit-exact contract
(see ``test_batch_kernels.py``). The numpy fast path trades that for
columnar throughput: it may reassociate float reductions (``cumsum``
prefix moments, fused multiply order), so its contract is *closeness*,
not equality — every output agrees with the scalar kernel within an
rtol pinned per kernel below. Counters (observed / transformed /
clipped / instances_seen) remain exactly equal: only float arithmetic
is allowed to drift, never control flow.

Pinned tolerances (empirical worst case is orders of magnitude below
each pin):

- ``minmax`` / ``minmax_no_outliers`` / ``none``: same IEEE op order
  per lane, drift ~0 — pinned at 1e-12 / 1e-9.
- ``zscore``: cumsum prefix moments cancel catastrophically near equal
  values — pinned at 1e-6 (measured ~1e-15 on typical data).
- SLR weights/probabilities: per-row numpy SGD reorders dot products —
  pinned at 1e-5 over features in ±1e3 (measured ~1e-16 on typical
  data). The feature range is bounded on purpose: reassociation error
  on the logit scales with ``|w|·|x|`` and compounds through SGD, so
  drift grows roughly quadratically with feature magnitude — at the
  ±1e6 the normalizer kernels accept, hypothesis finds >1e-5 relative
  drift, while SLR in the pipeline only ever sees *normalized*
  features in [0, 1].
"""

from __future__ import annotations

import copy
import math

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive_bow import FixedBagOfWords
from repro.core.features import DegradeTier, FeatureExtractor, LabelEncoder
from repro.core.normalization import KINDS, make_normalizer
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.streamml.instance import Instance
from repro.streamml.slr import StreamingLogisticRegression

N_FEATURES = 5

#: Per-kernel relative tolerance — the documented fast-path contract.
RTOL = {
    "minmax": 1e-12,
    "minmax_no_outliers": 1e-9,
    "zscore": 1e-6,
    "none": 1e-12,
    "slr": 1e-5,
}
ABS_TOL = 1e-9

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

rows = st.lists(
    st.lists(finite, min_size=N_FEATURES, max_size=N_FEATURES),
    min_size=0,
    max_size=30,
)

labels = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=2)),
    min_size=0,
    max_size=30,
)

slr_finite = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)

slr_rows = st.lists(
    st.lists(slr_finite, min_size=N_FEATURES, max_size=N_FEATURES),
    min_size=0,
    max_size=30,
)

NORMALIZER_KINDS = tuple(KINDS) + ("none",)


def _close(a, b, rtol):
    if isinstance(a, (tuple, list)):
        return len(a) == len(b) and all(
            _close(x, y, rtol) for x, y in zip(a, b)
        )
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return math.isclose(a, b, rel_tol=rtol, abs_tol=ABS_TOL)


def _pair(kind):
    scalar = make_normalizer(kind, N_FEATURES)
    fast = make_normalizer(kind, N_FEATURES, fast_math=True)
    assert fast.fast_math and not scalar.fast_math
    return scalar, fast


def _counters(normalizer):
    return (
        normalizer.observed,
        normalizer.n_transformed,
        normalizer.n_clipped,
    )


class TestNormalizerTolerance:
    @pytest.mark.parametrize("kind", NORMALIZER_KINDS)
    @given(xs=rows)
    @settings(max_examples=30, deadline=None)
    def test_observe_many_close(self, kind, xs):
        scalar, fast = _pair(kind)
        scalar.observe_many(xs)
        fast.observe_many(xs)
        assert _counters(scalar) == _counters(fast)
        probe = tuple(float(i) for i in range(N_FEATURES))
        rtol = RTOL[kind]
        assert _close(
            copy.deepcopy(scalar).transform(probe),
            copy.deepcopy(fast).transform(probe),
            rtol,
        )

    @pytest.mark.parametrize("kind", NORMALIZER_KINDS)
    @given(warm=rows, xs=rows)
    @settings(max_examples=30, deadline=None)
    def test_transform_many_close(self, kind, warm, xs):
        scalar, fast = _pair(kind)
        scalar.observe_many(warm)
        fast.observe_many(warm)
        rtol = RTOL[kind]
        for a, b in zip(scalar.transform_many(xs), fast.transform_many(xs)):
            assert _close(a, b, rtol)
        assert _counters(scalar) == _counters(fast)

    @pytest.mark.parametrize("kind", NORMALIZER_KINDS)
    @given(warm=rows, xs=rows)
    @settings(max_examples=30, deadline=None)
    def test_observe_and_transform_many_close(self, kind, warm, xs):
        scalar, fast = _pair(kind)
        scalar.observe_many(warm)
        fast.observe_many(warm)
        rtol = RTOL[kind]
        out_scalar = scalar.observe_and_transform_many(xs)
        out_fast = fast.observe_and_transform_many(xs)
        for a, b in zip(out_scalar, out_fast):
            assert _close(a, b, rtol)
        assert _counters(scalar) == _counters(fast)

    @pytest.mark.parametrize("kind", NORMALIZER_KINDS)
    def test_fresh_propagates_fast_math(self, kind):
        _, fast = _pair(kind)
        assert fast.fresh().fast_math


def _slr_pair(reg, decay):
    return (
        StreamingLogisticRegression(
            n_classes=3, regularizer=reg, decay=decay
        ),
        StreamingLogisticRegression(
            n_classes=3, regularizer=reg, decay=decay, fast_math=True
        ),
    )


class TestSLRTolerance:
    @pytest.mark.parametrize("reg", ["zero", "l1", "l2"])
    @pytest.mark.parametrize("decay", [0.0, 0.002])
    @given(xs=slr_rows, ys=labels)
    @settings(max_examples=15, deadline=None)
    def test_learn_and_predict_close(self, reg, decay, xs, ys):
        instances = [
            Instance(x=tuple(x), y=y if y is not None else 1)
            for x, y in zip(xs, ys + [None] * (len(xs) - len(ys)))
        ]
        scalar, fast = _slr_pair(reg, decay)
        scalar.learn_many(instances)
        fast.learn_many(instances)
        assert scalar.instances_seen == fast.instances_seen
        rtol = RTOL["slr"]
        for row_a, row_b in zip(scalar.weights, fast.weights):
            assert _close(row_a, row_b, rtol)
        assert _close(scalar.bias, fast.bias, rtol)
        probe = [tuple(x) for x in xs]
        for a, b in zip(
            scalar.predict_proba_many(probe), fast.predict_proba_many(probe)
        ):
            assert _close(a, b, rtol)

    def test_clone_propagates_fast_math(self):
        _, fast = _slr_pair("l2", 0.0)
        assert fast.clone().fast_math


class TestAcrossDegradeTiers:
    """Fast ≡ scalar on real tier-extracted features, every tier."""

    @pytest.fixture(scope="class")
    def stream(self):
        return AbusiveDatasetGenerator(n_tweets=150, seed=47).generate_list()

    @pytest.mark.parametrize(
        "tier", [DegradeTier.FULL, DegradeTier.NO_POS, DegradeTier.TEXT_ONLY]
    )
    @pytest.mark.parametrize("kind", NORMALIZER_KINDS)
    def test_pipeline_close_on_tier_features(self, stream, tier, kind):
        extractor = FeatureExtractor(
            LabelEncoder(3), bag_of_words=FixedBagOfWords(), tier=tier
        )
        instances = [extractor.extract(t, update_bow=False) for t in stream]
        n = len(instances[0].x)
        xs = [inst.x for inst in instances]

        scalar_norm = make_normalizer(kind, n)
        fast_norm = make_normalizer(kind, n, fast_math=True)
        scalar_out = scalar_norm.observe_and_transform_many(xs)
        fast_out = fast_norm.observe_and_transform_many(xs)
        rtol = RTOL[kind]
        for a, b in zip(scalar_out, fast_out):
            assert _close(a, b, rtol)

        scalar_model = StreamingLogisticRegression(n_classes=3)
        fast_model = StreamingLogisticRegression(n_classes=3, fast_math=True)
        scalar_model.learn_many(
            [i.with_features(x) for i, x in zip(instances, scalar_out)]
        )
        fast_model.learn_many(
            [i.with_features(x) for i, x in zip(instances, fast_out)]
        )
        probe = scalar_out
        for a, b in zip(
            scalar_model.predict_proba_many(probe),
            fast_model.predict_proba_many(probe),
        ):
            assert _close(a, b, RTOL["slr"])
