"""Property-based invariants for every streaming learner.

These run each classifier against arbitrary (hypothesis-generated)
training data and assert the contracts the rest of the system builds
on: probabilities are valid distributions, training is order-robust
(never crashes, never produces NaNs), weights behave like repetition,
and merging is count-conserving.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streamml import (
    AdaptiveRandomForest,
    GaussianNaiveBayes,
    HoeffdingTree,
    Instance,
    MajorityClassClassifier,
    StreamingLogisticRegression,
)

N_FEATURES = 3

feature_values = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)

labeled_instances = st.lists(
    st.builds(
        lambda xs, y: Instance(x=tuple(xs), y=y),
        st.lists(feature_values, min_size=N_FEATURES, max_size=N_FEATURES),
        st.integers(0, 1),
    ),
    min_size=1,
    max_size=60,
)

probes = st.lists(
    st.lists(feature_values, min_size=N_FEATURES, max_size=N_FEATURES),
    min_size=1,
    max_size=5,
)


def _factories():
    return [
        lambda: HoeffdingTree(n_classes=2, grace_period=10),
        lambda: StreamingLogisticRegression(n_classes=2),
        lambda: GaussianNaiveBayes(n_classes=2),
        lambda: MajorityClassClassifier(n_classes=2),
        lambda: AdaptiveRandomForest(n_classes=2, ensemble_size=2, seed=3),
    ]


class TestProbabilityContract:
    @pytest.mark.parametrize("factory", _factories())
    @given(data=labeled_instances, xs=probes)
    @settings(max_examples=25, deadline=None)
    def test_proba_is_distribution(self, factory, data, xs):
        model = factory()
        model.learn_many(data)
        for x in xs:
            proba = model.predict_proba_one(tuple(x))
            assert len(proba) == 2
            assert all(p >= 0 for p in proba)
            assert sum(proba) == pytest.approx(1.0)
            assert all(not math.isnan(p) for p in proba)

    @pytest.mark.parametrize("factory", _factories())
    @given(data=labeled_instances)
    @settings(max_examples=25, deadline=None)
    def test_prediction_in_range(self, factory, data):
        model = factory()
        model.learn_many(data)
        assert model.predict_one(data[0].x) in (0, 1)


class TestTrainingContract:
    @pytest.mark.parametrize("factory", _factories())
    @given(data=labeled_instances)
    @settings(max_examples=20, deadline=None)
    def test_instances_seen_counts(self, factory, data):
        model = factory()
        model.learn_many(data)
        assert model.instances_seen == len(data)

    @given(data=labeled_instances)
    @settings(max_examples=20, deadline=None)
    def test_single_class_data_predicts_that_class(self, data):
        model = HoeffdingTree(n_classes=2, grace_period=10)
        forced = [inst.with_label(1) for inst in data]
        model.learn_many(forced)
        assert model.predict_one(forced[0].x) == 1

    @given(data=labeled_instances)
    @settings(max_examples=20, deadline=None)
    def test_clone_is_fresh(self, data):
        model = StreamingLogisticRegression(n_classes=2)
        model.learn_many(data)
        clone = model.clone()
        assert clone.instances_seen == 0
        assert clone.predict_proba_one(data[0].x) == pytest.approx((0.5, 0.5))


class TestMergeContract:
    @given(data=labeled_instances)
    @settings(max_examples=20, deadline=None)
    def test_nb_merge_equals_sequential(self, data):
        split = len(data) // 2
        together = GaussianNaiveBayes(n_classes=2)
        together.learn_many(data)
        a = GaussianNaiveBayes(n_classes=2)
        b = GaussianNaiveBayes(n_classes=2)
        a.learn_many(data[:split])
        b.learn_many(data[split:])
        a.merge(b)
        assert a.instances_seen == together.instances_seen
        probe = data[0].x
        assert a.predict_proba_one(probe) == pytest.approx(
            together.predict_proba_one(probe), rel=1e-6, abs=1e-9
        )

    @given(data=labeled_instances)
    @settings(max_examples=20, deadline=None)
    def test_ht_structure_copy_merge_conserves_weight(self, data):
        tree = HoeffdingTree(n_classes=2, grace_period=10)
        tree.learn_many(data)
        copy = tree.structure_copy()
        copy.learn_many(data)
        before = sum(leaf.total_weight for leaf in tree.leaves())
        tree.merge(copy)
        after = sum(leaf.total_weight for leaf in tree.leaves())
        assert after == pytest.approx(before + len(data))


class TestSerializationContract:
    @pytest.mark.parametrize("factory", _factories())
    @given(data=labeled_instances, xs=probes)
    @settings(max_examples=10, deadline=None)
    def test_round_trip_preserves_predictions(self, factory, data, xs):
        from repro.streamml.serialize import model_from_dict, model_to_dict

        model = factory()
        model.learn_many(data)
        restored = model_from_dict(model_to_dict(model))
        for x in xs:
            assert restored.predict_proba_one(tuple(x)) == pytest.approx(
                model.predict_proba_one(tuple(x))
            )
