"""Graceful shutdown, end to end: real processes, real SIGTERM.

These tests exercise the signal path exactly as an operator (or a
container runtime) would: spawn ``python -m repro ...``, deliver
SIGTERM, and assert the process drains, persists its state, and exits
0 — with no shared-memory segments left behind.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.data.loader import write_jsonl
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.serve.snapshot import SnapshotStore

REPO_ROOT = Path(__file__).resolve().parents[2]


def _spawn(args, log_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    handle = open(log_path, "w", encoding="utf-8")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=handle, stderr=subprocess.STDOUT,
        env=env, cwd=REPO_ROOT,
    )


def _wait_for(predicate, timeout_s=15.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


def _served_port(log_path):
    try:
        text = Path(log_path).read_text(encoding="utf-8")
    except OSError:
        return None
    for line in text.splitlines():
        if "serving on " in line:
            return int(line.rsplit(":", 1)[1].split(" ")[0])
    return None


def _shm_segments():
    shm = Path("/dev/shm")
    if not shm.exists():  # pragma: no cover - platform-dependent
        return set()
    return {p.name for p in shm.glob("psm_*")}


@pytest.fixture(scope="module")
def published_store(tmp_path_factory, trained_payload):
    root = tmp_path_factory.mktemp("store")
    store = SnapshotStore(root)
    store.publish(trained_payload)
    return root


class TestServeSigterm:
    def test_drains_and_exits_zero(self, tmp_path, published_store):
        log = tmp_path / "serve.log"
        shm_before = _shm_segments()
        proc = _spawn(
            ["serve", str(published_store), "--port", "0"], log
        )
        try:
            assert _wait_for(lambda: _served_port(log) is not None)
            port = _served_port(log)
            with socket.create_connection(
                ("127.0.0.1", port), timeout=5
            ) as conn:
                conn.sendall(
                    b'{"op":"classify","tweet":{"text":"hello"}}\n'
                )
                line = conn.makefile().readline()
                assert json.loads(line)["status"] == 200
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=20) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        text = log.read_text(encoding="utf-8")
        assert "drain complete" in text
        assert "0 in flight" in text
        assert _shm_segments() == shm_before

    def test_sigterm_while_unready_exits_zero(self, tmp_path):
        empty_store = tmp_path / "empty"
        log = tmp_path / "serve.log"
        proc = _spawn(["serve", str(empty_store), "--port", "0"], log)
        try:
            assert _wait_for(lambda: _served_port(log) is not None)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=20) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestRunSigterm:
    def test_training_run_drains_checkpoints_and_exits_zero(
        self, tmp_path
    ):
        data = tmp_path / "data.jsonl"
        write_jsonl(
            AbusiveDatasetGenerator(
                n_tweets=4000, seed=5
            ).generate(),
            data,
        )
        ckpt = tmp_path / "ckpt"
        snaps = tmp_path / "snaps"
        log = tmp_path / "run.log"
        shm_before = _shm_segments()
        proc = _spawn(
            [
                "run", str(data),
                "--checkpoint-dir", str(ckpt),
                "--checkpoint-every", "1",
                "--publish-snapshot", str(snaps),
                "--arrival-rate", "800",
            ],
            log,
        )
        try:
            # Let it make some progress, then ask it to stop.
            assert _wait_for(lambda: (ckpt / "checkpoint.json").exists())
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        text = log.read_text(encoding="utf-8")
        assert "graceful stop complete" in text
        assert "stopped       : graceful drain" in text
        # The final checkpoint is written and resumable.
        payload = json.loads(
            (ckpt / "checkpoint.json").read_text(encoding="utf-8")
        )
        assert payload["cursor"] > 0
        # A serving snapshot landed in the store.
        assert SnapshotStore(snaps).latest_version() is not None
        assert _shm_segments() == shm_before

    def test_resume_after_graceful_stop_completes_stream(self, tmp_path):
        from repro.engine.sequential import SequentialEngine
        from repro.reliability.supervisor import StreamSupervisor

        tweets = AbusiveDatasetGenerator(
            n_tweets=1200, seed=9
        ).generate_list()
        # Baseline: one uninterrupted run.
        baseline = StreamSupervisor(
            SequentialEngine(), chunk_size=200
        ).run(tweets)
        # Stopped run: drain after the second chunk, then resume.
        supervisor = StreamSupervisor(
            SequentialEngine(),
            checkpoint_dir=tmp_path, chunk_size=200,
        )
        chunks_seen = []
        original = supervisor._process_chunk

        def stop_after_two(chunk):
            original(chunk)
            chunks_seen.append(len(chunk))
            if len(chunks_seen) == 2:
                supervisor.request_stop()

        supervisor._process_chunk = stop_after_two
        partial = supervisor.run(tweets)
        assert partial.stopped
        resumed = StreamSupervisor.resume(tmp_path)
        final = resumed.run(tweets)
        assert not final.stopped
        assert final.result.metrics == baseline.result.metrics
