"""Serving-layer fixtures and async client helpers.

The server tests drive a real :class:`AggressionServer` bound to an
ephemeral port inside ``asyncio.run`` — no mocked transports, the same
byte streams a curl/netcat client would produce.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

import pytest

from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.sequential import SequentialEngine
from repro.serve.snapshot import payload_from_source


@pytest.fixture(scope="session")
def trained_payload() -> Dict[str, Any]:
    """One verified-shape snapshot payload from a short training run."""
    engine = SequentialEngine()
    tweets = AbusiveDatasetGenerator(n_tweets=600, seed=11).generate_list()
    engine.process_many(tweets)
    return payload_from_source(engine)


@pytest.fixture(scope="session")
def trained_payload_v2() -> Dict[str, Any]:
    """A second, distinguishable payload (longer training run)."""
    engine = SequentialEngine()
    tweets = AbusiveDatasetGenerator(n_tweets=1200, seed=23).generate_list()
    engine.process_many(tweets)
    return payload_from_source(engine)


async def http_request(
    port: int,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    method: str = "POST",
    host: str = "127.0.0.1",
) -> Tuple[int, Dict[str, str], Any]:
    """One-shot HTTP/1.1 request; returns (status, headers, parsed body)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body or {}).encode("utf-8")
    request = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Content-Type: application/json\r\n"
        "\r\n"
    ).encode("ascii") + payload
    writer.write(request)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, _, body_bytes = raw.partition(b"\r\n\r\n")
    lines = head.decode("utf-8", "replace").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    text = body_bytes.decode("utf-8", "replace")
    if headers.get("content-type", "").startswith("application/json"):
        return status, headers, json.loads(text)
    return status, headers, text


class JsonlClient:
    """A persistent JSONL session against a running server."""

    def __init__(self, port: int, host: str = "127.0.0.1") -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "JsonlClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        assert self._writer is not None and self._reader is not None
        self._writer.write(
            (json.dumps(message, separators=(",", ":")) + "\n").encode()
        )
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the session")
        return json.loads(line)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
