"""Chaos drills for the serving layer: swaps, corruption, floods.

Each drill injects one fault class and asserts the externally
observable contract: every accepted request is answered, corrupt
snapshots never reach clients, and hot swaps drop nothing.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.server import AggressionServer
from repro.serve.snapshot import SnapshotStore

from tests.serve.conftest import http_request

pytestmark = pytest.mark.chaos


def _serve(tmp_path, payload=None, **kwargs):
    store = SnapshotStore(tmp_path / "snaps")
    if payload is not None:
        store.publish(payload)
    kwargs.setdefault("poll_interval_s", 0.02)
    server = AggressionServer(store, port=0, **kwargs)
    return store, server


class TestHotSwapUnderLoad:
    def test_zero_dropped_requests_across_swap(
        self, tmp_path, trained_payload, trained_payload_v2
    ):
        """Continuous load, mid-run publish: no drop, no error, versions
        observed on both sides of the swap."""

        async def main():
            store, server = _serve(tmp_path, trained_payload)
            await server.start()
            results = []

            async def client(i):
                status, _, body = await http_request(
                    server.port, "/classify",
                    {"text": f"message number {i}"},
                )
                results.append((status, body.get("snapshot_version")))

            try:
                for batch in range(10):
                    await asyncio.gather(
                        *(client(batch * 8 + j) for j in range(8))
                    )
                    if batch == 4:
                        store.publish(trained_payload_v2)
                        await asyncio.sleep(0.06)  # let the poll swap
            finally:
                await server.shutdown()
            return results, server

        results, server = asyncio.run(main())
        assert len(results) == 80  # every request answered
        statuses = {status for status, _ in results}
        assert statuses == {200}
        versions = {version for _, version in results}
        assert versions == {1, 2}
        assert server.snapshot_version == 2

    def test_inflight_request_pinned_to_old_snapshot(
        self, tmp_path, trained_payload, trained_payload_v2
    ):
        """A request in flight during the swap finishes on the snapshot
        it started with; the next request sees the new one."""

        async def main():
            gate = asyncio.Event()
            stalled_once = asyncio.Event()

            async def stall(endpoint):
                if not stalled_once.is_set():
                    stalled_once.set()
                    await gate.wait()

            store, server = _serve(
                tmp_path, trained_payload,
                chaos_hook=stall, poll_interval_s=30.0,
            )
            await server.start()
            try:
                slow = asyncio.create_task(http_request(
                    server.port, "/classify", {"text": "pinned"}
                ))
                await stalled_once.wait()
                store.publish(trained_payload_v2)
                server.check_for_update()
                assert server.snapshot_version == 2
                gate.set()
                status, _, old_body = await slow
                assert status == 200
                status, _, new_body = await http_request(
                    server.port, "/classify", {"text": "fresh"}
                )
                assert status == 200
                return old_body, new_body
            finally:
                gate.set()
                await server.shutdown()

        old_body, new_body = asyncio.run(main())
        assert old_body["snapshot_version"] == 1
        assert new_body["snapshot_version"] == 2


class TestSnapshotCorruption:
    def test_truncated_publish_is_refused_and_serving_continues(
        self, tmp_path, trained_payload, trained_payload_v2
    ):
        async def main():
            store, server = _serve(
                tmp_path, trained_payload, poll_interval_s=30.0
            )
            await server.start()
            try:
                info = store.publish(trained_payload_v2)
                # Torn write: the file exists but holds half the bytes.
                info.path.write_text(
                    info.path.read_text()[: info.n_bytes // 3]
                )
                server.check_for_update()
                assert server.snapshot_version == 1
                assert store.n_rejected >= 1
                assert server.metrics.counter(
                    "snapshot_rejected_total"
                ).value >= 1.0
                status, _, body = await http_request(
                    server.port, "/classify", {"text": "still fine"}
                )
                assert status == 200
                assert body["snapshot_version"] == 1
                # The bad version is remembered: polling again does not
                # re-attempt (and re-log) it forever.
                rejected_before = store.n_rejected
                server.check_for_update()
                assert store.n_rejected == rejected_before
            finally:
                await server.shutdown()

        asyncio.run(main())

    def test_kill_mid_publish_manifest_points_at_missing_file(
        self, tmp_path, trained_payload, trained_payload_v2
    ):
        """Manifest updated, snapshot file gone (the torn window of a
        non-atomic publisher): refused, fallback keeps serving."""

        async def main():
            store, server = _serve(
                tmp_path, trained_payload, poll_interval_s=30.0
            )
            await server.start()
            try:
                info = store.publish(trained_payload_v2)
                info.path.unlink()
                server.check_for_update()
                assert server.snapshot_version == 1
                status, _, _ = await http_request(
                    server.port, "/classify", {"text": "alive"}
                )
                assert status == 200
            finally:
                await server.shutdown()

        asyncio.run(main())

    def test_recovery_after_corruption(
        self, tmp_path, trained_payload, trained_payload_v2
    ):
        """A good publish after a corrupt one swaps normally."""

        async def main():
            store, server = _serve(
                tmp_path, trained_payload, poll_interval_s=30.0
            )
            await server.start()
            try:
                bad = store.publish(trained_payload_v2)
                bad.path.write_bytes(b"garbage")
                server.check_for_update()
                assert server.snapshot_version == 1
                store.publish(trained_payload_v2)
                server.check_for_update()
                assert server.snapshot_version == 3
            finally:
                await server.shutdown()

        asyncio.run(main())


class TestStalledHandler:
    def test_health_answers_while_scoring_is_stuck(
        self, tmp_path, trained_payload
    ):
        async def main():
            gate = asyncio.Event()

            async def stall(endpoint):
                await gate.wait()

            _, server = _serve(
                tmp_path, trained_payload, chaos_hook=stall
            )
            await server.start()
            try:
                stuck = asyncio.create_task(http_request(
                    server.port, "/classify", {"text": "stuck"}
                ))
                await asyncio.sleep(0.05)
                status, _, body = await asyncio.wait_for(
                    http_request(server.port, "/health", {}),
                    timeout=2.0,
                )
                assert status == 200
                assert body["inflight"] >= 1
                gate.set()
                status, _, _ = await stuck
                assert status == 200
            finally:
                gate.set()
                await server.shutdown()

        asyncio.run(main())


class TestConnectionFlood:
    def test_every_flooded_request_is_answered(
        self, tmp_path, trained_payload
    ):
        """64 concurrent requests against max_inflight=2, queue=4:
        every one gets a definitive answer (200 or 429), nothing hangs,
        nothing is silently dropped, and the server survives to serve
        afterwards."""

        async def main():
            _, server = _serve(
                tmp_path, trained_payload,
                max_inflight=2, queue_capacity=4,
            )
            await server.start()

            async def client(i):
                try:
                    status, _, _ = await asyncio.wait_for(
                        http_request(
                            server.port, "/classify",
                            {"text": f"flood {i}"},
                        ),
                        timeout=10.0,
                    )
                    return status
                except (ConnectionError, OSError):
                    return -1

            try:
                statuses = await asyncio.gather(
                    *(client(i) for i in range(64))
                )
                status, _, _ = await http_request(
                    server.port, "/classify", {"text": "after the storm"}
                )
            finally:
                await server.shutdown()
            return statuses, status, server

        statuses, after, server = asyncio.run(main())
        assert len(statuses) == 64
        assert set(statuses) <= {200, 429}
        assert statuses.count(200) >= 6  # real work got through
        assert after == 200
        shed = server.admission.n_shed
        assert shed == statuses.count(429)

    def test_flood_sheds_are_observable(self, tmp_path, trained_payload):
        async def main():
            _, server = _serve(
                tmp_path, trained_payload,
                max_inflight=1, queue_capacity=1,
            )
            await server.start()
            try:
                await asyncio.gather(*(
                    http_request(
                        server.port, "/classify", {"text": f"x{i}"}
                    )
                    for i in range(32)
                ))
            finally:
                await server.shutdown()
            return server

        server = asyncio.run(main())
        from repro.obs.export import prometheus_exposition

        exposition = prometheus_exposition(server.metrics)
        if server.admission.n_shed:
            assert "repro_requests_shed_total" in exposition
        assert "repro_requests_total" in exposition
