"""Snapshot store: publish/verify/load, corruption, retention."""

from __future__ import annotations

import json

import pytest

from repro.data.synthetic import AbusiveDatasetGenerator
from repro.obs.metrics import MetricsRegistry
from repro.serve.model import ServingModel
from repro.serve.snapshot import (
    SnapshotIntegrityError,
    SnapshotStore,
    payload_from_checkpoint,
)


class TestPublishAndLoad:
    def test_publish_load_roundtrip(self, tmp_path, trained_payload):
        store = SnapshotStore(tmp_path)
        info = store.publish(trained_payload, meta={"chunk": 3})
        assert info.version == 1
        assert info.meta["chunk"] == 3
        loaded_info, payload = store.load_latest_verified()
        assert loaded_info.version == 1
        assert loaded_info.sha256 == info.sha256
        model = ServingModel(payload)
        tweets = AbusiveDatasetGenerator(
            n_tweets=5, seed=3, n_days=1
        ).generate_list()
        result = model.classify(tweets[0])
        assert result["predicted"] in result["proba"]
        assert abs(sum(result["proba"].values()) - 1.0) < 1e-9

    def test_versions_are_monotonic(self, tmp_path, trained_payload):
        store = SnapshotStore(tmp_path)
        v1 = store.publish(trained_payload)
        v2 = store.publish(trained_payload)
        assert (v1.version, v2.version) == (1, 2)
        assert store.latest_version() == 2

    def test_structurally_invalid_payload_is_refused(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(SnapshotIntegrityError):
            store.publish({"model": {}})
        assert store.versions() == []

    def test_empty_store_load_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(SnapshotIntegrityError):
            store.load_latest_verified()


class TestCorruption:
    def test_truncated_snapshot_is_refused_with_fallback(
        self, tmp_path, trained_payload
    ):
        registry = MetricsRegistry()
        store = SnapshotStore(tmp_path, metrics=registry)
        store.publish(trained_payload)
        v2 = store.publish(trained_payload)
        v2.path.write_text(v2.path.read_text()[: v2.n_bytes // 2])
        info, _ = store.load_latest_verified()
        assert info.version == 1
        assert store.n_rejected == 1
        assert registry.counter("snapshot_rejected_total").value == 1.0

    def test_bitflipped_snapshot_fails_checksum(
        self, tmp_path, trained_payload
    ):
        store = SnapshotStore(tmp_path)
        info = store.publish(trained_payload)
        raw = bytearray(info.path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        info.path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotIntegrityError):
            store.load_verified(info.version)

    def test_missing_snapshot_file_falls_back(
        self, tmp_path, trained_payload
    ):
        store = SnapshotStore(tmp_path)
        store.publish(trained_payload)
        v2 = store.publish(trained_payload)
        v2.path.unlink()
        info, _ = store.load_latest_verified()
        assert info.version == 1

    def test_unparseable_manifest_reads_as_empty(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        store.manifest_path.write_text("{nope")
        assert store.versions() == []
        assert store.latest_version() is None


class TestRetention:
    def test_gc_keeps_newest_k(self, tmp_path, trained_payload):
        store = SnapshotStore(tmp_path, keep=2)
        for _ in range(5):
            store.publish(trained_payload)
        assert store.versions() == [4, 5]
        names = sorted(
            p.name for p in tmp_path.glob("snapshot-*.json")
        )
        assert names == [
            "snapshot-000004.json", "snapshot-000005.json",
        ]

    def test_publish_counter(self, tmp_path, trained_payload):
        registry = MetricsRegistry()
        store = SnapshotStore(tmp_path, metrics=registry)
        store.publish(trained_payload)
        store.publish(trained_payload)
        assert (
            registry.counter("snapshots_published_total").value == 2.0
        )
        assert (
            registry.gauge("snapshot_latest_version").value == 2.0
        )


class TestPayloadFromCheckpoint:
    def test_supervisor_checkpoint_extraction(
        self, tmp_path, small_stream
    ):
        from repro.engine.sequential import SequentialEngine
        from repro.reliability.supervisor import StreamSupervisor

        engine = SequentialEngine()
        supervisor = StreamSupervisor(
            engine, checkpoint_dir=tmp_path / "ckpt", chunk_size=200
        )
        supervisor.run(small_stream[:400])
        payload = payload_from_checkpoint(
            tmp_path / "ckpt" / "checkpoint.json"
        )
        store = SnapshotStore(tmp_path / "snaps")
        info = store.publish(payload)
        model = ServingModel(store.load_verified(info.version)[1])
        assert model.classify(small_stream[0])["predicted"]

    def test_rejects_garbage_checkpoint(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(SnapshotIntegrityError):
            payload_from_checkpoint(path)
