"""AggressionServer: endpoints, readiness, admission, degradation."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.admission import (
    ADMISSION_POLICY_REGISTRY,
    AdmissionController,
    RequestShed,
    RollingBreaker,
    register_admission_policy,
)
from repro.serve.server import AggressionServer, tweet_from_payload
from repro.serve.snapshot import SnapshotStore

from tests.serve.conftest import JsonlClient, http_request


def _serve(tmp_path, payload=None, **kwargs):
    """Build a store (optionally pre-published) and an unstarted server."""
    store = SnapshotStore(tmp_path / "snaps")
    if payload is not None:
        store.publish(payload)
    kwargs.setdefault("poll_interval_s", 0.02)
    server = AggressionServer(store, port=0, **kwargs)
    return store, server


class TestHttpEndpoints:
    def test_classify_and_explain(self, tmp_path, trained_payload):
        async def main():
            _, server = _serve(tmp_path, trained_payload)
            await server.start()
            try:
                status, _, body = await http_request(
                    server.port, "/classify",
                    {"text": "you are horrible and stupid"},
                )
                assert status == 200
                assert body["predicted"] in body["proba"]
                assert body["snapshot_version"] == 1
                status, _, body = await http_request(
                    server.port, "/explain", {"text": "stupid idiot"}
                )
                assert status == 200
                assert "matched_swear_words" in body
                assert "decision_path" in body
            finally:
                await server.shutdown()

        asyncio.run(main())

    def test_health_metrics_and_errors(self, tmp_path, trained_payload):
        async def main():
            _, server = _serve(tmp_path, trained_payload)
            await server.start()
            try:
                status, _, body = await http_request(
                    server.port, "/health", {}
                )
                assert status == 200 and body["status"] == "serving"
                status, _, text = await http_request(
                    server.port, "/metrics", {}, method="GET"
                )
                assert status == 200
                assert "repro_requests_total" in text
                status, _, body = await http_request(
                    server.port, "/nope", {}
                )
                assert status == 404
                status, _, body = await http_request(
                    server.port, "/classify", {}, method="GET"
                )
                assert status == 405
                status, _, body = await http_request(
                    server.port, "/classify", {"no_text": True}
                )
                assert status == 400
            finally:
                await server.shutdown()

        asyncio.run(main())


class TestJsonlProtocol:
    def test_persistent_session(self, tmp_path, trained_payload):
        async def main():
            _, server = _serve(tmp_path, trained_payload)
            await server.start()
            client = await JsonlClient(server.port).connect()
            try:
                first = await client.request(
                    {"op": "classify", "tweet": {"text": "hello"}}
                )
                assert first["status"] == 200
                second = await client.request({"op": "health"})
                assert second["n_requests"] >= 1
                unknown = await client.request({"op": "bogus"})
                assert unknown["status"] == 404
            finally:
                await client.close()
                await server.shutdown()

        asyncio.run(main())


class TestReadiness:
    def test_503_until_first_snapshot_then_serves(
        self, tmp_path, trained_payload
    ):
        async def main():
            store, server = _serve(tmp_path, payload=None)
            await server.start()
            try:
                status, _, body = await http_request(
                    server.port, "/ready", {}
                )
                assert status == 503
                status, _, _ = await http_request(
                    server.port, "/classify", {"text": "hi"}
                )
                assert status == 503
                # health answers even while unready (liveness probe).
                status, _, body = await http_request(
                    server.port, "/health", {}
                )
                assert status == 200
                assert body["status"] == "waiting_for_snapshot"
                store.publish(trained_payload)
                await asyncio.sleep(0.1)  # poll loop picks it up
                status, _, _ = await http_request(
                    server.port, "/ready", {}
                )
                assert status == 200
                status, _, body = await http_request(
                    server.port, "/classify", {"text": "hi"}
                )
                assert status == 200
            finally:
                await server.shutdown()

        asyncio.run(main())


class TestAdmission:
    def test_overflow_gets_429_with_retry_after(
        self, tmp_path, trained_payload
    ):
        async def main():
            gate = asyncio.Event()

            async def stall(endpoint):
                await gate.wait()

            _, server = _serve(
                tmp_path, trained_payload,
                max_inflight=1, queue_capacity=0, chaos_hook=stall,
            )
            await server.start()
            try:
                blocked = asyncio.create_task(http_request(
                    server.port, "/classify", {"text": "slow"}
                ))
                await asyncio.sleep(0.05)
                status, headers, body = await http_request(
                    server.port, "/classify", {"text": "shed me"}
                )
                assert status == 429
                assert int(headers["retry-after"]) >= 1
                assert body["retry_after_s"] > 0
                gate.set()
                status, _, _ = await blocked
                assert status == 200
            finally:
                gate.set()
                await server.shutdown()

        asyncio.run(main())

    def test_shed_counter_and_policy_label(
        self, tmp_path, trained_payload
    ):
        async def main():
            gate = asyncio.Event()

            async def stall(endpoint):
                await gate.wait()

            _, server = _serve(
                tmp_path, trained_payload,
                max_inflight=1, queue_capacity=0, chaos_hook=stall,
            )
            await server.start()
            try:
                blocked = asyncio.create_task(http_request(
                    server.port, "/classify", {"text": "slow"}
                ))
                await asyncio.sleep(0.05)
                await http_request(
                    server.port, "/classify", {"text": "shed"}
                )
                gate.set()
                await blocked
                counter = server.metrics.counter(
                    "requests_shed_total",
                    endpoint="classify", policy="drop-newest",
                )
                assert counter.value == 1.0
            finally:
                gate.set()
                await server.shutdown()

        asyncio.run(main())


class TestDeadlineDegradation:
    def test_tight_deadline_degrades_instead_of_erroring(
        self, tmp_path, trained_payload
    ):
        async def main():
            _, server = _serve(
                tmp_path, trained_payload, default_deadline_s=10.0
            )
            await server.start()
            try:
                # Teach the tier EWMAs a FULL-fidelity cost.
                for _ in range(3):
                    status, _, _ = await http_request(
                        server.port, "/classify",
                        {"text": "warm up the cost model"},
                    )
                    assert status == 200
                # An absurdly tight explicit budget must still answer
                # 200, just degraded to a cheaper tier.
                status, _, body = await http_request(
                    server.port, "/classify",
                    {"text": "answer me anyway", "deadline_ms": 0.0001},
                )
                assert status == 200
                assert body["degraded"] is True
                assert body["tier"] in ("NO_POS", "TEXT_ONLY")
            finally:
                await server.shutdown()

        asyncio.run(main())


class TestBreaker:
    def test_opens_after_failure_burst_and_probes(self):
        breaker = RollingBreaker(
            window=16, max_failure_rate=0.5, min_events=4, probe_every=3
        )
        for _ in range(8):
            breaker.record(True)
        assert breaker.is_open
        assert breaker.n_opens == 1
        allowed = [breaker.allow() for _ in range(6)]
        assert allowed == [False, False, True, False, False, True]
        # Probe successes refill the window until it closes again.
        for _ in range(16):
            breaker.record(False)
        assert not breaker.is_open
        assert breaker.allow()

    def test_endpoint_circuit_returns_503(self, tmp_path, trained_payload):
        async def main():
            _, server = _serve(
                tmp_path, trained_payload,
                breaker_window=8, breaker_max_failure_rate=0.4,
            )
            await server.start()
            try:
                # Force the classify breaker open by recording failures
                # directly (a handler bug would do the same organically).
                for _ in range(8):
                    server.breakers["classify"].record(True)
                statuses = []
                for _ in range(2):
                    status, headers, _ = await http_request(
                        server.port, "/classify", {"text": "hi"}
                    )
                    statuses.append(status)
                assert 503 in statuses
                # Other endpoints are unaffected.
                status, _, _ = await http_request(
                    server.port, "/explain", {"text": "hi"}
                )
                assert status == 200
            finally:
                await server.shutdown()

        asyncio.run(main())


class TestAdmissionController:
    def test_policy_registry_covers_shared_names(self):
        from repro.reliability.overload import SHED_POLICIES

        assert set(SHED_POLICIES) <= set(ADMISSION_POLICY_REGISTRY)

    def test_custom_policy_registration(self):
        def always_shed(controller):
            return False, False

        register_admission_policy("test-always-shed", always_shed)
        try:
            controller = AdmissionController(
                max_inflight=1, queue_capacity=0,
                policy="test-always-shed",
            )
            assert controller.policy == "test-always-shed"
        finally:
            ADMISSION_POLICY_REGISTRY.pop("test-always-shed")

    def test_drop_oldest_sheds_waiter_not_arrival(self):
        async def main():
            controller = AdmissionController(
                max_inflight=1, queue_capacity=1, policy="drop-oldest"
            )
            await controller.acquire()  # occupies the slot
            waiter = asyncio.create_task(controller.acquire())
            await asyncio.sleep(0)
            assert controller.queue_depth == 1
            # Room is full: the arrival evicts the queued waiter...
            arrival = asyncio.create_task(controller.acquire())
            with pytest.raises(RequestShed):
                await waiter
            # ...and takes its place; releasing the slot admits it.
            controller.release()
            await arrival
            assert controller.inflight == 1

        asyncio.run(main())

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            AdmissionController(policy="nope")


class TestTweetFromPayload:
    def test_bare_text_shorthand(self):
        tweet = tweet_from_payload({"text": "hello world"})
        assert tweet.text == "hello world"
        assert tweet.created_at > 0

    def test_full_tweet_object(self):
        tweet = tweet_from_payload({
            "tweet": {
                "id_str": "99", "text": "hi", "created_at": 123.0,
                "user": {"id_str": "7", "screen_name": "x"},
            }
        })
        assert tweet.tweet_id == "99"
        assert tweet.user.user_id == "7"

    def test_missing_text_raises(self):
        with pytest.raises(ValueError):
            tweet_from_payload({"tweet": {}})
