"""Tests for alert-threshold tuning."""

from __future__ import annotations

import random

import pytest

from repro.analysis.thresholds import (
    average_precision,
    pr_curve,
    threshold_for_budget,
    threshold_for_precision,
)
from repro.streamml.instance import ClassifiedInstance, Instance


def _scored(score, truth):
    return ClassifiedInstance(
        instance=Instance(x=(0.0,), y=int(truth)),
        predicted=int(score >= 0.5),
        proba=(1 - score, score),
    )


def _perfect_set():
    # Aggressive tweets scored high, normal scored low.
    return (
        [_scored(0.9, True) for _ in range(10)]
        + [_scored(0.1, False) for _ in range(30)]
    )


def _noisy_set(seed=0, n=600, flip=0.2):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        truth = rng.random() < 0.3
        base = 0.75 if truth else 0.25
        if rng.random() < flip:
            base = 1.0 - base
        out.append(_scored(min(max(rng.gauss(base, 0.1), 0.0), 1.0), truth))
    return out


class TestPrCurve:
    def test_no_labeled_instances(self):
        unlabeled = [ClassifiedInstance(Instance(x=(0.0,)), 0, (1.0, 0.0))]
        with pytest.raises(ValueError):
            pr_curve(unlabeled)

    def test_perfect_separation(self):
        points = pr_curve(_perfect_set())
        high = [p for p in points if p.threshold > 0.5]
        assert all(p.precision == 1.0 for p in high)
        assert max(p.recall for p in high) == 1.0

    def test_thresholds_increasing(self):
        points = pr_curve(_noisy_set())
        thresholds = [p.threshold for p in points]
        assert thresholds == sorted(thresholds)

    def test_alert_count_decreases_with_threshold(self):
        points = pr_curve(_noisy_set())
        alerts = [p.n_alerts for p in points]
        assert alerts == sorted(alerts, reverse=True)

    def test_lowest_threshold_alerts_everything(self):
        data = _noisy_set()
        points = pr_curve(data)
        assert points[0].n_alerts == len(data)
        assert points[0].recall == 1.0


class TestThresholdSelection:
    def test_invalid_target(self):
        with pytest.raises(ValueError):
            threshold_for_precision(_perfect_set(), target_precision=0.0)

    def test_meets_precision_target(self):
        point = threshold_for_precision(_noisy_set(), target_precision=0.85)
        assert point is not None
        assert point.precision >= 0.85

    def test_maximizes_recall_at_target(self):
        data = _noisy_set()
        chosen = threshold_for_precision(data, target_precision=0.8)
        for point in pr_curve(data):
            if point.precision >= 0.8:
                assert point.recall <= chosen.recall + 1e-12

    def test_unreachable_target(self):
        assert threshold_for_precision(
            _noisy_set(flip=0.5), target_precision=0.999
        ) is None

    def test_budget_constraint(self):
        data = _noisy_set()
        point = threshold_for_budget(data, max_alerts=50)
        assert point.n_alerts <= 50

    def test_budget_invalid(self):
        with pytest.raises(ValueError):
            threshold_for_budget(_perfect_set(), max_alerts=0)

    def test_budget_smaller_than_min_alerts(self):
        point = threshold_for_budget(_perfect_set(), max_alerts=1)
        assert point.n_alerts >= 1  # strictest point returned


class TestAveragePrecision:
    def test_perfect_is_one(self):
        assert average_precision(_perfect_set()) == pytest.approx(1.0)

    def test_bounds(self):
        ap = average_precision(_noisy_set())
        assert 0.0 < ap <= 1.0

    def test_noisier_scores_lower_ap(self):
        clean = average_precision(_noisy_set(flip=0.05))
        noisy = average_precision(_noisy_set(flip=0.4))
        assert clean > noisy


class TestEndToEnd:
    def test_pipeline_scores_tune_well(self, medium_stream):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import AggressionDetectionPipeline

        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        classified = [pipeline.process(t) for t in medium_stream[:4000]]
        # Skip the cold-start prefix where scores are uninformative.
        # The synthetic stream's content-ambiguous fraction caps the
        # reachable precision near ~0.89, so 0.85 is a demanding but
        # reachable target.
        point = threshold_for_precision(
            classified[500:], target_precision=0.85
        )
        assert point is not None
        assert point.recall > 0.5
