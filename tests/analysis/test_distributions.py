"""Tests for distribution statistics."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.distributions import (
    FeatureSummary,
    effect_size,
    histogram,
    ks_statistic,
    pdf_points,
    separation_auc,
    summarize_by_class,
)
from repro.streamml.instance import Instance

samples = st.lists(
    st.floats(-100, 100, allow_nan=False), min_size=2, max_size=100
)


class TestFeatureSummary:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FeatureSummary.from_values([])

    def test_known_values(self):
        summary = FeatureSummary.from_values([1.0, 2.0, 3.0])
        assert summary.n == 3
        assert summary.mean == 2.0
        assert summary.median == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_summarize_by_class(self):
        instances = [
            Instance(x=(1.0,), y=0),
            Instance(x=(3.0,), y=0),
            Instance(x=(10.0,), y=1),
            Instance(x=(5.0,)),  # unlabeled ignored
        ]
        summaries = summarize_by_class(instances, 0, ("a", "b"))
        assert summaries["a"].mean == 2.0
        assert summaries["b"].n == 1


class TestHistogram:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram([])

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)

    def test_constant_sample(self):
        edges, counts = histogram([5.0] * 10)
        assert counts == [10]

    def test_counts_sum_to_n(self):
        rng = random.Random(0)
        values = [rng.gauss(0, 1) for _ in range(500)]
        _, counts = histogram(values, bins=13)
        assert sum(counts) == 500

    @given(samples)
    @settings(max_examples=50, deadline=None)
    def test_all_values_covered(self, values):
        edges, counts = histogram(values, bins=7)
        assert sum(counts) == len(values)
        assert edges[0] == min(values)
        assert edges[-1] == max(values)

    def test_pdf_integrates_to_one(self):
        rng = random.Random(1)
        values = [rng.expovariate(1.0) for _ in range(2000)]
        points = pdf_points(values, bins=25)
        edges, _ = histogram(values, bins=25)
        width = edges[1] - edges[0]
        area = sum(density * width for _, density in points)
        assert area == pytest.approx(1.0, rel=1e-6)


class TestKS:
    def test_identical_samples_zero(self):
        values = [1.0, 2.0, 3.0]
        assert ks_statistic(values, values) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_statistic([1, 2, 3], [10, 11, 12]) == 1.0

    def test_symmetry(self):
        rng = random.Random(2)
        a = [rng.gauss(0, 1) for _ in range(100)]
        b = [rng.gauss(1, 1) for _ in range(80)]
        assert ks_statistic(a, b) == pytest.approx(ks_statistic(b, a))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic([], [1.0])

    @given(samples, samples)
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, a, b):
        assert 0.0 <= ks_statistic(a, b) <= 1.0


class TestSeparationAuc:
    def test_perfect_separation(self):
        assert separation_auc([10, 11, 12], [1, 2, 3]) == 1.0

    def test_reversed_separation(self):
        assert separation_auc([1, 2, 3], [10, 11, 12]) == 0.0

    def test_identical_distributions_half(self):
        assert separation_auc([1, 2, 3], [1, 2, 3]) == pytest.approx(0.5)

    def test_overlapping_gaussians(self):
        rng = random.Random(3)
        positive = [rng.gauss(1, 1) for _ in range(500)]
        negative = [rng.gauss(0, 1) for _ in range(500)]
        auc = separation_auc(positive, negative)
        # Theoretical AUC for unit shift: Phi(1/sqrt(2)) ~ 0.76.
        assert auc == pytest.approx(0.76, abs=0.05)

    @given(samples, samples)
    @settings(max_examples=50, deadline=None)
    def test_antisymmetry(self, a, b):
        assert separation_auc(a, b) == pytest.approx(
            1.0 - separation_auc(b, a)
        )


class TestEffectSize:
    def test_zero_for_identical(self):
        assert effect_size([1, 2, 3], [1, 2, 3]) == 0.0

    def test_sign(self):
        assert effect_size([5, 6, 7], [1, 2, 3]) > 0
        assert effect_size([1, 2, 3], [5, 6, 7]) < 0

    def test_small_sample_rejected(self):
        with pytest.raises(ValueError):
            effect_size([1.0], [1.0, 2.0])
