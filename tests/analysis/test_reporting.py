"""Tests for run reports and ASCII charts."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import ascii_chart, compare_results, render_run_report
from repro.core.config import PipelineConfig
from repro.core.pipeline import run_pipeline


@pytest.fixture(scope="module")
def results(small_stream_module):
    return {
        "HT": run_pipeline(small_stream_module, PipelineConfig(n_classes=2)),
        "SLR": run_pipeline(
            small_stream_module, PipelineConfig(n_classes=2, model="slr")
        ),
    }


@pytest.fixture(scope="module")
def small_stream_module():
    from repro.data.synthetic import AbusiveDatasetGenerator

    return AbusiveDatasetGenerator(n_tweets=1500, seed=8).generate_list()


class TestAsciiChart:
    def test_empty(self):
        assert ascii_chart([]) == ""

    def test_length_capped_at_width(self):
        series = [(i, i / 200) for i in range(200)]
        assert len(ascii_chart(series, width=40)) == 40

    def test_short_series_keeps_length(self):
        series = [(i, 0.5) for i in range(10)]
        assert len(ascii_chart(series, width=40)) == 10

    def test_monotone_series_monotone_blocks(self):
        series = [(i, i / 10) for i in range(11)]
        chart = ascii_chart(series)
        assert chart == "".join(sorted(chart))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            ascii_chart([(0, 0.5)], lo=1.0, hi=0.0)

    def test_clamps_out_of_range(self):
        chart = ascii_chart([(0, -5.0), (1, 5.0)])
        assert len(chart) == 2


class TestRunReport:
    def test_contains_sections(self, results):
        report = render_run_report(results["HT"], title="HT run")
        assert report.startswith("# HT run")
        assert "| f1 |" in report
        assert "```" in report
        assert "HT, p=ON" in report

    def test_metrics_formatted(self, results):
        report = render_run_report(results["HT"])
        f1 = results["HT"].metrics["f1"]
        assert f"{f1:.4f}" in report


class TestCompareResults:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_results({})

    def test_table_rows(self, results):
        table = compare_results(results)
        assert "| HT |" in table
        assert "| SLR |" in table
        assert "best F1:" in table

    def test_best_is_max(self, results):
        table = compare_results(results)
        best = max(results, key=lambda k: results[k].metrics["f1"])
        assert f"**{best}**" in table
