"""Tests for streaming kNN and the Oza ensembles."""

from __future__ import annotations

import random

import pytest

from repro.streamml.ensembles import OzaBagging, OzaBoosting
from repro.streamml.hoeffding_tree import HoeffdingTree
from repro.streamml.instance import Instance
from repro.streamml.knn import KNNClassifier
from repro.streamml.majority import MajorityClassClassifier


def _stream(n, rng, sep=2.5):
    out = []
    for _ in range(n):
        label = rng.random() < 0.5
        out.append(Instance(
            x=(rng.gauss(sep if label else 0.0, 1.0), rng.gauss(0, 1)),
            y=int(label),
        ))
    return out


def _accuracy(model, instances):
    return sum(
        model.predict_one(i.x) == i.y for i in instances
    ) / len(instances)


class TestKNN:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KNNClassifier(n_classes=2, k=0)
        with pytest.raises(ValueError):
            KNNClassifier(n_classes=2, window_size=0)

    def test_uniform_before_training(self):
        model = KNNClassifier(n_classes=3)
        assert model.predict_proba_one((0.0,)) == pytest.approx((1 / 3,) * 3)

    def test_learns_gaussians(self):
        rng = random.Random(0)
        model = KNNClassifier(n_classes=2, k=7, window_size=500)
        model.learn_many(_stream(1500, rng))
        assert _accuracy(model, _stream(300, rng)) > 0.85

    def test_window_bounded(self):
        model = KNNClassifier(n_classes=2, window_size=100)
        rng = random.Random(1)
        model.learn_many(_stream(500, rng))
        assert model.window_fill == 100

    def test_forgets_old_concept(self):
        rng = random.Random(2)
        model = KNNClassifier(n_classes=2, k=5, window_size=300)
        model.learn_many(_stream(500, rng))
        # Concept flip: new data with inverted labels.
        flipped = [
            Instance(x=i.x, y=1 - i.y) for i in _stream(600, rng)
        ]
        model.learn_many(flipped)
        test = [Instance(x=i.x, y=1 - i.y) for i in _stream(200, rng)]
        # Window now holds only the new concept.
        assert _accuracy(model, test) > 0.8

    def test_unweighted_vote(self):
        model = KNNClassifier(n_classes=2, k=3, weighted=False)
        model.learn_one(Instance(x=(0.0, 0.0), y=0))
        model.learn_one(Instance(x=(0.1, 0.0), y=0))
        model.learn_one(Instance(x=(5.0, 0.0), y=1))
        assert model.predict_one((0.05, 0.0)) == 0

    def test_merge_unions_windows(self):
        a = KNNClassifier(n_classes=2, window_size=10)
        b = KNNClassifier(n_classes=2, window_size=10)
        a.learn_one(Instance(x=(0.0,), y=0))
        b.learn_one(Instance(x=(1.0,), y=1))
        a.merge(b)
        assert a.window_fill == 2
        assert a.instances_seen == 2


class TestOzaBagging:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            OzaBagging(n_classes=2, ensemble_size=0)
        with pytest.raises(ValueError):
            OzaBagging(n_classes=2, lambda_poisson=0.0)

    def test_learns(self):
        rng = random.Random(3)
        model = OzaBagging(n_classes=2, ensemble_size=5, seed=7)
        model.learn_many(_stream(2000, rng))
        assert _accuracy(model, _stream(400, rng)) > 0.8

    def test_members_diverge(self):
        rng = random.Random(4)
        model = OzaBagging(n_classes=2, ensemble_size=5, seed=7)
        model.learn_many(_stream(1000, rng))
        seen = {m.instances_seen for m in model.members}
        assert len(seen) > 1  # Poisson weighting differs per member

    def test_custom_base(self):
        model = OzaBagging(
            n_classes=2,
            ensemble_size=3,
            base_factory=lambda: MajorityClassClassifier(2),
        )
        model.learn_one(Instance(x=(0.0,), y=1))
        assert model.predict_one((0.0,)) == 1

    def test_merge(self):
        rng = random.Random(5)
        a = OzaBagging(n_classes=2, ensemble_size=3, seed=1,
                       base_factory=lambda: MajorityClassClassifier(2))
        b = OzaBagging(n_classes=2, ensemble_size=3, seed=2,
                       base_factory=lambda: MajorityClassClassifier(2))
        a.learn_many(_stream(50, rng))
        b.learn_many(_stream(50, rng))
        a.merge(b)
        assert a.instances_seen == 100


class TestOzaBoosting:
    def test_learns(self):
        rng = random.Random(6)
        model = OzaBoosting(n_classes=2, ensemble_size=5, seed=9)
        model.learn_many(_stream(2000, rng))
        assert _accuracy(model, _stream(400, rng)) > 0.8

    def test_boosting_beats_single_stump_on_diagonal_boundary(self):
        # A depth-1 stump can only cut axis-aligned; boosting composes
        # stumps into a better approximation of a diagonal boundary.
        def stump():
            return HoeffdingTree(n_classes=2, max_depth=1, grace_period=50)

        def diagonal(n, rng):
            out = []
            for _ in range(n):
                x = (rng.gauss(0, 1), rng.gauss(0, 1))
                out.append(Instance(x=x, y=int(x[0] + x[1] > 0)))
            return out

        rng = random.Random(7)
        train = diagonal(4000, rng)
        test = diagonal(800, rng)
        single = stump()
        single.learn_many(train)
        boosted = OzaBoosting(
            n_classes=2, ensemble_size=8, base_factory=stump, seed=11
        )
        boosted.learn_many(train)
        assert _accuracy(boosted, test) >= _accuracy(single, test)

    def test_member_weights_reflect_errors(self):
        rng = random.Random(8)
        model = OzaBoosting(n_classes=2, ensemble_size=3, seed=13)
        model.learn_many(_stream(1500, rng))
        weights = [model._member_weight(i) for i in range(3)]
        assert all(w >= 0 for w in weights)
        assert any(w > 0 for w in weights)

    def test_merge_sums_accumulators(self):
        rng = random.Random(9)
        a = OzaBoosting(n_classes=2, ensemble_size=2, seed=1,
                        base_factory=lambda: MajorityClassClassifier(2))
        b = OzaBoosting(n_classes=2, ensemble_size=2, seed=2,
                        base_factory=lambda: MajorityClassClassifier(2))
        a.learn_many(_stream(40, rng))
        b.learn_many(_stream(40, rng))
        total_before = a._correct_weight[0] + b._correct_weight[0]
        a.merge(b)
        assert a._correct_weight[0] == pytest.approx(total_before)
