"""Tests for the trivial baselines and shared base-class machinery."""

from __future__ import annotations

import pytest

from repro.streamml.base import ClassifierSnapshot, merge_all
from repro.streamml.instance import Instance
from repro.streamml.majority import MajorityClassClassifier, NoChangeClassifier


class TestMajorityClass:
    def test_predicts_most_frequent(self):
        model = MajorityClassClassifier(n_classes=3)
        for label in (0, 1, 1, 2, 1):
            model.learn_one(Instance(x=(0.0,), y=label))
        assert model.predict_one((99.0,)) == 1

    def test_uniform_when_empty(self):
        model = MajorityClassClassifier(n_classes=2)
        assert model.predict_proba_one((0.0,)) == pytest.approx((0.5, 0.5))

    def test_merge_adds_counts(self):
        a = MajorityClassClassifier(n_classes=2)
        b = MajorityClassClassifier(n_classes=2)
        a.learn_one(Instance(x=(0.0,), y=0))
        b.learn_one(Instance(x=(0.0,), y=1))
        b.learn_one(Instance(x=(0.0,), y=1))
        a.merge(b)
        assert a.predict_one((0.0,)) == 1
        assert a.instances_seen == 3

    def test_invalid_n_classes(self):
        with pytest.raises(ValueError):
            MajorityClassClassifier(n_classes=1)


class TestNoChange:
    def test_predicts_last_label(self):
        model = NoChangeClassifier(n_classes=3)
        model.learn_one(Instance(x=(0.0,), y=2))
        assert model.predict_one((0.0,)) == 2
        model.learn_one(Instance(x=(0.0,), y=0))
        assert model.predict_one((0.0,)) == 0

    def test_merge_takes_other_last(self):
        a = NoChangeClassifier(n_classes=2)
        b = NoChangeClassifier(n_classes=2)
        a.learn_one(Instance(x=(0.0,), y=0))
        b.learn_one(Instance(x=(0.0,), y=1))
        a.merge(b)
        assert a.predict_one((0.0,)) == 1


class TestMergeAll:
    def test_empty_list(self):
        assert merge_all([]) is None

    def test_merges_left_to_right(self):
        models = []
        for label in (0, 1, 1):
            m = MajorityClassClassifier(n_classes=2)
            m.learn_one(Instance(x=(0.0,), y=label))
            models.append(m)
        merged = merge_all(models)
        assert merged is models[0]
        assert merged.predict_one((0.0,)) == 1


class TestClassifierSnapshot:
    def test_size_estimation_scales(self):
        small = ClassifierSnapshot({"w": [0.0] * 10})
        large = ClassifierSnapshot({"w": [0.0] * 1000})
        assert large.estimate_size_bytes() > small.estimate_size_bytes()

    def test_model_broadcast_under_1mb(self):
        # The paper notes the serialized global model stays < 1 MB.
        snapshot = ClassifierSnapshot(
            {"weights": [[0.1] * 17 for _ in range(3)], "bias": [0.0] * 3}
        )
        assert snapshot.estimate_size_bytes() < 1_000_000
