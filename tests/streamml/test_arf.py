"""Tests for the Adaptive Random Forest."""

from __future__ import annotations

import random

import pytest

from repro.streamml.arf import AdaptiveRandomForest
from repro.streamml.instance import Instance


def _stream(n, rng, mean=2.0, flip=False):
    for _ in range(n):
        label = rng.random() < 0.5
        effective = (not label) if flip else label
        yield Instance(
            x=(
                rng.gauss(mean if effective else 0.0, 1.0),
                rng.gauss(0.0, 1.0),
                rng.gauss(0.0, 2.0),
            ),
            y=int(label),
        )


class TestConstruction:
    def test_invalid_ensemble_size(self):
        with pytest.raises(ValueError):
            AdaptiveRandomForest(n_classes=2, ensemble_size=0)

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            AdaptiveRandomForest(n_classes=2, lambda_poisson=0.0)

    def test_member_count(self):
        forest = AdaptiveRandomForest(n_classes=2, ensemble_size=7)
        assert len(forest.members) == 7


class TestLearning:
    def test_learns_gaussians(self):
        rng = random.Random(0)
        forest = AdaptiveRandomForest(n_classes=2, ensemble_size=5, seed=1)
        forest.learn_many(list(_stream(3000, rng)))
        correct = sum(
            forest.predict_one(i.x) == i.y for i in _stream(600, rng)
        )
        assert correct / 600 > 0.78

    def test_subspace_resolved_from_features(self):
        rng = random.Random(1)
        forest = AdaptiveRandomForest(n_classes=2, ensemble_size=3)
        forest.learn_one(next(_stream(1, rng)))
        # ceil(sqrt(3)) == 2
        assert forest.members[0].tree.subspace_size == 2

    def test_diversity_across_members(self):
        rng = random.Random(2)
        forest = AdaptiveRandomForest(
            n_classes=2, ensemble_size=5, seed=3, grace_period=100
        )
        forest.learn_many(list(_stream(4000, rng, mean=4.0)))
        # Online bagging should give members different training weights,
        # hence (usually) different tree sizes or leaf statistics.
        sizes = [m.tree.instances_seen for m in forest.members]
        assert len(set(sizes)) > 1

    def test_determinism_with_seed(self):
        def run(seed):
            rng = random.Random(5)
            forest = AdaptiveRandomForest(n_classes=2, ensemble_size=3, seed=seed)
            forest.learn_many(list(_stream(1500, rng)))
            return [forest.predict_one((x / 10, 0.0, 0.0)) for x in range(20)]

        assert run(9) == run(9)

    def test_proba_normalized(self):
        rng = random.Random(3)
        forest = AdaptiveRandomForest(n_classes=3, ensemble_size=3)
        for _ in range(300):
            forest.learn_one(
                Instance(x=(rng.random(), rng.random(), 0.0), y=rng.randrange(3))
            )
        assert sum(forest.predict_proba_one((0.5, 0.5, 0.0))) == pytest.approx(1.0)


class TestDriftAdaptation:
    def test_recovers_from_abrupt_drift(self):
        rng = random.Random(4)
        forest = AdaptiveRandomForest(n_classes=2, ensemble_size=5, seed=7)
        forest.learn_many(list(_stream(4000, rng)))
        # Concept flips: feature-label relationship inverts.
        forest.learn_many(list(_stream(6000, rng, flip=True)))
        correct = sum(
            forest.predict_one(i.x) == i.y
            for i in _stream(800, rng, flip=True)
        )
        assert correct / 800 > 0.70
        assert forest.total_drifts + forest.total_warnings >= 1

    def test_drift_detection_can_be_disabled(self):
        rng = random.Random(5)
        forest = AdaptiveRandomForest(
            n_classes=2, ensemble_size=3, disable_drift_detection=True
        )
        forest.learn_many(list(_stream(2000, rng)))
        forest.learn_many(list(_stream(2000, rng, flip=True)))
        assert forest.total_drifts == 0
        assert forest.total_warnings == 0


class TestMergeProtocol:
    def test_structure_copy_and_merge(self):
        rng = random.Random(6)
        forest = AdaptiveRandomForest(n_classes=2, ensemble_size=3, seed=11)
        forest.learn_many(list(_stream(1000, rng)))
        copy = forest.structure_copy()
        assert len(copy.members) == 3
        copy.learn_many(list(_stream(500, rng)))
        seen_before = forest.instances_seen
        forest.merge(copy)
        assert forest.instances_seen == seen_before + 500

    def test_merge_size_mismatch(self):
        a = AdaptiveRandomForest(n_classes=2, ensemble_size=3)
        b = AdaptiveRandomForest(n_classes=2, ensemble_size=4)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_wrong_type(self):
        from repro.streamml.slr import StreamingLogisticRegression

        forest = AdaptiveRandomForest(n_classes=2)
        with pytest.raises(TypeError):
            forest.merge(StreamingLogisticRegression(n_classes=2))

    def test_deferred_splits_after_merge(self):
        rng = random.Random(7)
        forest = AdaptiveRandomForest(
            n_classes=2, ensemble_size=3, seed=13, grace_period=100
        )
        copy = forest.structure_copy()
        copy.learn_many(list(_stream(3000, rng, mean=4.0)))
        forest.merge(copy)
        assert forest.attempt_deferred_splits() >= 1
