"""Tests for the Hoeffding Tree."""

from __future__ import annotations

import math
import random

import pytest

from repro.streamml.hoeffding_tree import HoeffdingTree
from repro.streamml.instance import Instance


def _gaussian_stream(n, rng, sep=2.0):
    for _ in range(n):
        label = rng.random() < 0.5
        yield Instance(
            x=(rng.gauss(sep if label else 0.0, 1.0), rng.gauss(0.0, 1.0)),
            y=int(label),
        )


def _accuracy(model, n, rng, sep=2.0):
    correct = 0
    for instance in _gaussian_stream(n, rng, sep):
        correct += model.predict_one(instance.x) == instance.y
    return correct / n


class TestConstruction:
    def test_invalid_criterion(self):
        with pytest.raises(ValueError):
            HoeffdingTree(n_classes=2, split_criterion="chi2")

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            HoeffdingTree(n_classes=2, split_confidence=0.0)

    def test_invalid_grace_period(self):
        with pytest.raises(ValueError):
            HoeffdingTree(n_classes=2, grace_period=0)

    def test_invalid_leaf_prediction(self):
        with pytest.raises(ValueError):
            HoeffdingTree(n_classes=2, leaf_prediction="knn")

    def test_starts_as_single_leaf(self):
        tree = HoeffdingTree(n_classes=2)
        assert tree.n_leaves == 1
        assert tree.depth == 0


class TestLearning:
    def test_rejects_unlabeled(self):
        tree = HoeffdingTree(n_classes=2)
        with pytest.raises(ValueError):
            tree.learn_one(Instance(x=(1.0,)))

    def test_rejects_out_of_range_label(self):
        tree = HoeffdingTree(n_classes=2)
        with pytest.raises(ValueError):
            tree.learn_one(Instance(x=(1.0,), y=2))

    def test_rejects_feature_count_change(self):
        tree = HoeffdingTree(n_classes=2)
        tree.learn_one(Instance(x=(1.0, 2.0), y=0))
        with pytest.raises(ValueError):
            tree.learn_one(Instance(x=(1.0,), y=1))

    def test_learns_separable_gaussians(self):
        rng = random.Random(0)
        tree = HoeffdingTree(n_classes=2)
        tree.learn_many(list(_gaussian_stream(4000, rng)))
        accuracy = _accuracy(tree, 1000, rng)
        # Bayes-optimal is ~0.84 for separation 2.0.
        assert accuracy > 0.80

    def test_tree_grows_on_informative_data(self):
        rng = random.Random(1)
        tree = HoeffdingTree(n_classes=2, grace_period=100)
        tree.learn_many(list(_gaussian_stream(5000, rng, sep=4.0)))
        assert tree.n_split_nodes >= 1
        assert tree.n_leaves == tree.n_split_nodes + 1

    def test_uninformative_data_stays_leaf(self):
        rng = random.Random(2)
        # Disable the tie-threshold escape hatch: with random labels the
        # Hoeffding bound itself should block splitting.
        tree = HoeffdingTree(n_classes=2, tie_threshold=0.0)
        for _ in range(3000):
            tree.learn_one(
                Instance(x=(rng.random(),), y=int(rng.random() < 0.5))
            )
        assert tree.n_split_nodes == 0

    def test_max_depth_respected(self):
        rng = random.Random(3)
        tree = HoeffdingTree(n_classes=2, max_depth=2, grace_period=50,
                             tie_threshold=0.2)
        tree.learn_many(list(_gaussian_stream(8000, rng, sep=4.0)))
        assert tree.depth <= 2

    def test_prediction_before_training_is_uniform(self):
        tree = HoeffdingTree(n_classes=3)
        proba = tree.predict_proba_one((1.0, 2.0))
        assert proba == pytest.approx((1 / 3, 1 / 3, 1 / 3))

    def test_proba_sums_to_one(self):
        rng = random.Random(4)
        tree = HoeffdingTree(n_classes=2)
        tree.learn_many(list(_gaussian_stream(1000, rng)))
        proba = tree.predict_proba_one((0.5, 0.5))
        assert sum(proba) == pytest.approx(1.0)

    def test_three_class_learning(self):
        rng = random.Random(5)
        tree = HoeffdingTree(n_classes=3)
        for _ in range(6000):
            label = rng.randrange(3)
            tree.learn_one(
                Instance(x=(rng.gauss(label * 3.0, 1.0),), y=label)
            )
        correct = 0
        for _ in range(900):
            label = rng.randrange(3)
            correct += tree.predict_one((rng.gauss(label * 3.0, 1.0),)) == label
        assert correct / 900 > 0.80


class TestHoeffdingBound:
    def test_bound_decreases_with_n(self):
        tree = HoeffdingTree(n_classes=2)
        assert tree.hoeffding_bound(100) > tree.hoeffding_bound(1000)

    def test_bound_formula(self):
        tree = HoeffdingTree(n_classes=2, split_confidence=0.05)
        n = 400.0
        expected = math.sqrt(math.log(1 / 0.05) / (2 * n))
        assert tree.hoeffding_bound(n) == pytest.approx(expected)

    def test_bound_infinite_for_no_data(self):
        tree = HoeffdingTree(n_classes=2)
        assert tree.hoeffding_bound(0) == math.inf

    def test_gini_range_is_one(self):
        tree = HoeffdingTree(n_classes=3, split_criterion="gini",
                             split_confidence=0.05)
        n = 400.0
        expected = math.sqrt(math.log(1 / 0.05) / (2 * n))
        assert tree.hoeffding_bound(n) == pytest.approx(expected)


class TestLeafPrediction:
    def test_mc_vs_nb_modes(self):
        rng = random.Random(6)
        stream = list(_gaussian_stream(2000, rng, sep=3.0))
        for mode in ("mc", "nb", "nba"):
            tree = HoeffdingTree(n_classes=2, leaf_prediction=mode,
                                 grace_period=10 ** 9)  # never split
            tree.learn_many(stream)
            accuracy = _accuracy(tree, 500, random.Random(7), sep=3.0)
            if mode == "mc":
                # Majority class alone is ~50% on balanced data.
                assert accuracy < 0.65
            else:
                # NB leaves classify well without any splits.
                assert accuracy > 0.85


class TestMergeProtocol:
    def test_structure_copy_has_zeroed_stats(self):
        rng = random.Random(8)
        tree = HoeffdingTree(n_classes=2)
        tree.learn_many(list(_gaussian_stream(3000, rng, sep=4.0)))
        copy = tree.structure_copy()
        assert copy.n_leaves == tree.n_leaves
        assert copy.defer_splits
        assert all(leaf.total_weight == 0 for leaf in copy.leaves())

    def test_merge_partitioned_equals_combined_counts(self):
        rng = random.Random(9)
        stream = list(_gaussian_stream(2000, rng, sep=4.0))
        tree = HoeffdingTree(n_classes=2)
        # Grow some structure first.
        tree.learn_many(stream[:1000])
        part_a = tree.structure_copy()
        part_b = tree.structure_copy()
        part_a.learn_many(stream[1000:1500])
        part_b.learn_many(stream[1500:])
        before = sum(leaf.total_weight for leaf in tree.leaves())
        tree.merge(part_a)
        tree.merge(part_b)
        after = sum(leaf.total_weight for leaf in tree.leaves())
        assert after == pytest.approx(before + 1000)

    def test_merge_diverged_structures_raises(self):
        rng = random.Random(10)
        a = HoeffdingTree(n_classes=2, grace_period=100)
        b = HoeffdingTree(n_classes=2, grace_period=100)
        a.learn_many(list(_gaussian_stream(4000, rng, sep=4.0)))
        b.learn_many(list(_gaussian_stream(200, rng, sep=4.0)))
        if a.n_leaves != b.n_leaves:
            with pytest.raises(ValueError):
                a.merge(b)

    def test_deferred_splits_grow_tree(self):
        rng = random.Random(11)
        tree = HoeffdingTree(n_classes=2, grace_period=100)
        copy = tree.structure_copy()
        copy.learn_many(list(_gaussian_stream(3000, rng, sep=4.0)))
        assert copy.n_split_nodes == 0  # deferred
        tree.merge(copy)
        n_splits = tree.attempt_deferred_splits()
        assert n_splits >= 1
        assert tree.n_split_nodes >= 1

    def test_merge_wrong_type_raises(self):
        from repro.streamml.majority import MajorityClassClassifier

        tree = HoeffdingTree(n_classes=2)
        with pytest.raises(TypeError):
            tree.merge(MajorityClassClassifier(2))


class TestIntrospection:
    def test_describe_mentions_leaf(self):
        tree = HoeffdingTree(n_classes=2)
        assert "leaf" in tree.describe()

    def test_describe_shows_split(self):
        rng = random.Random(12)
        tree = HoeffdingTree(n_classes=2, grace_period=100)
        tree.learn_many(list(_gaussian_stream(5000, rng, sep=5.0)))
        assert "if x[" in tree.describe()

    def test_clone_is_untrained(self):
        rng = random.Random(13)
        tree = HoeffdingTree(n_classes=2, grace_period=77)
        tree.learn_many(list(_gaussian_stream(500, rng)))
        clone = tree.clone()
        assert clone.instances_seen == 0
        assert clone.grace_period == 77
