"""Tests for Gaussian naive Bayes (standalone + observers)."""

from __future__ import annotations

import math
import random

import pytest

from repro.streamml.instance import Instance
from repro.streamml.naive_bayes import (
    GaussianClassObserver,
    GaussianNaiveBayes,
    gaussian_pdf,
)


class TestGaussianPdf:
    def test_peak_at_mean(self):
        assert gaussian_pdf(0.0, 0.0, 1.0) == pytest.approx(
            1.0 / math.sqrt(2 * math.pi)
        )

    def test_symmetric(self):
        assert gaussian_pdf(1.0, 0.0, 1.0) == pytest.approx(
            gaussian_pdf(-1.0, 0.0, 1.0)
        )

    def test_zero_std_floored(self):
        # Must not divide by zero.
        assert gaussian_pdf(0.0, 0.0, 0.0) > 0


class TestGaussianClassObserver:
    def test_likelihood_unseen_class_is_one(self):
        observer = GaussianClassObserver(n_classes=2)
        assert observer.likelihood(1.0, 0) == 1.0

    def test_likelihood_higher_near_mean(self):
        observer = GaussianClassObserver(n_classes=2)
        for v in (4.0, 5.0, 6.0):
            observer.update(v, label=0)
        assert observer.likelihood(5.0, 0) > observer.likelihood(0.0, 0)

    def test_merge_combines_counts(self):
        a = GaussianClassObserver(n_classes=2)
        b = GaussianClassObserver(n_classes=2)
        a.update(1.0, 0)
        b.update(3.0, 0)
        a.merge(b)
        assert a.per_class[0].count == 2
        assert a.per_class[0].mean == pytest.approx(2.0)


class TestGaussianNaiveBayes:
    def test_uniform_before_training(self):
        model = GaussianNaiveBayes(n_classes=4)
        assert model.predict_proba_one((1.0,)) == pytest.approx((0.25,) * 4)

    def test_learns_gaussians(self):
        rng = random.Random(0)
        model = GaussianNaiveBayes(n_classes=2)
        for _ in range(2000):
            label = rng.random() < 0.5
            model.learn_one(
                Instance(x=(rng.gauss(2.0 if label else -2.0, 1.0),), y=int(label))
            )
        correct = 0
        for _ in range(500):
            label = rng.random() < 0.5
            x = (rng.gauss(2.0 if label else -2.0, 1.0),)
            correct += model.predict_one(x) == int(label)
        assert correct / 500 > 0.93

    def test_priors_affect_prediction(self):
        model = GaussianNaiveBayes(n_classes=2)
        # 9:1 class imbalance, identical feature distribution.
        for _ in range(90):
            model.learn_one(Instance(x=(0.0,), y=0))
        for _ in range(10):
            model.learn_one(Instance(x=(0.0,), y=1))
        assert model.predict_one((0.0,)) == 0

    def test_feature_count_mismatch_raises(self):
        model = GaussianNaiveBayes(n_classes=2)
        model.learn_one(Instance(x=(1.0, 2.0), y=0))
        with pytest.raises(ValueError):
            model.learn_one(Instance(x=(1.0,), y=1))

    def test_merge_equivalent_to_sequential(self):
        rng = random.Random(1)
        data = [
            Instance(x=(rng.gauss(0, 1), rng.gauss(1, 2)), y=rng.randrange(2))
            for _ in range(400)
        ]
        together = GaussianNaiveBayes(n_classes=2)
        together.learn_many(data)
        a = GaussianNaiveBayes(n_classes=2)
        b = GaussianNaiveBayes(n_classes=2)
        a.learn_many(data[:200])
        b.learn_many(data[200:])
        a.merge(b)
        probe = (0.3, 0.8)
        assert a.predict_proba_one(probe) == pytest.approx(
            together.predict_proba_one(probe), rel=1e-6
        )

    def test_merge_wrong_type(self):
        from repro.streamml.majority import NoChangeClassifier

        model = GaussianNaiveBayes(n_classes=2)
        with pytest.raises(TypeError):
            model.merge(NoChangeClassifier(2))
