"""Tests for the ADWIN drift detector."""

from __future__ import annotations

import random

import pytest

from repro.streamml.adwin import Adwin


class TestAdwinBasics:
    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            Adwin(delta=0.0)
        with pytest.raises(ValueError):
            Adwin(delta=1.0)

    def test_mean_of_constant_stream(self):
        detector = Adwin()
        for _ in range(500):
            detector.update(0.25)
        assert detector.mean == pytest.approx(0.25)
        assert detector.n_detections == 0

    def test_width_grows_without_change(self):
        detector = Adwin()
        rng = random.Random(0)
        for _ in range(2000):
            detector.update(rng.random() < 0.3)
        assert detector.width > 1000

    def test_variance_nonnegative(self):
        detector = Adwin()
        rng = random.Random(1)
        for _ in range(1000):
            detector.update(rng.gauss(0, 1))
        assert detector.variance >= 0.0

    def test_reset(self):
        detector = Adwin()
        for _ in range(100):
            detector.update(1.0)
        detector.reset()
        assert detector.width == 0
        assert detector.total == 0.0


class TestAdwinDetection:
    def _drift_stream(self, before, after, n_each, seed=0):
        rng = random.Random(seed)
        values = [float(rng.random() < before) for _ in range(n_each)]
        values += [float(rng.random() < after) for _ in range(n_each)]
        return values

    def test_detects_abrupt_error_increase(self):
        detector = Adwin(delta=0.002)
        detected_at = None
        for index, value in enumerate(self._drift_stream(0.1, 0.6, 2000)):
            if detector.update(value) and detected_at is None:
                detected_at = index
        assert detected_at is not None
        # Detection should happen after the change point, reasonably soon.
        assert 2000 <= detected_at < 3500

    def test_window_shrinks_after_drift(self):
        detector = Adwin(delta=0.002)
        for value in self._drift_stream(0.05, 0.7, 3000):
            detector.update(value)
        # Window should have dropped the pre-drift regime.
        assert detector.width < 4500
        assert detector.mean > 0.5

    def test_no_false_alarms_on_stationary_stream(self):
        detector = Adwin(delta=0.002)
        rng = random.Random(42)
        detections = 0
        for _ in range(10_000):
            if detector.update(float(rng.random() < 0.2)):
                detections += 1
        assert detections <= 1  # rare false alarms tolerated

    def test_smaller_delta_detects_later(self):
        stream = self._drift_stream(0.2, 0.4, 3000, seed=3)

        def first_detection(delta):
            detector = Adwin(delta=delta)
            for index, value in enumerate(stream):
                if detector.update(value):
                    return index
            return len(stream)

        # A smaller delta needs stronger evidence, so it cannot fire
        # earlier than a larger delta on the same stream.
        assert first_detection(0.05) <= first_detection(1e-5)

    def test_detects_gradual_drift(self):
        detector = Adwin(delta=0.01)
        rng = random.Random(5)
        detections = 0
        for index in range(8000):
            rate = 0.1 + 0.6 * min(index / 6000.0, 1.0)
            detections += detector.update(float(rng.random() < rate))
        assert detections >= 1
