"""Tests for the SEA/STAGGER generators and the drift wrapper."""

from __future__ import annotations

import itertools

import pytest

from repro.streamml import HoeffdingTree
from repro.streamml.generators import DriftStream, SEAGenerator, STAGGERGenerator


class TestSEAGenerator:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SEAGenerator(concept=4)
        with pytest.raises(ValueError):
            SEAGenerator(noise=1.0)

    def test_labels_match_threshold(self):
        for instance in SEAGenerator(concept=0).generate(500):
            assert instance.y == int(instance.x[0] + instance.x[1] <= 8.0)

    def test_noise_flips_labels(self):
        noisy = list(SEAGenerator(concept=1, noise=0.2, seed=3).generate(1000))
        flipped = sum(
            i.y != int(i.x[0] + i.x[1] <= 9.0) for i in noisy
        )
        assert 140 <= flipped <= 260  # ~20% of labels disagree with the rule

    def test_deterministic(self):
        a = [i.x for i in SEAGenerator(seed=9).generate(50)]
        b = [i.x for i in SEAGenerator(seed=9).generate(50)]
        assert a == b

    def test_infinite_stream(self):
        stream = SEAGenerator().generate(None)
        assert len(list(itertools.islice(stream, 25))) == 25

    def test_learnable(self):
        tree = HoeffdingTree(n_classes=2, grace_period=100)
        tree.learn_many(list(SEAGenerator(seed=4).generate(4000)))
        test = list(SEAGenerator(seed=5).generate(1000))
        accuracy = sum(
            tree.predict_one(i.x) == i.y for i in test
        ) / len(test)
        assert accuracy > 0.9


class TestSTAGGERGenerator:
    def test_invalid_concept(self):
        with pytest.raises(ValueError):
            STAGGERGenerator(concept=3)

    def test_one_hot_encoding(self):
        for instance in STAGGERGenerator().generate(100):
            assert len(instance.x) == 9
            assert sum(instance.x[:3]) == 1.0
            assert sum(instance.x[3:6]) == 1.0
            assert sum(instance.x[6:]) == 1.0

    def test_concept_semantics(self):
        # Concept 0: small and red -> size one-hot index 0, color index 0.
        for instance in STAGGERGenerator(concept=0, seed=2).generate(300):
            expected = int(instance.x[0] == 1.0 and instance.x[3] == 1.0)
            assert instance.y == expected

    def test_learnable(self):
        tree = HoeffdingTree(n_classes=2, grace_period=50)
        tree.learn_many(list(STAGGERGenerator(concept=1, seed=3).generate(3000)))
        test = list(STAGGERGenerator(concept=1, seed=4).generate(500))
        accuracy = sum(tree.predict_one(i.x) == i.y for i in test) / len(test)
        assert accuracy > 0.95


class TestDriftStream:
    def test_invalid_params(self):
        a, b = SEAGenerator(0), SEAGenerator(2)
        with pytest.raises(ValueError):
            DriftStream(a, b, position=-1)
        with pytest.raises(ValueError):
            DriftStream(a, b, position=10, width=0)

    def test_abrupt_switch(self):
        stream = DriftStream(
            SEAGenerator(concept=0, seed=1),
            SEAGenerator(concept=2, seed=2),
            position=500,
            width=1,
        )
        instances = list(stream.generate(1000))
        # Before the switch labels follow theta=8; after, theta=7.
        before_errors = sum(
            i.y != int(i.x[0] + i.x[1] <= 8.0) for i in instances[:450]
        )
        after_errors = sum(
            i.y != int(i.x[0] + i.x[1] <= 7.0) for i in instances[550:]
        )
        assert before_errors == 0
        assert after_errors == 0

    def test_gradual_blend(self):
        stream = DriftStream(
            SEAGenerator(concept=0, seed=1),
            SEAGenerator(concept=2, seed=2),
            position=2000,
            width=1000,
        )
        instances = list(stream.generate(4000))
        # In the transition zone, both concepts appear.
        middle = instances[1800:2200]
        old_consistent = sum(
            i.y == int(i.x[0] + i.x[1] <= 8.0) for i in middle
        )
        assert 0 < old_consistent < len(middle)

    def test_adwin_catches_sea_drift(self):
        from repro.streamml import Adwin

        stream = DriftStream(
            SEAGenerator(concept=0, seed=1),
            SEAGenerator(concept=2, seed=2),
            position=3000,
            width=1,
        )
        tree = HoeffdingTree(n_classes=2, grace_period=100)
        detector = Adwin(delta=0.002)
        detected_at = None
        for index, instance in enumerate(stream.generate(6000)):
            error = float(tree.predict_one(instance.x) != instance.y)
            tree.learn_one(instance)
            if index > 500 and detector.update(error) and detected_at is None:
                detected_at = index
        assert detected_at is not None
        assert detected_at >= 3000
