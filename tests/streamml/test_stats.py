"""Tests for incremental statistics (repro.streamml.stats)."""

from __future__ import annotations

import math
import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streamml.stats import (
    ExponentialMovingStats,
    P2Quantile,
    RunningMinMax,
    RunningStats,
    percentile,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.std == 0.0

    def test_single_value(self):
        stats = RunningStats()
        stats.update(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0

    def test_matches_statistics_module(self):
        values = [1.5, 2.5, -3.0, 7.0, 0.0, 4.2]
        stats = RunningStats()
        for v in values:
            stats.update(v)
        assert stats.mean == pytest.approx(statistics.mean(values))
        assert stats.variance == pytest.approx(statistics.pvariance(values))
        assert stats.sample_variance == pytest.approx(statistics.variance(values))

    def test_weighted_update_equals_repeats(self):
        weighted = RunningStats()
        repeated = RunningStats()
        weighted.update(3.0, weight=4.0)
        weighted.update(1.0, weight=2.0)
        for _ in range(4):
            repeated.update(3.0)
        for _ in range(2):
            repeated.update(1.0)
        assert weighted.mean == pytest.approx(repeated.mean)
        assert weighted.variance == pytest.approx(repeated.variance)

    def test_zero_weight_ignored(self):
        stats = RunningStats()
        stats.update(10.0, weight=0.0)
        assert stats.count == 0

    @given(
        st.lists(finite_floats, min_size=1, max_size=50),
        st.lists(finite_floats, min_size=1, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_sequential(self, left, right):
        merged_input = RunningStats()
        for v in left + right:
            merged_input.update(v)
        a = RunningStats()
        b = RunningStats()
        for v in left:
            a.update(v)
        for v in right:
            b.update(v)
        merged = a.merge(b)
        assert merged.count == pytest.approx(merged_input.count)
        assert merged.mean == pytest.approx(merged_input.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(
            merged_input.variance, rel=1e-6, abs=1e-4
        )

    def test_merge_with_empty(self):
        a = RunningStats()
        a.update(1.0)
        a.update(2.0)
        merged = a.merge(RunningStats())
        assert merged.mean == pytest.approx(1.5)

    def test_copy_independent(self):
        a = RunningStats()
        a.update(1.0)
        b = a.copy()
        b.update(100.0)
        assert a.count == 1
        assert b.count == 2


class TestRunningMinMax:
    def test_empty_range_zero(self):
        tracker = RunningMinMax()
        assert tracker.range == 0.0

    def test_tracks_extremes(self):
        tracker = RunningMinMax()
        for v in (3.0, -1.0, 7.0, 2.0):
            tracker.update(v)
        assert tracker.min == -1.0
        assert tracker.max == 7.0
        assert tracker.range == 8.0

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_matches_builtin(self, values):
        tracker = RunningMinMax()
        for v in values:
            tracker.update(v)
        assert tracker.min == min(values)
        assert tracker.max == max(values)

    def test_merge(self):
        a = RunningMinMax()
        b = RunningMinMax()
        a.update(1.0)
        b.update(-5.0)
        b.update(9.0)
        merged = a.merge(b)
        assert merged.min == -5.0
        assert merged.max == 9.0
        assert merged.count == 3


class TestP2Quantile:
    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_returns_none(self):
        assert P2Quantile(0.5).value is None

    def test_small_sample_exact(self):
        sketch = P2Quantile(0.5)
        for v in (1.0, 2.0, 3.0):
            sketch.update(v)
        assert sketch.value == 2.0

    def test_median_of_uniform(self):
        rng = random.Random(1)
        sketch = P2Quantile(0.5)
        for _ in range(20_000):
            sketch.update(rng.random())
        assert sketch.value == pytest.approx(0.5, abs=0.02)

    def test_tail_quantile_of_gaussian(self):
        rng = random.Random(2)
        sketch = P2Quantile(0.95)
        for _ in range(30_000):
            sketch.update(rng.gauss(0, 1))
        assert sketch.value == pytest.approx(1.645, abs=0.1)

    def test_monotone_quantiles(self):
        rng = random.Random(3)
        low = P2Quantile(0.05)
        high = P2Quantile(0.95)
        for _ in range(5000):
            v = rng.expovariate(1.0)
            low.update(v)
            high.update(v)
        assert low.value < high.value


class TestExponentialMovingStats:
    def test_first_value_sets_mean(self):
        ems = ExponentialMovingStats(alpha=0.1)
        ems.update(10.0)
        assert ems.mean == 10.0
        assert ems.std == 0.0

    def test_tracks_level_shift(self):
        ems = ExponentialMovingStats(alpha=0.2)
        for _ in range(200):
            ems.update(0.0)
        for _ in range(200):
            ems.update(10.0)
        assert ems.mean == pytest.approx(10.0, abs=0.1)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ExponentialMovingStats(alpha=0.0)


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_value(self):
        assert percentile([5.0], 75) == 5.0

    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_bounds(self, values):
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)
