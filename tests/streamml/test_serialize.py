"""Tests for model serialization (save/load round trips)."""

from __future__ import annotations

import json
import random

import pytest

from repro.streamml import (
    AdaptiveRandomForest,
    GaussianNaiveBayes,
    HoeffdingTree,
    Instance,
    MajorityClassClassifier,
    NoChangeClassifier,
    StreamingLogisticRegression,
)
from repro.streamml.serialize import (
    SerializationError,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)


def _train(model, n=2000, seed=0, n_features=3):
    rng = random.Random(seed)
    for _ in range(n):
        label = rng.random() < 0.5
        x = tuple(
            rng.gauss(2.0 if label and f == 0 else 0.0, 1.0)
            for f in range(n_features)
        )
        model.learn_one(Instance(x=x, y=int(label)))
    return model


def _probes(seed=99, n=50, n_features=3):
    rng = random.Random(seed)
    return [
        tuple(rng.gauss(0.5, 2.0) for _ in range(n_features))
        for _ in range(n)
    ]


MODELS = [
    lambda: HoeffdingTree(n_classes=2, grace_period=100),
    lambda: StreamingLogisticRegression(n_classes=2),
    lambda: GaussianNaiveBayes(n_classes=2),
    lambda: MajorityClassClassifier(n_classes=2),
    lambda: NoChangeClassifier(n_classes=2),
    lambda: AdaptiveRandomForest(n_classes=2, ensemble_size=3, seed=5),
]


class TestRoundTrip:
    @pytest.mark.parametrize("factory", MODELS)
    def test_predictions_identical(self, factory):
        model = _train(factory())
        restored = model_from_dict(model_to_dict(model))
        for probe in _probes():
            assert restored.predict_proba_one(probe) == pytest.approx(
                model.predict_proba_one(probe)
            )

    @pytest.mark.parametrize("factory", MODELS)
    def test_payload_is_json_safe(self, factory):
        model = _train(factory(), n=500)
        payload = model_to_dict(model)
        json.dumps(payload)  # must not raise

    def test_file_round_trip(self, tmp_path):
        model = _train(HoeffdingTree(n_classes=2, grace_period=100))
        path = tmp_path / "model.json"
        size = save_model(model, path)
        assert size > 0
        restored = load_model(path)
        for probe in _probes():
            assert restored.predict_one(probe) == model.predict_one(probe)

    def test_restored_model_keeps_learning(self):
        model = _train(HoeffdingTree(n_classes=2, grace_period=100), n=1000)
        restored = model_from_dict(model_to_dict(model))
        _train(restored, n=1000, seed=1)
        assert restored.instances_seen == 2000

    def test_ht_structure_preserved(self):
        model = _train(HoeffdingTree(n_classes=2, grace_period=100), n=4000)
        restored = model_from_dict(model_to_dict(model))
        assert restored.n_leaves == model.n_leaves
        assert restored.n_split_nodes == model.n_split_nodes
        assert restored.depth == model.depth

    def test_arf_counters_preserved(self):
        model = _train(
            AdaptiveRandomForest(n_classes=2, ensemble_size=3, seed=5)
        )
        restored = model_from_dict(model_to_dict(model))
        assert restored.instances_seen == model.instances_seen
        assert [m.seen for m in restored.members] == [
            m.seen for m in model.members
        ]

    def test_broadcast_size_under_1mb(self):
        # The paper notes the serialized global model stays < 1 MB.
        model = _train(HoeffdingTree(n_classes=3, grace_period=100), n=5000)
        text = json.dumps(model_to_dict(model))
        assert len(text.encode("utf-8")) < 1_000_000


class TestErrors:
    def test_unknown_model_type(self):
        class Fake:
            pass

        with pytest.raises(SerializationError):
            model_to_dict(Fake())  # type: ignore[arg-type]

    def test_bad_schema_version(self):
        payload = model_to_dict(MajorityClassClassifier(2))
        payload["schema_version"] = 999
        with pytest.raises(SerializationError):
            model_from_dict(payload)

    def test_unknown_kind(self):
        payload = model_to_dict(MajorityClassClassifier(2))
        payload["kind"] = "svm"
        with pytest.raises(SerializationError):
            model_from_dict(payload)
