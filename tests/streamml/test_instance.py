"""Tests for Instance and ClassifiedInstance."""

from __future__ import annotations

import pytest

from repro.streamml.instance import ClassifiedInstance, Instance


class TestInstance:
    def test_coerces_to_tuple(self):
        instance = Instance(x=[1, 2, 3])
        assert instance.x == (1.0, 2.0, 3.0)
        assert isinstance(instance.x, tuple)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Instance(x=(1.0,), weight=-1.0)

    def test_labeled_flags(self):
        assert Instance(x=(0.0,), y=1).is_labeled
        assert not Instance(x=(0.0,)).is_labeled

    def test_n_features(self):
        assert Instance(x=(1.0, 2.0)).n_features == 2

    def test_with_label_preserves_fields(self):
        base = Instance(x=(1.0,), timestamp=5.0, tweet_id="t")
        labeled = base.with_label(2)
        assert labeled.y == 2
        assert labeled.timestamp == 5.0
        assert labeled.tweet_id == "t"
        assert base.y is None  # original untouched

    def test_with_weight(self):
        inst = Instance(x=(1.0,), y=0).with_weight(3.0)
        assert inst.weight == 3.0
        assert inst.y == 0

    def test_with_features(self):
        inst = Instance(x=(1.0, 2.0), y=1).with_features([9, 8])
        assert inst.x == (9.0, 8.0)
        assert inst.y == 1


class TestClassifiedInstance:
    def test_correctness_labeled(self):
        inst = Instance(x=(0.0,), y=1)
        assert ClassifiedInstance(inst, predicted=1).is_correct is True
        assert ClassifiedInstance(inst, predicted=0).is_correct is False

    def test_correctness_unlabeled_is_none(self):
        inst = Instance(x=(0.0,))
        assert ClassifiedInstance(inst, predicted=0).is_correct is None

    def test_confidence(self):
        inst = Instance(x=(0.0,))
        classified = ClassifiedInstance(inst, predicted=1, proba=(0.2, 0.8))
        assert classified.confidence == pytest.approx(0.8)

    def test_confidence_without_proba(self):
        inst = Instance(x=(0.0,))
        assert ClassifiedInstance(inst, predicted=0).confidence == 0.0
