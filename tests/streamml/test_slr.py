"""Tests for Streaming Logistic Regression."""

from __future__ import annotations

import random

import pytest

from repro.streamml.instance import Instance
from repro.streamml.slr import StreamingLogisticRegression


def _stream(n, rng, scale=1.0):
    for _ in range(n):
        label = rng.random() < 0.5
        yield Instance(
            x=(
                rng.gauss(1.5 if label else -1.5, 1.0) * scale,
                rng.gauss(0.0, 1.0) * scale,
            ),
            y=int(label),
        )


class TestConstruction:
    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            StreamingLogisticRegression(n_classes=2, learning_rate=0.0)

    def test_invalid_regularizer(self):
        with pytest.raises(ValueError):
            StreamingLogisticRegression(n_classes=2, regularizer="elastic")

    def test_negative_regularization(self):
        with pytest.raises(ValueError):
            StreamingLogisticRegression(n_classes=2, regularization=-0.1)


class TestLearning:
    def test_prediction_before_training_is_uniform(self):
        model = StreamingLogisticRegression(n_classes=2)
        assert model.predict_proba_one((1.0, 2.0)) == pytest.approx((0.5, 0.5))

    def test_learns_linear_boundary(self):
        rng = random.Random(0)
        model = StreamingLogisticRegression(n_classes=2)
        model.learn_many(list(_stream(3000, rng)))
        correct = sum(
            model.predict_one(i.x) == i.y for i in _stream(800, rng)
        )
        assert correct / 800 > 0.85

    def test_multiclass(self):
        rng = random.Random(1)
        model = StreamingLogisticRegression(n_classes=3)
        for _ in range(5000):
            label = rng.randrange(3)
            model.learn_one(
                Instance(x=(rng.gauss(3.0 * label, 1.0), 1.0), y=label)
            )
        correct = 0
        for _ in range(600):
            label = rng.randrange(3)
            correct += model.predict_one((rng.gauss(3.0 * label, 1.0), 1.0)) == label
        assert correct / 600 > 0.80

    def test_poor_scaling_hurts(self):
        # The Fig. 8 effect: unnormalized large-scale features wreck SGD.
        rng = random.Random(2)
        good = StreamingLogisticRegression(n_classes=2)
        bad = StreamingLogisticRegression(n_classes=2)
        good.learn_many(list(_stream(2000, rng, scale=1.0)))
        bad.learn_many(list(_stream(2000, rng, scale=1000.0)))
        good_acc = sum(
            good.predict_one(i.x) == i.y for i in _stream(500, rng, 1.0)
        )
        bad_acc = sum(
            bad.predict_one(i.x) == i.y for i in _stream(500, rng, 1000.0)
        )
        assert good_acc > bad_acc

    def test_l1_shrinks_irrelevant_weights(self):
        rng = random.Random(3)
        l1 = StreamingLogisticRegression(
            n_classes=2, regularizer="l1", regularization=0.05
        )
        none = StreamingLogisticRegression(
            n_classes=2, regularizer="zero"
        )
        stream = list(_stream(4000, rng))
        l1.learn_many(stream)
        none.learn_many(stream)
        # Feature 1 is noise; L1 should keep its weight smaller.
        assert abs(l1.weights[1][1]) <= abs(none.weights[1][1]) + 0.05

    def test_decay_reduces_step(self):
        model = StreamingLogisticRegression(
            n_classes=2, learning_rate=0.5, decay=0.01
        )
        rng = random.Random(4)
        model.learn_many(list(_stream(100, rng)))
        early = [row[:] for row in model.weights]
        model.learn_many(list(_stream(100, rng)))
        # weights still move, but model remains finite / stable
        assert all(abs(w) < 100 for row in model.weights for w in row)
        assert early != model.weights

    def test_weighted_instance(self):
        a = StreamingLogisticRegression(n_classes=2)
        b = StreamingLogisticRegression(n_classes=2)
        a.learn_one(Instance(x=(1.0, 0.0), y=1, weight=2.0))
        b.learn_one(Instance(x=(1.0, 0.0), y=1, weight=1.0))
        assert a.weights[1][0] > b.weights[1][0]


class TestMerge:
    def test_merge_averages_weights(self):
        a = StreamingLogisticRegression(n_classes=2)
        b = StreamingLogisticRegression(n_classes=2)
        rng = random.Random(5)
        stream = list(_stream(2000, rng))
        a.learn_many(stream[:1000])
        b.learn_many(stream[1000:])
        wa = a.weights[1][0]
        wb = b.weights[1][0]
        a.merge(b)
        assert min(wa, wb) <= a.weights[1][0] <= max(wa, wb)
        assert a.instances_seen == 2000

    def test_merge_into_empty_copies(self):
        a = StreamingLogisticRegression(n_classes=2)
        b = StreamingLogisticRegression(n_classes=2)
        b.learn_one(Instance(x=(1.0,), y=1))
        a.merge(b)
        assert a.weights == b.weights
        assert a.instances_seen == 1

    def test_merge_empty_other_is_noop(self):
        a = StreamingLogisticRegression(n_classes=2)
        a.learn_one(Instance(x=(1.0,), y=0))
        before = [row[:] for row in a.weights]
        a.merge(StreamingLogisticRegression(n_classes=2))
        assert a.weights == before

    def test_merge_wrong_type(self):
        from repro.streamml.hoeffding_tree import HoeffdingTree

        model = StreamingLogisticRegression(n_classes=2)
        with pytest.raises(TypeError):
            model.merge(HoeffdingTree(n_classes=2))
