"""Tests for the DDM and EDDM drift detectors."""

from __future__ import annotations

import random

import pytest

from repro.streamml.ddm import DDM, EDDM


def _error_stream(rates, n_each, seed=0):
    rng = random.Random(seed)
    for rate in rates:
        for _ in range(n_each):
            yield float(rng.random() < rate)


class TestDDM:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DDM(min_instances=0)
        with pytest.raises(ValueError):
            DDM(warning_level=3.0, drift_level=2.0)

    def test_rare_detections_on_stationary(self):
        detector = DDM()
        detections = sum(
            detector.update(e) for e in _error_stream([0.2], 5000)
        )
        # DDM has a known nonzero false-alarm rate; it must stay rare.
        assert detections <= 2

    def test_detects_error_increase(self):
        detector = DDM()
        detections = []
        for index, error in enumerate(_error_stream([0.1, 0.5], 2000)):
            if detector.update(error):
                detections.append(index)
        # A detection lands shortly after the change point at 2000.
        assert any(2000 <= at <= 2600 for at in detections)

    def test_warning_precedes_drift(self):
        detector = DDM()
        warned_at = None
        drifted_at = None
        for index, error in enumerate(_error_stream([0.1, 0.45], 2000, seed=1)):
            drift = detector.update(error)
            if detector.in_warning and warned_at is None:
                warned_at = index
            if drift and drifted_at is None:
                drifted_at = index
        assert warned_at is not None and drifted_at is not None
        assert warned_at <= drifted_at

    def test_reset_after_drift(self):
        detector = DDM()
        for error in _error_stream([0.05, 0.6], 1500, seed=2):
            detector.update(error)
        assert detector.n_detections >= 1
        # After the post-drift reset, a stable regime stays quiet.
        for error in _error_stream([0.6], 3000, seed=3):
            detector.update(error)
        assert detector.n_detections <= 2


class TestEDDM:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EDDM(warning_threshold=0.8, drift_threshold=0.9)

    def test_no_detection_on_stationary(self):
        detector = EDDM()
        detections = sum(
            detector.update(e) for e in _error_stream([0.15], 6000, seed=4)
        )
        assert detections <= 1

    def test_detects_gradual_drift(self):
        rng = random.Random(5)
        detector = EDDM()
        detections = 0
        for index in range(12000):
            rate = 0.05 + 0.45 * min(index / 8000.0, 1.0)
            detections += detector.update(float(rng.random() < rate))
        assert detections >= 1

    def test_detects_abrupt_drift(self):
        detector = EDDM()
        detections = sum(
            detector.update(e)
            for e in _error_stream([0.05, 0.5], 3000, seed=6)
        )
        assert detections >= 1

    def test_reset(self):
        detector = EDDM()
        for error in _error_stream([0.3], 100, seed=7):
            detector.update(error)
        detector.reset()
        assert detector._n_errors == 0
        assert detector._ticks == 0
