"""Tests for the Sarcasm and Offensive dataset analogs (Fig. 17 inputs)."""

from __future__ import annotations

import pytest

from repro.data.offensive import (
    CLASS_NAMES as OFFENSIVE_CLASSES,
    OffensiveDatasetGenerator,
    OffensiveFeatureExtractor,
)
from repro.data.sarcasm import (
    SARCASTIC,
    SarcasmDatasetGenerator,
    SarcasmFeatureExtractor,
)


class TestSarcasmGenerator:
    def test_paper_proportions(self):
        gen = SarcasmDatasetGenerator(n_tweets=6100)
        assert gen.n_sarcastic == 650

    def test_default_scale(self):
        gen = SarcasmDatasetGenerator()
        assert gen.n_tweets == 61_000
        assert gen.n_sarcastic == 6_500

    def test_label_counts(self):
        items = SarcasmDatasetGenerator(n_tweets=2000, seed=1).generate_list()
        sarcastic = sum(1 for item in items if item.label == SARCASTIC)
        assert sarcastic == round(2000 * 6500 / 61000)

    def test_deterministic(self):
        a = SarcasmDatasetGenerator(n_tweets=200, seed=3).generate_list()
        b = SarcasmDatasetGenerator(n_tweets=200, seed=3).generate_list()
        assert [i.tweet.text for i in a] == [i.tweet.text for i in b]

    def test_features_extracted(self):
        extractor = SarcasmFeatureExtractor()
        items = SarcasmDatasetGenerator(n_tweets=100, seed=2).generate_list()
        for item in items:
            instance = extractor.extract(item)
            assert instance.n_features == len(extractor.FEATURE_NAMES)
            assert instance.y in (0, 1)

    def test_sarcastic_tweets_have_more_contrast(self):
        extractor = SarcasmFeatureExtractor()
        items = SarcasmDatasetGenerator(n_tweets=3000, seed=4).generate_list()
        contrast_index = extractor.FEATURE_NAMES.index("sentimentContrast")
        sarcastic = [
            extractor.extract(i).x[contrast_index]
            for i in items if i.label == SARCASTIC
        ]
        genuine = [
            extractor.extract(i).x[contrast_index]
            for i in items if i.label != SARCASTIC
        ]
        assert sum(sarcastic) / len(sarcastic) > sum(genuine) / len(genuine)


class TestOffensiveGenerator:
    def test_paper_proportions(self):
        gen = OffensiveDatasetGenerator()
        assert gen.n_tweets == 16_000
        assert gen.class_counts == (11_000, 2_000, 3_000)

    def test_scaled(self):
        gen = OffensiveDatasetGenerator(n_tweets=1600)
        assert gen.class_counts == (1100, 200, 300)

    def test_labels_valid(self):
        tweets = OffensiveDatasetGenerator(n_tweets=500, seed=2).generate_list()
        assert all(t.label in OFFENSIVE_CLASSES for t in tweets)

    def test_deterministic(self):
        a = OffensiveDatasetGenerator(n_tweets=200, seed=5).generate_list()
        b = OffensiveDatasetGenerator(n_tweets=200, seed=5).generate_list()
        assert [t.text for t in a] == [t.text for t in b]

    def test_feature_separation(self):
        extractor = OffensiveFeatureExtractor()
        tweets = OffensiveDatasetGenerator(n_tweets=2000, seed=1).generate_list()
        outgroup_index = extractor.FEATURE_NAMES.index("outgroupMentions")
        gender_index = extractor.FEATURE_NAMES.index("genderMentions")

        def mean_feature(label, index):
            values = [
                extractor.extract(t).x[index]
                for t in tweets if t.label == label
            ]
            return sum(values) / len(values)

        assert mean_feature("racism", outgroup_index) > mean_feature(
            "none", outgroup_index
        )
        assert mean_feature("sexism", gender_index) > mean_feature(
            "none", gender_index
        )

    def test_extractor_labels(self):
        extractor = OffensiveFeatureExtractor()
        tweets = OffensiveDatasetGenerator(n_tweets=50, seed=3).generate_list()
        labels = {extractor.extract(t).y for t in tweets}
        assert labels <= {0, 1, 2}
