"""Template-integrity tests for the synthetic text generators."""

from __future__ import annotations

import pytest

from repro.data import vocab
from repro.data.synthetic import AbusiveDatasetGenerator, NoiseConfig
from repro.text.lexicons import SWEAR_WORDS


class TestVocabularyPools:
    def test_emerging_pool_large_enough_for_drift(self):
        # The drift schedule unlocks up to initial + 9*per_day words.
        assert len(vocab.emerging_insults()) >= 300

    def test_emerging_disjoint_from_seed_lexicon(self):
        assert not set(vocab.emerging_insults()) & SWEAR_WORDS

    def test_emerging_deterministic(self):
        vocab.emerging_insults.cache_clear()
        first = vocab.emerging_insults()
        vocab.emerging_insults.cache_clear()
        assert vocab.emerging_insults() == first

    def test_seed_insults_hit_lexicon(self):
        # Seed insults must count as swears for the Fig. 4 calibration.
        hits = sum(1 for w in vocab.SEED_INSULT_NOUNS if w in SWEAR_WORDS)
        assert hits / len(vocab.SEED_INSULT_NOUNS) > 0.9

    def test_pools_are_nonempty(self):
        for pool in (
            vocab.POSITIVE_ADJECTIVES, vocab.NEGATIVE_ADJECTIVES,
            vocab.NEUTRAL_NOUNS, vocab.PLACES, vocab.PEOPLE,
            vocab.TIME_WORDS, vocab.NEUTRAL_VERBS, vocab.HATE_GROUPS,
            vocab.SWEAR_INTENSIFIERS, vocab.HASHTAG_POOL,
            vocab.URL_POOL, vocab.MENTION_POOL,
        ):
            assert len(pool) > 0


class TestTemplateFilling:
    @pytest.fixture(scope="class")
    def texts(self):
        gen = AbusiveDatasetGenerator(
            n_tweets=3000,
            seed=31,
            noise=NoiseConfig(obfuscation_rate=0.3),
        )
        return [t.text for t in gen.generate()]

    def test_no_unfilled_slots(self, texts):
        for text in texts:
            assert "{" not in text and "}" not in text, text

    def test_no_double_spaces(self, texts):
        for text in texts:
            assert "  " not in text, text

    def test_texts_nonempty(self, texts):
        assert all(text.strip() for text in texts)

    def test_template_slot_names_all_supported(self):
        import re

        supported = {
            "pos_adj", "neu_adj", "neg_adj", "pos_adv", "noun", "place",
            "person", "time", "verb", "group", "swear", "insult",
            "insult_plural",
        }
        all_templates = (
            vocab.NORMAL_CLAUSES + vocab.NORMAL_TAILS
            + vocab.ABUSIVE_CLAUSES + vocab.HATEFUL_CLAUSES
        )
        for template in all_templates:
            for slot in re.findall(r"\{(\w+)\}", template):
                assert slot in supported, (template, slot)
