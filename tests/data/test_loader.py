"""Tests for JSONL stream I/O and stream composition."""

from __future__ import annotations

import pytest

from repro.data.loader import (
    class_histogram,
    interleave_streams,
    read_jsonl,
    split_by_day,
    strip_labels,
    take,
    write_jsonl,
)
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.data.tweet import SECONDS_PER_DAY, Tweet, UserProfile


def _tweets(n, start=0.0, label="normal"):
    return [
        Tweet(
            tweet_id=f"t{start}-{i}",
            text=f"tweet number {i}",
            created_at=start + i * 10.0,
            user=UserProfile(user_id=str(i)),
            label=label,
        )
        for i in range(n)
    ]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "tweets.jsonl"
        original = _tweets(25)
        assert write_jsonl(original, path) == 25
        loaded = list(read_jsonl(path))
        assert loaded == original

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "tweets.jsonl"
        write_jsonl(_tweets(2), path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(list(read_jsonl(path))) == 2

    def test_synthetic_round_trip(self, tmp_path):
        path = tmp_path / "synth.jsonl"
        original = AbusiveDatasetGenerator(n_tweets=100, seed=1).generate_list()
        write_jsonl(original, path)
        assert list(read_jsonl(path)) == original


class TestStreamComposition:
    def test_strip_labels(self):
        unlabeled = list(strip_labels(_tweets(3, label="abusive")))
        assert all(t.label is None for t in unlabeled)
        assert all(t.text for t in unlabeled)

    def test_interleave_orders_by_timestamp(self):
        a = _tweets(5, start=0.0)
        b = _tweets(5, start=5.0)
        merged = list(interleave_streams(a, b))
        times = [t.created_at for t in merged]
        assert times == sorted(times)
        assert len(merged) == 10

    def test_interleave_is_lazy(self):
        def infinite():
            i = 0
            while True:
                yield Tweet(
                    tweet_id=str(i), text="x", created_at=float(i),
                    user=UserProfile(user_id="0"),
                )
                i += 1

        merged = interleave_streams(infinite())
        assert take(merged, 3)[2].created_at == 2.0

    def test_split_by_day(self):
        tweets = [
            Tweet(
                tweet_id=str(i), text="x",
                created_at=i * SECONDS_PER_DAY + 100.0,
                user=UserProfile(user_id="0"),
            )
            for i in range(4)
        ]
        days = split_by_day(tweets, stream_start=0.0)
        assert sorted(days) == [0, 1, 2, 3]
        assert all(len(v) == 1 for v in days.values())

    def test_take_short_stream(self):
        assert len(take(iter(_tweets(3)), 10)) == 3

    def test_class_histogram(self):
        tweets = _tweets(2, label="normal") + _tweets(1, label="abusive")
        tweets.append(
            Tweet(tweet_id="u", text="x", created_at=0.0,
                  user=UserProfile(user_id="0"))
        )
        histogram = class_histogram(tweets)
        assert histogram == {"normal": 2, "abusive": 1, "unlabeled": 1}
