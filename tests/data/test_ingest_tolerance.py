"""Ingest tolerance: null-text normalization and repair counting."""

import json

from repro.data.firehose import FirehoseWorkload
from repro.data.loader import (
    IngestStats,
    read_jsonl,
    sanitize_stream,
    sanitize_tweet,
    write_jsonl,
)
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.data.tweet import Tweet
from repro.reliability import corrupt_tweet


def _tweets(n=20, seed=5):
    return AbusiveDatasetGenerator(
        n_tweets=n, n_days=1, seed=seed
    ).generate_list()


class TestSanitizeTweet:
    def test_none_text_becomes_empty_string(self):
        bad = corrupt_tweet(_tweets(1)[0], "none_text")
        stats = IngestStats()
        fixed = sanitize_tweet(bad, stats)
        assert fixed.text == ""
        assert stats.n_null_text == 1
        assert bad.text is None  # input untouched

    def test_clean_tweet_passes_through_unchanged(self):
        tweet = _tweets(1)[0]
        stats = IngestStats()
        assert sanitize_tweet(tweet, stats) is tweet
        assert stats.n_null_text == 0

    def test_other_corruption_not_masked(self):
        # Sanitization repairs only the tolerable defect; NaN counters
        # must still reach the quarantine layer.
        bad = corrupt_tweet(_tweets(1)[0], "nan_counts")
        assert sanitize_tweet(bad) is bad


class TestReadJsonl:
    def test_null_text_line_is_repaired_and_counted(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        tweets = _tweets(5)
        write_jsonl(tweets, path)
        payload = tweets[2].to_json()
        payload["text"] = None
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload) + "\n")
        stats = IngestStats()
        loaded = list(read_jsonl(path, stats))
        assert len(loaded) == 6
        assert loaded[-1].text == ""
        assert stats.n_read == 6
        assert stats.n_null_text == 1
        assert all(isinstance(t.text, str) for t in loaded)

    def test_missing_text_key_defaults_to_empty(self):
        tweet = Tweet.from_json({"id_str": "1", "created_at": 0.0})
        assert tweet.text == ""


class TestSanitizeStream:
    def test_counts_reads_and_repairs(self):
        tweets = _tweets(10)
        tweets[3] = corrupt_tweet(tweets[3], "none_text")
        tweets[7] = corrupt_tweet(tweets[7], "none_text")
        stats = IngestStats()
        out = list(sanitize_stream(tweets, stats))
        assert stats.as_dict() == {"n_read": 10, "n_null_text": 2}
        assert all(isinstance(t.text, str) for t in out)


class TestFirehoseIngest:
    def test_workload_stream_is_sanitized_and_counted(self):
        workload = FirehoseWorkload(n_unlabeled=50, n_labeled=50, seed=2)
        tweets = list(workload.stream())
        assert len(tweets) == workload.total_tweets
        assert workload.ingest_stats.n_read == workload.total_tweets
        assert workload.ingest_stats.n_null_text == 0
        assert all(isinstance(t.text, str) for t in tweets)
