"""Tests for the tweet data model and JSON round-tripping."""

from __future__ import annotations

import json

import pytest

from repro.data.tweet import SECONDS_PER_DAY, Tweet, UserProfile


@pytest.fixture()
def user() -> UserProfile:
    return UserProfile(
        user_id="99",
        screen_name="sample",
        created_at=1000.0,
        statuses_count=500,
        listed_count=2,
        followers_count=120,
        friends_count=80,
    )


@pytest.fixture()
def tweet(user) -> Tweet:
    return Tweet(
        tweet_id="abc",
        text="hello world",
        created_at=1000.0 + 10 * SECONDS_PER_DAY,
        user=user,
        is_retweet=True,
        label="normal",
    )


class TestUserProfile:
    def test_account_age(self, user):
        now = user.created_at + 5 * SECONDS_PER_DAY
        assert user.account_age_days(now) == pytest.approx(5.0)

    def test_account_age_never_negative(self, user):
        assert user.account_age_days(user.created_at - 100) == 0.0

    def test_json_round_trip(self, user):
        assert UserProfile.from_json(user.to_json()) == user

    def test_from_json_tolerates_missing_fields(self):
        parsed = UserProfile.from_json({"id_str": "7"})
        assert parsed.user_id == "7"
        assert parsed.followers_count == 0


class TestTweet:
    def test_json_round_trip(self, tweet):
        assert Tweet.from_json(tweet.to_json()) == tweet

    def test_json_line_round_trip(self, tweet):
        assert Tweet.from_json_line(tweet.to_json_line()) == tweet

    def test_json_line_is_single_line(self, tweet):
        assert "\n" not in tweet.to_json_line()

    def test_label_omitted_when_none(self, tweet):
        tweet.label = None
        assert "label" not in tweet.to_json()

    def test_is_labeled(self, tweet):
        assert tweet.is_labeled
        tweet.label = None
        assert not tweet.is_labeled

    def test_day_index(self, tweet):
        assert tweet.day_index(stream_start=1000.0) == 10

    def test_payload_is_valid_json(self, tweet):
        parsed = json.loads(tweet.to_json_line())
        assert parsed["id_str"] == "abc"
        assert parsed["user"]["screen_name"] == "sample"
