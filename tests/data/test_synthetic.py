"""Tests for the calibrated synthetic abusive dataset."""

from __future__ import annotations

import statistics

import pytest

from repro.data.synthetic import (
    ABUSIVE,
    CLASS_NAMES,
    HATEFUL,
    NORMAL,
    PAPER_CLASS_COUNTS,
    PAPER_TOTAL,
    AbusiveDatasetGenerator,
    DriftConfig,
    to_binary_label,
)
from repro.data.vocab import emerging_insults
from repro.text.lexicons import SWEAR_WORDS
from repro.text.tokenizer import words


@pytest.fixture(scope="module")
def stream():
    return AbusiveDatasetGenerator(n_tweets=6000, seed=5).generate_list()


def _by_label(stream):
    groups = {name: [] for name in CLASS_NAMES}
    for tweet in stream:
        groups[tweet.label].append(tweet)
    return groups


class TestShape:
    def test_default_matches_paper_total(self):
        gen = AbusiveDatasetGenerator()
        assert gen.n_tweets == PAPER_TOTAL == 85_984
        assert gen.class_counts == PAPER_CLASS_COUNTS

    def test_scaled_proportions(self):
        gen = AbusiveDatasetGenerator(n_tweets=10_000)
        normal, abusive, hateful = gen.class_counts
        assert normal + abusive + hateful == 10_000
        assert abusive / 10_000 == pytest.approx(27179 / PAPER_TOTAL, abs=0.01)
        assert hateful / 10_000 == pytest.approx(4970 / PAPER_TOTAL, abs=0.01)

    def test_generates_requested_count(self, stream):
        assert len(stream) == 6000

    def test_timestamps_sorted(self, stream):
        times = [t.created_at for t in stream]
        assert times == sorted(times)

    def test_ten_days(self, stream):
        start = AbusiveDatasetGenerator(n_tweets=6000, seed=5).start_time
        days = {t.day_index(start) for t in stream}
        assert days == set(range(10))

    def test_all_labeled(self, stream):
        assert all(t.label in CLASS_NAMES for t in stream)

    def test_unique_tweet_ids(self, stream):
        ids = [t.tweet_id for t in stream]
        assert len(set(ids)) == len(ids)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            AbusiveDatasetGenerator(n_tweets=5, n_days=10)
        with pytest.raises(ValueError):
            AbusiveDatasetGenerator(n_days=0)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = AbusiveDatasetGenerator(n_tweets=300, seed=9).generate_list()
        b = AbusiveDatasetGenerator(n_tweets=300, seed=9).generate_list()
        assert [t.text for t in a] == [t.text for t in b]

    def test_different_seed_differs(self):
        a = AbusiveDatasetGenerator(n_tweets=300, seed=1).generate_list()
        b = AbusiveDatasetGenerator(n_tweets=300, seed=2).generate_list()
        assert [t.text for t in a] != [t.text for t in b]


class TestCalibration:
    """Per-class statistics should track Fig. 4 of the paper."""

    def test_swear_word_ordering(self, stream):
        groups = _by_label(stream)
        means = {
            name: statistics.mean(
                sum(1 for w in words(t.text) if w in SWEAR_WORDS)
                for t in tweets
            )
            for name, tweets in groups.items()
        }
        # Paper: abusive 2.54 > hateful 1.84 >> normal 0.10.
        assert means["abusive"] > means["hateful"] > means["normal"]
        assert means["normal"] < 0.35

    def test_account_age_ordering(self, stream):
        groups = _by_label(stream)
        means = {
            name: statistics.mean(
                t.user.account_age_days(t.created_at) for t in tweets
            )
            for name, tweets in groups.items()
        }
        # Paper: normal 1487.74 > hateful 1379.95 > abusive 1291.97.
        assert means["normal"] > means["hateful"] > means["abusive"]

    def test_uppercase_ordering(self, stream):
        groups = _by_label(stream)

        def upper_mean(tweets):
            from repro.text.tokenizer import tokenize

            return statistics.mean(
                sum(1 for tok in tokenize(t.text) if tok.is_uppercase_word)
                for t in tweets
            )

        means = {name: upper_mean(tweets) for name, tweets in groups.items()}
        # Paper: abusive 1.84 > hateful 1.57 > normal 0.96.
        assert means["abusive"] > means["normal"]
        assert means["hateful"] > means["normal"]

    def test_words_per_sentence_ordering(self, stream):
        from repro.text.tokenizer import split_sentences

        groups = _by_label(stream)

        def wps(tweets):
            values = []
            for t in tweets:
                sentences = split_sentences(t.text)
                if sentences:
                    values.append(len(words(t.text)) / len(sentences))
            return statistics.mean(values)

        # Paper: normal 16.66 > hateful 15.93 > abusive 12.66.
        assert wps(groups["normal"]) > wps(groups["abusive"])


class TestDrift:
    def test_emerging_pool_disjoint_from_seed(self):
        assert not (set(emerging_insults()) & SWEAR_WORDS)

    def test_emerging_words_increase_over_days(self):
        gen = AbusiveDatasetGenerator(n_tweets=8000, seed=3)
        days = gen.generate_days()
        emerging = set(emerging_insults())

        def emerging_rate(tweets):
            aggressive = [t for t in tweets if t.label != "normal"]
            hits = sum(
                1
                for t in aggressive
                for w in words(t.text)
                if w in emerging
            )
            return hits / max(len(aggressive), 1)

        early = emerging_rate(days[0] + days[1])
        late = emerging_rate(days[8] + days[9])
        assert late > early * 1.5

    def test_drift_disabled(self):
        gen = AbusiveDatasetGenerator(
            n_tweets=2000, seed=3, drift=DriftConfig(enabled=False)
        )
        emerging = set(emerging_insults())
        hits = sum(
            1
            for t in gen.generate()
            for w in words(t.text)
            if w in emerging
        )
        assert hits == 0


class TestBinaryMapping:
    def test_to_binary_label(self):
        assert to_binary_label("normal") == "normal"
        assert to_binary_label("abusive") == "aggressive"
        assert to_binary_label("hateful") == "aggressive"

    def test_generate_days_partition(self):
        gen = AbusiveDatasetGenerator(n_tweets=1000, seed=4)
        days = gen.generate_days()
        assert sum(len(d) for d in days) == 1000
        assert len(days) == 10
