"""Tests for the firehose workload composition."""

from __future__ import annotations

import itertools

import pytest

from repro.data.firehose import ArrivalSchedule, FirehoseWorkload


class TestFirehoseWorkload:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            FirehoseWorkload(n_unlabeled=-1)
        with pytest.raises(ValueError):
            FirehoseWorkload(n_unlabeled=0, n_labeled=0)

    def test_total_and_fraction(self):
        workload = FirehoseWorkload(n_unlabeled=900, n_labeled=100)
        assert workload.total_tweets == 1000
        assert workload.labeled_fraction() == pytest.approx(0.1)

    def test_stream_mix(self):
        workload = FirehoseWorkload(n_unlabeled=600, n_labeled=200, seed=5)
        tweets = list(workload.stream())
        assert len(tweets) == 800
        labeled = sum(1 for t in tweets if t.is_labeled)
        assert labeled == 200

    def test_timestamp_order(self):
        workload = FirehoseWorkload(n_unlabeled=400, n_labeled=150, seed=5)
        times = [t.created_at for t in workload.stream()]
        assert times == sorted(times)

    def test_streams_carry_distinct_tweets(self):
        workload = FirehoseWorkload(n_unlabeled=300, n_labeled=300, seed=7)
        labeled_texts = {t.text for t in workload.labeled_stream()}
        unlabeled_texts = {t.text for t in workload.unlabeled_stream()}
        # Different seeds: overlap should be far from total.
        assert len(labeled_texts & unlabeled_texts) < len(labeled_texts) / 2

    def test_lazy_generation(self):
        # A huge workload must be streamable without materialization.
        workload = FirehoseWorkload(n_unlabeled=5_000_000, n_labeled=86_000)
        head = list(itertools.islice(workload.stream(), 100))
        assert len(head) == 100

    def test_unlabeled_only(self):
        workload = FirehoseWorkload(n_unlabeled=50, n_labeled=0)
        tweets = list(workload.stream())
        assert len(tweets) == 50
        assert all(not t.is_labeled for t in tweets)

    def test_pipeline_consumes_mix(self):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import AggressionDetectionPipeline

        workload = FirehoseWorkload(n_unlabeled=700, n_labeled=700, seed=9)
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        result = pipeline.process_stream(workload.stream())
        assert result.n_labeled == 700
        assert result.n_unlabeled == 700
        assert result.n_alerts > 0


class TestArrivalSchedule:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ArrivalSchedule(rate_hz=0.0)
        with pytest.raises(ValueError):
            ArrivalSchedule(rate_hz=100.0, shape="sawtooth")
        with pytest.raises(ValueError):
            ArrivalSchedule(rate_hz=100.0, burst_factor=1.0)
        with pytest.raises(ValueError):
            ArrivalSchedule(rate_hz=100.0, period_s=0.0)
        with pytest.raises(ValueError):
            ArrivalSchedule(rate_hz=100.0, burst_duty=1.0)
        # duty * factor must leave a positive off-burst rate.
        with pytest.raises(ValueError):
            ArrivalSchedule(
                rate_hz=100.0,
                shape="bursty",
                burst_factor=4.0,
                burst_duty=0.25,
            )

    def test_uniform_is_an_exact_metronome(self):
        schedule = ArrivalSchedule(rate_hz=50.0, shape="uniform")
        times = list(itertools.islice(schedule.times(), 10))
        assert times == pytest.approx([(i + 1) / 50.0 for i in range(10)])

    @pytest.mark.parametrize("shape", ["uniform", "poisson", "bursty"])
    def test_deterministic_given_seed(self, shape):
        def sample():
            schedule = ArrivalSchedule(rate_hz=200.0, shape=shape, seed=7)
            return list(itertools.islice(schedule.times(), 500))

        assert sample() == sample()

    @pytest.mark.parametrize("shape", ["uniform", "poisson", "bursty"])
    def test_times_non_decreasing(self, shape):
        schedule = ArrivalSchedule(rate_hz=500.0, shape=shape, seed=3)
        times = list(itertools.islice(schedule.times(), 2000))
        assert all(b >= a for a, b in zip(times, times[1:]))

    @pytest.mark.parametrize("shape", ["poisson", "bursty"])
    def test_mean_rate_tracks_target(self, shape):
        # Bursty modulation redistributes arrivals within each period
        # but must leave the long-run mean at rate_hz.
        schedule = ArrivalSchedule(rate_hz=100.0, shape=shape, seed=11)
        times = list(itertools.islice(schedule.times(), 8000))
        observed = len(times) / times[-1]
        assert observed == pytest.approx(100.0, rel=0.05)

    def test_bursty_peaks_above_mean_inside_burst_window(self):
        schedule = ArrivalSchedule(
            rate_hz=100.0,
            shape="bursty",
            burst_factor=4.0,
            period_s=10.0,
            burst_duty=0.2,
            seed=11,
        )
        times = list(itertools.islice(schedule.times(), 20000))
        in_burst = sum(1 for t in times if (t % 10.0) < 2.0)
        # 20% of the time carries burst_factor * duty = 80% of traffic.
        assert in_burst / len(times) == pytest.approx(0.8, abs=0.05)

    def test_timed_stream_pairs_every_tweet(self):
        workload = FirehoseWorkload(n_unlabeled=80, n_labeled=20, seed=5)
        schedule = ArrivalSchedule(rate_hz=100.0, seed=2)
        pairs = list(workload.timed_stream(schedule))
        assert len(pairs) == 100
        arrivals = [arrival for _, arrival in pairs]
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
        assert {t.tweet_id for t, _ in pairs} == {
            t.tweet_id for t in workload.stream()
        }
