"""Tests for the firehose workload composition."""

from __future__ import annotations

import itertools

import pytest

from repro.data.firehose import FirehoseWorkload


class TestFirehoseWorkload:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            FirehoseWorkload(n_unlabeled=-1)
        with pytest.raises(ValueError):
            FirehoseWorkload(n_unlabeled=0, n_labeled=0)

    def test_total_and_fraction(self):
        workload = FirehoseWorkload(n_unlabeled=900, n_labeled=100)
        assert workload.total_tweets == 1000
        assert workload.labeled_fraction() == pytest.approx(0.1)

    def test_stream_mix(self):
        workload = FirehoseWorkload(n_unlabeled=600, n_labeled=200, seed=5)
        tweets = list(workload.stream())
        assert len(tweets) == 800
        labeled = sum(1 for t in tweets if t.is_labeled)
        assert labeled == 200

    def test_timestamp_order(self):
        workload = FirehoseWorkload(n_unlabeled=400, n_labeled=150, seed=5)
        times = [t.created_at for t in workload.stream()]
        assert times == sorted(times)

    def test_streams_carry_distinct_tweets(self):
        workload = FirehoseWorkload(n_unlabeled=300, n_labeled=300, seed=7)
        labeled_texts = {t.text for t in workload.labeled_stream()}
        unlabeled_texts = {t.text for t in workload.unlabeled_stream()}
        # Different seeds: overlap should be far from total.
        assert len(labeled_texts & unlabeled_texts) < len(labeled_texts) / 2

    def test_lazy_generation(self):
        # A huge workload must be streamable without materialization.
        workload = FirehoseWorkload(n_unlabeled=5_000_000, n_labeled=86_000)
        head = list(itertools.islice(workload.stream(), 100))
        assert len(head) == 100

    def test_unlabeled_only(self):
        workload = FirehoseWorkload(n_unlabeled=50, n_labeled=0)
        tweets = list(workload.stream())
        assert len(tweets) == 50
        assert all(not t.is_labeled for t in tweets)

    def test_pipeline_consumes_mix(self):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import AggressionDetectionPipeline

        workload = FirehoseWorkload(n_unlabeled=700, n_labeled=700, seed=9)
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        result = pipeline.process_stream(workload.stream())
        assert result.n_labeled == 700
        assert result.n_unlabeled == 700
        assert result.n_alerts > 0
