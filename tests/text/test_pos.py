"""Tests for the POS tagger."""

from __future__ import annotations

import pytest

from repro.text.pos import PosTag, PosTagger


@pytest.fixture(scope="module")
def tagger() -> PosTagger:
    return PosTagger()


class TestLexiconTags:
    def test_adjective(self, tagger):
        assert tagger.tag_word("good") is PosTag.ADJECTIVE

    def test_adverb(self, tagger):
        assert tagger.tag_word("really") is PosTag.ADVERB

    def test_verb(self, tagger):
        assert tagger.tag_word("running") is PosTag.VERB

    def test_pronoun(self, tagger):
        assert tagger.tag_word("they") is PosTag.PRONOUN

    def test_determiner(self, tagger):
        assert tagger.tag_word("the") is PosTag.DETERMINER

    def test_preposition(self, tagger):
        assert tagger.tag_word("between") is PosTag.PREPOSITION

    def test_conjunction(self, tagger):
        assert tagger.tag_word("because") is PosTag.CONJUNCTION

    def test_case_insensitive(self, tagger):
        assert tagger.tag_word("GOOD") is PosTag.ADJECTIVE


class TestSuffixRules:
    def test_ly_adverb(self, tagger):
        assert tagger.tag_word("gracefully") is PosTag.ADVERB

    def test_ous_adjective(self, tagger):
        assert tagger.tag_word("hazardous") is PosTag.ADJECTIVE

    def test_ful_adjective(self, tagger):
        assert tagger.tag_word("colorful") is PosTag.ADJECTIVE

    def test_able_adjective(self, tagger):
        assert tagger.tag_word("readable") is PosTag.ADJECTIVE

    def test_ize_verb(self, tagger):
        assert tagger.tag_word("optimize") is PosTag.VERB

    def test_unknown_defaults_to_noun(self, tagger):
        assert tagger.tag_word("flibbertigibbet") is PosTag.NOUN

    def test_short_unknown_is_other(self, tagger):
        assert tagger.tag_word("zq") is PosTag.OTHER


class TestTextTagging:
    def test_numbers_tagged_num(self, tagger):
        tags = tagger.tag_text("scored 42 points")
        assert PosTag.NUMBER in tags

    def test_non_words_tagged_other(self, tagger):
        tags = tagger.tag_text("hello @alex!")
        assert PosTag.OTHER in tags

    def test_count(self, tagger):
        text = "the happy dog runs quickly and barks loudly"
        assert tagger.count(text, PosTag.ADVERB) == 2
        assert tagger.count(text, PosTag.ADJECTIVE) == 1

    def test_empty_text(self, tagger):
        assert tagger.tag_text("") == []
