"""Tests for the SentiStrength-like sentiment analyzer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.sentiment import SentimentAnalyzer, SentimentScore, score_many


@pytest.fixture(scope="module")
def analyzer() -> SentimentAnalyzer:
    return SentimentAnalyzer()


class TestScoreRanges:
    def test_neutral_text(self, analyzer):
        score = analyzer.score("the table has four legs")
        assert score.positive == 1
        assert score.negative == -1

    def test_empty_text(self, analyzer):
        score = analyzer.score("")
        assert (score.positive, score.negative) == (1, -1)

    @given(st.text(max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_scale_bounds_hold(self, text):
        score = SentimentAnalyzer().score(text)
        assert 1 <= score.positive <= 5
        assert -5 <= score.negative <= -1


class TestPolarity:
    def test_positive_text(self, analyzer):
        score = analyzer.score("what a wonderful lovely day")
        assert score.positive >= 3
        assert score.is_positive

    def test_negative_text(self, analyzer):
        score = analyzer.score("you are a disgusting idiot")
        assert score.negative <= -3
        assert score.is_negative

    def test_mixed_text_keeps_both(self, analyzer):
        score = analyzer.score("the food was wonderful but the service was awful")
        assert score.positive >= 3
        assert score.negative <= -3

    def test_net(self):
        assert SentimentScore(positive=4, negative=-1).net == 3
        assert SentimentScore(positive=1, negative=-4).net == -3


class TestModifiers:
    def test_booster_amplifies(self, analyzer):
        plain = analyzer.score("this is good")
        boosted = analyzer.score("this is very good")
        assert boosted.positive == plain.positive + 1

    def test_dampener_weakens(self, analyzer):
        plain = analyzer.score("this is great")
        damped = analyzer.score("this is slightly great")
        assert damped.positive == plain.positive - 1

    def test_negation_flips(self, analyzer):
        negated = analyzer.score("this is not good")
        assert negated.negative < -1
        assert negated.positive == 1

    def test_uppercase_boosts(self, analyzer):
        plain = analyzer.score("this is bad")
        shouted = analyzer.score("this is BAD")
        assert shouted.negative == plain.negative - 1

    def test_exclamation_boosts_dominant_polarity(self, analyzer):
        plain = analyzer.score("this is good")
        excited = analyzer.score("this is good!")
        assert excited.positive == plain.positive + 1

    def test_repeated_letters_boost(self, analyzer):
        plain = analyzer.score("i am sad")
        emphasized = analyzer.score("i am saaaad")
        assert emphasized.negative <= plain.negative

    def test_swear_word_as_booster(self, analyzer):
        plain = analyzer.score("this is awful")
        sworn = analyzer.score("this is fucking awful")
        assert sworn.negative <= plain.negative


class TestWordStrength:
    def test_unknown_word_zero(self, analyzer):
        assert analyzer.word_strength("zxqw") == 0

    def test_known_word(self, analyzer):
        assert analyzer.word_strength("love") > 0

    def test_case_insensitive(self, analyzer):
        assert analyzer.word_strength("LOVE") == analyzer.word_strength("love")


class TestBatch:
    def test_score_many(self):
        scores = score_many(["great day", "awful day"])
        assert scores[0].is_positive
        assert scores[1].is_negative
