"""Tests for the lexicons."""

from __future__ import annotations

import pytest

from repro.text import lexicons


class TestSwearWords:
    def test_exactly_347_entries(self):
        # Fig. 10: the BoW is initialized with 347 swear words.
        assert len(lexicons.swear_words()) == lexicons.SWEAR_LIST_SIZE == 347

    def test_no_duplicates(self):
        entries = lexicons.swear_words()
        assert len(set(entries)) == len(entries)

    def test_contains_base_words(self):
        assert "idiot" in lexicons.SWEAR_WORDS
        assert "fuck" in lexicons.SWEAR_WORDS
        assert "moron" in lexicons.SWEAR_WORDS

    def test_contains_obfuscated_variants(self):
        # Leetspeak variants are part of the list by construction.
        assert any("1" in w or "0" in w or "$" in w or "3" in w or "4" in w
                   for w in lexicons.swear_words())

    def test_all_lowercase(self):
        assert all(w == w.lower() for w in lexicons.swear_words())

    def test_frozen_set_matches_tuple(self):
        assert lexicons.SWEAR_WORDS == frozenset(lexicons.swear_words())

    def test_deterministic(self):
        lexicons.swear_words.cache_clear()
        first = lexicons.swear_words()
        lexicons.swear_words.cache_clear()
        assert lexicons.swear_words() == first


class TestSentimentLexicon:
    def test_strengths_in_range(self):
        for word, strength in lexicons.sentiment_lexicon().items():
            assert -5 <= strength <= 5
            assert strength != 0, word

    def test_polarity_examples(self):
        lexicon = lexicons.sentiment_lexicon()
        assert lexicon["love"] > 0
        assert lexicon["hate"] < 0
        assert lexicon["fucking"] < lexicon["bad"] < 0 < lexicon["good"]

    def test_substantial_coverage(self):
        assert len(lexicons.sentiment_lexicon()) > 250


class TestModifierLexicons:
    def test_boosters_are_signed(self):
        boosters = lexicons.booster_words()
        assert boosters["very"] == 1
        assert boosters["slightly"] == -1

    def test_negations_include_contractions(self):
        negations = lexicons.negation_words()
        assert "not" in negations
        assert "don't" in negations
        assert "dont" in negations


class TestPosLexicons:
    def test_disjoint_closed_classes(self):
        assert not (lexicons.PRONOUNS & lexicons.DETERMINERS)
        assert not (lexicons.PREPOSITIONS & lexicons.PRONOUNS)

    def test_core_membership(self):
        assert "good" in lexicons.ADJECTIVES
        assert "really" in lexicons.ADVERBS
        assert "run" in lexicons.VERBS
        assert "they" in lexicons.PRONOUNS
        assert "the" in lexicons.DETERMINERS
