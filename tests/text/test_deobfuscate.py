"""Tests for obfuscation normalization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.deobfuscate import Deobfuscator, candidate_forms


@pytest.fixture(scope="module")
def deobfuscator() -> Deobfuscator:
    return Deobfuscator()


class TestCandidateForms:
    def test_plain_word_single_form(self):
        assert candidate_forms("hello") == ["hello"]

    def test_leet_digits(self):
        assert "shit" in candidate_forms("sh1t")

    def test_symbol_substitution(self):
        assert "ass" in candidate_forms("a$$")

    def test_separator_padding(self):
        assert "idiot" in candidate_forms("i.d.i.o.t")

    def test_elongation(self):
        assert "fuck" in candidate_forms("fuuuuck")

    def test_combined_tricks(self):
        assert "shit" in candidate_forms("s.h.1.t")

    def test_lowercases(self):
        assert candidate_forms("HeLLo")[0] == "hello"


class TestDeobfuscator:
    def test_recovers_disguised_swear(self, deobfuscator):
        assert deobfuscator.deobfuscate("sh1t") == "shit"
        assert deobfuscator.deobfuscate("id1ot") == "idiot"
        assert deobfuscator.deobfuscate("fuuuck") == "fuck"

    def test_clean_words_untouched(self, deobfuscator):
        assert deobfuscator.deobfuscate("2nd") == "2nd"
        assert deobfuscator.deobfuscate("covid19") == "covid19"
        assert deobfuscator.deobfuscate("hello") == "hello"

    def test_already_canonical(self, deobfuscator):
        assert deobfuscator.deobfuscate("idiot") == "idiot"
        assert not deobfuscator.is_disguised_match("idiot")

    def test_disguised_match_flag(self, deobfuscator):
        assert deobfuscator.is_disguised_match("1d1ot")
        assert not deobfuscator.is_disguised_match("table")

    def test_count_matches(self, deobfuscator):
        words = ["you", "sh1t", "idiot", "m0ron", "day"]
        assert deobfuscator.count_matches(words) == 3

    def test_custom_vocabulary(self):
        deobfuscator = Deobfuscator(vocabulary=["secret"])
        assert deobfuscator.deobfuscate("s3cr3t") == "secret"
        assert deobfuscator.deobfuscate("sh1t") == "sh1t"

    @given(st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                   min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_never_crashes_and_lowercases(self, word):
        deobfuscator = Deobfuscator()
        result = deobfuscator.deobfuscate(word)
        assert result == result.lower()
