"""Tests for the tweet tokenizer."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.tokenizer import (
    Token,
    TokenType,
    split_sentences,
    tokenize,
    words,
)


class TestTokenTypes:
    def test_url_http(self):
        tokens = tokenize("check http://example.com/page now")
        assert tokens[1].type is TokenType.URL

    def test_url_https_tco(self):
        tokens = tokenize("see https://t.co/a1b2c3")
        assert tokens[-1].type is TokenType.URL

    def test_mention(self):
        tokens = tokenize("@alex hello")
        assert tokens[0].type is TokenType.MENTION
        assert tokens[0].text == "@alex"

    def test_hashtag(self):
        tokens = tokenize("so #blessed today")
        assert tokens[1].type is TokenType.HASHTAG

    def test_number(self):
        tokens = tokenize("scored 42 points")
        assert tokens[1].type is TokenType.NUMBER

    def test_decimal_number(self):
        tokens = tokenize("pi is 3.14 roughly")
        assert any(
            t.type is TokenType.NUMBER and t.text == "3.14" for t in tokens
        )

    def test_emoticon(self):
        tokens = tokenize("nice :) really")
        assert any(t.type is TokenType.EMOTICON for t in tokens)

    def test_punctuation(self):
        tokens = tokenize("wow!!!")
        assert tokens[-1].type is TokenType.PUNCTUATION

    def test_apostrophe_word(self):
        tokens = tokenize("don't stop")
        assert tokens[0].text == "don't"
        assert tokens[0].type is TokenType.WORD

    def test_hyphenated_word(self):
        tokens = tokenize("state-of-the-art stuff")
        assert tokens[0].text == "state-of-the-art"

    def test_obfuscated_swear_stays_one_word(self):
        tokens = tokenize("you sh1t head")
        assert any(t.text == "sh1t" and t.is_word for t in tokens)

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \t \n ") == []


class TestTokenProperties:
    def test_uppercase_word(self):
        token = Token("HELLO", TokenType.WORD)
        assert token.is_uppercase_word

    def test_single_letter_not_uppercase_word(self):
        token = Token("I", TokenType.WORD)
        assert not token.is_uppercase_word

    def test_mixed_case_not_uppercase(self):
        assert not Token("Hello", TokenType.WORD).is_uppercase_word

    def test_lower(self):
        assert Token("HeLLo", TokenType.WORD).lower == "hello"


class TestWords:
    def test_filters_non_words(self):
        result = words("@alex GOOD day #sun https://t.co/x 42")
        assert result == ["good", "day"]


class TestSplitSentences:
    def test_single_sentence(self):
        assert split_sentences("hello world") == ["hello world"]

    def test_multiple_terminators(self):
        result = split_sentences("one. two! three?")
        assert result == ["one", "two", "three"]

    def test_ellipsis_is_one_boundary(self):
        assert split_sentences("wait... what") == ["wait", "what"]

    def test_empty(self):
        assert split_sentences("") == []


class TestRobustness:
    @given(st.text(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_never_crashes(self, text):
        tokens = tokenize(text)
        for token in tokens:
            assert token.text
            assert isinstance(token.type, TokenType)

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_covers_non_space_ascii(self, text):
        # Every non-whitespace character lands in some token.
        tokens = tokenize(text)
        joined = "".join(t.text for t in tokens)
        for char in text:
            if not char.isspace():
                assert char in joined
