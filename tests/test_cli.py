"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestGenerate:
    def test_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "data.jsonl"
        assert main(["generate", str(path), "--tweets", "200"]) == 0
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 200
        payload = json.loads(lines[0])
        assert "text" in payload and "label" in payload
        assert "wrote 200 tweets" in capsys.readouterr().out

    def test_user_pool(self, tmp_path):
        path = tmp_path / "data.jsonl"
        main(["generate", str(path), "--tweets", "300", "--user-pool", "20"])
        users = {
            json.loads(line)["user"]["id_str"]
            for line in path.read_text().strip().splitlines()
        }
        assert len(users) <= 25


class TestRunAndClassify:
    @pytest.fixture()
    def dataset(self, tmp_path):
        path = tmp_path / "data.jsonl"
        main(["generate", str(path), "--tweets", "800", "--seed", "3"])
        return path

    def test_run_reports_metrics(self, dataset, capsys):
        assert main(["run", str(dataset)]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "f1" in out
        assert "processed     : 800 tweets" in out

    def test_run_with_flags(self, dataset, capsys):
        assert main([
            "run", str(dataset), "--classes", "3", "--model", "slr",
            "--no-adaptive-bow", "--normalization", "zscore",
        ]) == 0
        out = capsys.readouterr().out
        assert "SLR" in out
        assert "ad=OFF" in out

    def test_run_microbatch_engine_reports_stage_timings(
        self, dataset, capsys
    ):
        assert main([
            "run", str(dataset), "--engine", "microbatch",
            "--partitions", "2", "--batch-size", "400",
        ]) == 0
        out = capsys.readouterr().out
        assert "engine        : microbatch (2 partitions x 400 tweets" in out
        assert "stage timings" in out
        assert "partition_execute" in out
        assert "normalizer_merge" in out
        assert "driver total" in out
        assert "f1" in out

    def test_run_microbatch_save_model(self, dataset, tmp_path, capsys):
        model_path = tmp_path / "mb_model.json"
        assert main([
            "run", str(dataset), "--engine", "microbatch",
            "--runner", "threads", "--workers", "2",
            "--save-model", str(model_path),
        ]) == 0
        assert model_path.exists()
        assert "model saved" in capsys.readouterr().out

    def test_save_and_classify(self, dataset, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        main(["run", str(dataset), "--save-model", str(model_path)])
        assert model_path.exists()
        capsys.readouterr()
        assert main(["classify", str(model_path), str(dataset)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 800
        record = json.loads(lines[0])
        assert record["predicted"] in ("normal", "aggressive")


class TestSimulate:
    def test_default_projection(self, capsys):
        assert main(["simulate"]) == 0
        out = capsys.readouterr().out
        assert "SparkCluster" in out
        assert "MOA" in out

    def test_calibrated_projection(self, capsys):
        assert main(["simulate", "--measured-throughput", "3000",
                     "--tweets", "500000"]) == 0
        assert "SparkLocal" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestReport:
    def test_run_writes_markdown_report(self, tmp_path, capsys):
        data = tmp_path / "data.jsonl"
        main(["generate", str(data), "--tweets", "400"])
        report = tmp_path / "report.md"
        assert main(["run", str(data), "--report", str(report)]) == 0
        text = report.read_text()
        assert text.startswith("# Run report")
        assert "| f1 |" in text


class TestSupervisedRun:
    @pytest.fixture()
    def dataset(self, tmp_path):
        path = tmp_path / "data.jsonl"
        main(["generate", str(path), "--tweets", "400", "--seed", "5"])
        return path

    def test_reliability_flags_enable_supervised_path(self, dataset, tmp_path,
                                                      capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["run", str(dataset), "--engine", "microbatch",
                     "--batch-size", "50", "--retries", "2",
                     "--checkpoint-dir", str(ckpt),
                     "--checkpoint-every", "2",
                     "--max-poison-rate", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "supervised" in out
        assert "quarantined" in out
        assert (ckpt / "checkpoint.json").exists()

    def test_resume_smoke_matches_uninterrupted(self, dataset, tmp_path,
                                                capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["run", str(dataset), "--batch-size", "50",
                     "--checkpoint-dir", str(ckpt),
                     "--checkpoint-every", "2"]) == 0
        first = capsys.readouterr().out
        # Resuming a completed run replays nothing and reproduces the
        # exact metrics of the finished run.
        assert main(["run", str(dataset),
                     "--checkpoint-dir", str(ckpt), "--resume"]) == 0
        second = capsys.readouterr().out
        metrics_first = [l for l in first.splitlines() if l.startswith("  ")]
        metrics_second = [l for l in second.splitlines() if l.startswith("  ")]
        assert metrics_first == metrics_second
        assert "resumed" in second

    def test_resume_requires_checkpoint_dir(self, dataset, capsys):
        assert main(["run", str(dataset), "--resume"]) == 2
        assert "requires --checkpoint-dir" in capsys.readouterr().err


class TestTelemetry:
    @pytest.fixture()
    def dataset(self, tmp_path):
        path = tmp_path / "data.jsonl"
        main(["generate", str(path), "--tweets", "400", "--seed", "7"])
        return path

    @pytest.mark.parametrize("engine_args", [
        [],
        ["--engine", "microbatch", "--batch-size", "100"],
        ["--batch-size", "100", "--checkpoint-every", "2"],
    ], ids=["sequential", "microbatch", "supervised"])
    def test_metrics_out_writes_jsonl_and_exposition(
        self, dataset, tmp_path, capsys, engine_args
    ):
        events_path = tmp_path / "events.jsonl"
        args = ["run", str(dataset), "--metrics-out", str(events_path)]
        if "--checkpoint-every" in engine_args:
            args += ["--checkpoint-dir", str(tmp_path / "ckpt")]
        assert main(args + engine_args) == 0
        assert "telemetry" in capsys.readouterr().out

        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        final = [e for e in events if e["event"] == "snapshot"][-1]
        names = {c["name"] for c in final["metrics"]["counters"]}
        assert "tweets_processed_total" in names
        hist_names = {h["name"] for h in final["metrics"]["histograms"]}
        assert "tweet_stage_seconds" in hist_names

        exposition = (tmp_path / "events.jsonl.prom").read_text()
        assert "# TYPE repro_tweets_processed_total counter" in exposition
        assert 'quantile="0.95"' in exposition

    def test_log_json_emits_parseable_lines(self, dataset, capsys):
        assert main(["--log-json", "run", str(dataset)]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert all(r["level"] == "info" for r in records)
        assert any("accuracy" in r["message"] for r in records)

    def test_log_level_error_silences_run_output(self, dataset, capsys):
        assert main(["--log-level", "error", "run", str(dataset)]) == 0
        assert capsys.readouterr().out == ""
