"""Tests for the batch random forest and batch logistic regression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batchml.logistic_regression import BatchLogisticRegression
from repro.batchml.random_forest import BatchRandomForest


def _data(n, rng, sep=3.0, n_features=4):
    y = rng.randint(0, 2, size=n)
    X = rng.randn(n, n_features)
    X[:, 0] += y * sep
    X[:, 1] -= y * sep / 2
    return X, y


class TestRandomForest:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BatchRandomForest(n_classes=2, n_trees=0)

    def test_learns(self):
        rng = np.random.RandomState(0)
        X, y = _data(1500, rng)
        Xt, yt = _data(400, rng)
        forest = BatchRandomForest(n_classes=2, n_trees=10, random_state=1)
        forest.fit(X, y)
        assert (forest.predict(Xt) == yt).mean() > 0.9

    def test_beats_or_matches_single_tree_on_noise(self):
        rng = np.random.RandomState(1)
        X, y = _data(1200, rng, sep=1.2, n_features=8)
        Xt, yt = _data(400, rng, sep=1.2, n_features=8)
        from repro.batchml.decision_tree import BatchDecisionTree

        tree_acc = (
            BatchDecisionTree(n_classes=2).fit(X, y).predict(Xt) == yt
        ).mean()
        forest_acc = (
            BatchRandomForest(n_classes=2, n_trees=20, random_state=2)
            .fit(X, y)
            .predict(Xt)
            == yt
        ).mean()
        assert forest_acc >= tree_acc - 0.03

    def test_importances_normalized(self):
        rng = np.random.RandomState(2)
        X, y = _data(800, rng)
        forest = BatchRandomForest(n_classes=2, n_trees=5, random_state=3)
        forest.fit(X, y)
        importances = forest.feature_importances_
        assert importances.shape == (4,)
        assert importances.sum() == pytest.approx(1.0)
        assert importances[0] == max(importances)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            BatchRandomForest(n_classes=2).predict(np.zeros((1, 2)))

    def test_deterministic_given_seed(self):
        rng = np.random.RandomState(3)
        X, y = _data(500, rng)
        a = BatchRandomForest(n_classes=2, n_trees=5, random_state=7).fit(X, y)
        b = BatchRandomForest(n_classes=2, n_trees=5, random_state=7).fit(X, y)
        probe = X[:20]
        assert np.array_equal(a.predict(probe), b.predict(probe))


class TestBatchLogisticRegression:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BatchLogisticRegression(n_classes=1)
        with pytest.raises(ValueError):
            BatchLogisticRegression(n_classes=2, learning_rate=0)

    def test_learns_linear_data(self):
        rng = np.random.RandomState(4)
        X, y = _data(2000, rng)
        Xt, yt = _data(500, rng)
        model = BatchLogisticRegression(n_classes=2).fit(X, y)
        assert (model.predict(Xt) == yt).mean() > 0.9

    def test_three_class(self):
        rng = np.random.RandomState(5)
        y = rng.randint(0, 3, size=2000)
        X = rng.randn(2000, 2)
        X[:, 0] += y * 3.0
        model = BatchLogisticRegression(n_classes=3).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.85

    def test_proba_rows_sum_to_one(self):
        rng = np.random.RandomState(6)
        X, y = _data(300, rng)
        model = BatchLogisticRegression(n_classes=2).fit(X, y)
        assert np.allclose(model.predict_proba(X[:5]).sum(axis=1), 1.0)

    def test_standardization_handles_scale(self):
        rng = np.random.RandomState(7)
        X, y = _data(1500, rng)
        X_scaled = X * np.array([1e4, 1e-3, 1.0, 1.0])
        model = BatchLogisticRegression(n_classes=2).fit(X_scaled, y)
        assert (model.predict(X_scaled) == y).mean() > 0.9

    def test_early_stopping(self):
        rng = np.random.RandomState(8)
        X, y = _data(500, rng)
        model = BatchLogisticRegression(n_classes=2, max_iter=500, tol=1e-3)
        model.fit(X, y)
        assert model.n_iterations_run < 500

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            BatchLogisticRegression(n_classes=2).predict(np.zeros((1, 2)))
