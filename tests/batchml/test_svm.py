"""Tests for the linear SVM baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batchml.svm import LinearSVM


def _data(n, rng, sep=3.0):
    y = rng.randint(0, 2, size=n)
    X = rng.randn(n, 3)
    X[:, 0] += y * sep
    return X, y


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LinearSVM(n_classes=1)
        with pytest.raises(ValueError):
            LinearSVM(n_classes=2, lambda_reg=0.0)
        with pytest.raises(ValueError):
            LinearSVM(n_classes=2, n_epochs=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearSVM(n_classes=2).predict(np.zeros((1, 3)))


class TestLearning:
    def test_learns_separable_data(self):
        rng = np.random.RandomState(0)
        X, y = _data(2000, rng)
        Xt, yt = _data(500, rng)
        model = LinearSVM(n_classes=2, seed=1).fit(X, y)
        assert (model.predict(Xt) == yt).mean() > 0.9

    def test_three_class_ovr(self):
        rng = np.random.RandomState(1)
        y = rng.randint(0, 3, size=3000)
        X = rng.randn(3000, 2)
        X[:, 0] += y * 4.0
        model = LinearSVM(n_classes=3, seed=2).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_handles_bad_scaling(self):
        rng = np.random.RandomState(2)
        X, y = _data(1500, rng)
        X_scaled = X * np.array([1e4, 1e-3, 1.0])
        model = LinearSVM(n_classes=2, seed=3).fit(X_scaled, y)
        assert (model.predict(X_scaled) == y).mean() > 0.9

    def test_decision_function_shape(self):
        rng = np.random.RandomState(3)
        X, y = _data(400, rng)
        model = LinearSVM(n_classes=2).fit(X, y)
        assert model.decision_function(X[:7]).shape == (7, 2)

    def test_deterministic_given_seed(self):
        rng = np.random.RandomState(4)
        X, y = _data(500, rng)
        a = LinearSVM(n_classes=2, seed=9).fit(X, y)
        b = LinearSVM(n_classes=2, seed=9).fit(X, y)
        assert np.array_equal(a.predict(X[:50]), b.predict(X[:50]))

    def test_comparable_to_logistic_regression(self):
        from repro.batchml.logistic_regression import BatchLogisticRegression

        rng = np.random.RandomState(5)
        X, y = _data(2000, rng, sep=2.0)
        Xt, yt = _data(600, rng, sep=2.0)
        svm_acc = (LinearSVM(n_classes=2, seed=6).fit(X, y).predict(Xt)
                   == yt).mean()
        lr_acc = (BatchLogisticRegression(n_classes=2).fit(X, y).predict(Xt)
                  == yt).mean()
        assert abs(svm_acc - lr_acc) < 0.05
