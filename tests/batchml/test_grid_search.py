"""Tests for the grid-search harness."""

from __future__ import annotations

import pytest

from repro.batchml.grid_search import GridSearch, ParameterGrid


class TestParameterGrid:
    def test_cartesian_size(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(grid) == 6

    def test_iteration_covers_all(self):
        grid = ParameterGrid({"a": [1, 2], "b": [3]})
        combos = list(grid)
        assert {"a": 1, "b": 3} in combos
        assert {"a": 2, "b": 3} in combos
        assert len(combos) == 2

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({})

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": []})


class TestGridSearch:
    def test_finds_best(self):
        search = GridSearch(
            evaluate=lambda p: -((p["x"] - 3) ** 2),
            grid={"x": [0, 1, 2, 3, 4, 5]},
        )
        best = search.run()
        assert best.params == {"x": 3}
        assert best.score == 0

    def test_records_all_results(self):
        search = GridSearch(
            evaluate=lambda p: p["x"],
            grid={"x": [1, 2], "y": [0, 0]},
        )
        search.run()
        assert len(search.results) == 4

    def test_top_k(self):
        search = GridSearch(evaluate=lambda p: p["x"], grid={"x": [5, 1, 3]})
        search.run()
        top = search.top(2)
        assert [r.params["x"] for r in top] == [5, 3]

    def test_best_before_run(self):
        search = GridSearch(evaluate=lambda p: 0.0, grid={"x": [1]})
        with pytest.raises(RuntimeError):
            _ = search.best

    def test_table(self):
        search = GridSearch(evaluate=lambda p: p["x"] * 2.0, grid={"x": [1, 2]})
        search.run()
        table = search.table()
        assert {"x": 1, "score": 2.0} in table

    def test_table1_streaming_grid(self):
        """Exercise the actual Table I HT grid on a tiny stream."""
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import run_pipeline
        from repro.data.synthetic import AbusiveDatasetGenerator

        tweets = AbusiveDatasetGenerator(n_tweets=400, seed=2).generate_list()

        def evaluate(params):
            config = PipelineConfig(
                n_classes=2, model="ht", model_params=params
            )
            return run_pipeline(tweets, config).metrics["f1"]

        search = GridSearch(
            evaluate,
            grid={"split_confidence": [0.01, 0.1], "grace_period": [200]},
        )
        best = search.run()
        assert 0.0 <= best.score <= 1.0
        assert best.params["grace_period"] == 200
