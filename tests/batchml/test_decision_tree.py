"""Tests for the batch decision tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batchml.decision_tree import BatchDecisionTree, instances_to_arrays
from repro.streamml.instance import Instance


def _gaussian_data(n, rng, sep=3.0, n_features=3):
    y = rng.randint(0, 2, size=n)
    X = rng.randn(n, n_features)
    X[:, 0] += y * sep
    return X, y


class TestConstruction:
    def test_invalid_criterion(self):
        with pytest.raises(ValueError):
            BatchDecisionTree(n_classes=2, criterion="chi")

    def test_invalid_classes(self):
        with pytest.raises(ValueError):
            BatchDecisionTree(n_classes=1)

    def test_predict_before_fit(self):
        tree = BatchDecisionTree(n_classes=2)
        with pytest.raises(RuntimeError):
            tree.predict(np.zeros((1, 2)))


class TestFitting:
    def test_empty_dataset(self):
        tree = BatchDecisionTree(n_classes=2)
        with pytest.raises(ValueError):
            tree.fit(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_length_mismatch(self):
        tree = BatchDecisionTree(n_classes=2)
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.zeros(2, dtype=int))

    def test_learns_separable_data(self):
        rng = np.random.RandomState(0)
        X, y = _gaussian_data(2000, rng)
        Xt, yt = _gaussian_data(500, rng)
        tree = BatchDecisionTree(n_classes=2).fit(X, y)
        accuracy = (tree.predict(Xt) == yt).mean()
        assert accuracy > 0.9

    def test_pure_node_stays_leaf(self):
        X = np.random.RandomState(1).randn(50, 2)
        y = np.zeros(50, dtype=int)
        tree = BatchDecisionTree(n_classes=2).fit(X, y)
        assert tree.n_nodes == 1

    def test_max_depth(self):
        rng = np.random.RandomState(2)
        X, y = _gaussian_data(3000, rng)
        tree = BatchDecisionTree(n_classes=2, max_depth=2).fit(X, y)
        assert tree.depth <= 2

    def test_min_samples_leaf(self):
        rng = np.random.RandomState(3)
        X, y = _gaussian_data(100, rng)
        tree = BatchDecisionTree(
            n_classes=2, min_samples_leaf=40, min_samples_split=80
        ).fit(X, y)
        # With such harsh limits the tree can split at most once.
        assert tree.n_nodes <= 3

    def test_three_classes(self):
        rng = np.random.RandomState(4)
        y = rng.randint(0, 3, size=3000)
        X = rng.randn(3000, 2)
        X[:, 0] += y * 4.0
        tree = BatchDecisionTree(n_classes=3).fit(X, y)
        accuracy = (tree.predict(X) == y).mean()
        assert accuracy > 0.9

    def test_gini_criterion(self):
        rng = np.random.RandomState(5)
        X, y = _gaussian_data(1500, rng)
        tree = BatchDecisionTree(n_classes=2, criterion="gini").fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.9


class TestProbabilities:
    def test_rows_sum_to_one(self):
        rng = np.random.RandomState(6)
        X, y = _gaussian_data(800, rng)
        tree = BatchDecisionTree(n_classes=2).fit(X, y)
        proba = tree.predict_proba(X[:10])
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestImportances:
    def test_informative_feature_dominates(self):
        rng = np.random.RandomState(7)
        X, y = _gaussian_data(3000, rng, sep=4.0)
        tree = BatchDecisionTree(n_classes=2).fit(X, y)
        importances = tree.feature_importances_
        assert importances[0] == max(importances)
        assert importances.sum() == pytest.approx(1.0)

    def test_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            _ = BatchDecisionTree(n_classes=2).feature_importances_


class TestInstancesToArrays:
    def test_conversion(self):
        instances = [
            Instance(x=(1.0, 2.0), y=0),
            Instance(x=(3.0, 4.0), y=1),
            Instance(x=(5.0, 6.0)),  # unlabeled dropped
        ]
        X, y = instances_to_arrays(instances)
        assert X.shape == (2, 2)
        assert list(y) == [0, 1]

    def test_no_labeled(self):
        with pytest.raises(ValueError):
            instances_to_arrays([Instance(x=(1.0,))])
