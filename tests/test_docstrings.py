"""Documentation-coverage meta-tests.

Every public module, class, and function in the library must carry a
docstring — enforced here so the guarantee survives future edits.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if not any(part.startswith("_") for part in info.name.split(".")):
            names.append(info.name)
    return sorted(names)


MODULES = _public_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


def _method_documented(cls, method_name) -> bool:
    """A method counts as documented when it or any base-class override
    of the same name carries a docstring (the interface contract)."""
    for base in cls.__mro__:
        candidate = vars(base).get(method_name)
        if candidate is None:
            continue
        doc = getattr(candidate, "__doc__", None)
        if doc and doc.strip():
            return True
    return False


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their home module
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not _method_documented(obj, method_name):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module_name} has undocumented public members: {undocumented}"
    )


def test_module_count_sanity():
    # The library spans six subpackages; a collapse in discovered
    # modules would mean the walk (or the package) broke.
    assert len(MODULES) > 35
