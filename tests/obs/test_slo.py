"""SLO burn-rate alerting, checkpoint round-trip, and the scorecard."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLO,
    Scorecard,
    SLOTracker,
    default_slos,
    family_quantile,
)


class _SpySink:
    def __init__(self):
        self.events = []

    def event(self, kind, **fields):
        self.events.append((kind, fields))


def _ratio_slo(budget=0.1, short=2, long=4):
    return SLO(
        name="shed",
        kind="ratio",
        budget=budget,
        bad=[("bad_total", {})],
        total=[("seen_total", {})],
        short_window=short,
        long_window=long,
    )


class TestSLODefinition:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SLO(name="x", kind="weird", budget=0.1)

    def test_rejects_bad_budget_and_windows(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="ratio", budget=0.0)
        with pytest.raises(ValueError):
            SLO(
                name="x", kind="ratio", budget=0.1,
                short_window=5, long_window=2,
            )

    def test_round_trips_through_dict(self):
        slo = _ratio_slo()
        assert SLO.from_dict(slo.as_dict()).as_dict() == slo.as_dict()

    def test_default_set_has_unique_names(self):
        names = [slo.name for slo in default_slos()]
        assert len(set(names)) == len(names)
        assert "shed_fraction" in names
        assert "batch_latency_p99" in names

    def test_tracker_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOTracker([_ratio_slo(), _ratio_slo()])


class TestBurnRateAlerting:
    def test_fires_when_both_windows_burn_and_resolves_clean(self):
        registry = MetricsRegistry()
        bad = registry.counter("bad_total")
        seen = registry.counter("seen_total")
        sink = _SpySink()
        tracker = SLOTracker([_ratio_slo()], sinks=[sink])

        # Burn at 5x budget: every chunk sheds half its traffic.
        transitions = []
        for _ in range(3):
            bad.inc(5)
            seen.inc(10)
            transitions.extend(tracker.observe(registry))
        assert [t["state"] for t in transitions] == ["firing"]
        assert tracker.firing() == ["shed"]
        assert tracker.alerts_fired == 1
        assert sink.events[0][0] == "slo_alert"
        assert sink.events[0][1]["state"] == "firing"

        # Clean traffic drains both windows and resolves the alert.
        resolved = []
        for _ in range(6):
            seen.inc(10)
            resolved.extend(tracker.observe(registry))
        assert [t["state"] for t in resolved] == ["resolved"]
        assert tracker.firing() == []
        # One firing transition total; resolution does not re-count.
        assert tracker.alerts_fired == 1

    def test_burn_is_nan_until_two_samples(self):
        registry = MetricsRegistry()
        registry.counter("bad_total")
        registry.counter("seen_total")
        tracker = SLOTracker([_ratio_slo()])
        tracker.observe(registry)
        short, long = tracker.burn_rates("shed")
        assert math.isnan(short) and math.isnan(long)
        with pytest.raises(KeyError):
            tracker.burn_rates("nope")

    def test_burn_rate_value(self):
        registry = MetricsRegistry()
        bad = registry.counter("bad_total")
        seen = registry.counter("seen_total")
        tracker = SLOTracker([_ratio_slo(budget=0.1)])
        tracker.observe(registry)
        bad.inc(2)
        seen.inc(10)
        tracker.observe(registry)
        short, _ = tracker.burn_rates("shed")
        # 20% bad on a 10% budget = burning twice as fast as allowed.
        assert short == pytest.approx(2.0)

    def test_quantile_slo_counts_breaches_per_observation(self):
        registry = MetricsRegistry()
        hist = registry.histogram("batch_seconds")
        slo = SLO(
            name="latency",
            kind="quantile",
            budget=0.5,
            family="batch_seconds",
            quantile=0.5,
            threshold=1.0,
            short_window=2,
            long_window=3,
        )
        tracker = SLOTracker([slo])
        for _ in range(4):
            hist.observe(10.0)  # p50 far above the 1s threshold
            tracker.observe(registry)
        short, long = tracker.burn_rates("latency")
        # Every sample breaches: burn = 1.0 / budget = 2.0.
        assert short == pytest.approx(2.0)
        assert long == pytest.approx(2.0)
        assert tracker.firing() == ["latency"]

    def test_quantile_slo_idles_on_empty_family(self):
        registry = MetricsRegistry()
        slo = SLO(
            name="latency", kind="quantile", budget=0.5,
            family="batch_seconds", threshold=1.0,
        )
        tracker = SLOTracker([slo])
        for _ in range(3):
            assert tracker.observe(registry) == []
        short, _ = tracker.burn_rates("latency")
        assert math.isnan(short)

    def test_status_reports_every_slo(self):
        tracker = SLOTracker(default_slos())
        status = tracker.status()
        assert [s["slo"] for s in status] == [
            slo.name for slo in tracker.slos
        ]
        assert all(not s["firing"] for s in status)


class TestCheckpointRoundTrip:
    def test_to_from_dict_is_bit_exact(self):
        registry = MetricsRegistry()
        bad = registry.counter("bad_total")
        seen = registry.counter("seen_total")
        tracker = SLOTracker([_ratio_slo()] + default_slos())
        for step in range(7):
            bad.inc(step % 3)
            seen.inc(10)
            tracker.observe(registry)
        payload = tracker.to_dict()
        restored = SLOTracker.from_dict(payload)
        assert restored.to_dict() == payload
        # The restored tracker continues identically.
        bad.inc(5)
        seen.inc(10)
        assert tracker.observe(registry) == restored.observe(registry)
        assert tracker.to_dict() == restored.to_dict()

    def test_restored_tracker_keeps_firing_state(self):
        registry = MetricsRegistry()
        bad = registry.counter("bad_total")
        seen = registry.counter("seen_total")
        tracker = SLOTracker([_ratio_slo()])
        for _ in range(3):
            bad.inc(5)
            seen.inc(10)
            tracker.observe(registry)
        assert tracker.firing() == ["shed"]
        restored = SLOTracker.from_dict(tracker.to_dict())
        assert restored.firing() == ["shed"]
        assert restored.alerts_fired == 1


class TestFamilyQuantile:
    def test_merges_label_children(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.histogram("h", part="a").observe(value)
        for value in (101.0, 102.0, 103.0):
            registry.histogram("h", part="b").observe(value)
        merged = family_quantile(registry, "h", 0.5)
        only_a = family_quantile(registry, "h", 0.5, {"part": "a"})
        assert 2.0 <= merged <= 103.0
        assert only_a == pytest.approx(2.0)

    def test_nan_when_missing_or_untracked(self):
        registry = MetricsRegistry()
        assert math.isnan(family_quantile(registry, "h", 0.5))
        registry.histogram("h")
        assert math.isnan(family_quantile(registry, "h", 0.5))
        registry.histogram("h").observe(1.0)
        assert math.isnan(family_quantile(registry, "h", 0.123))


class TestScorecard:
    def test_unobserved_fields_are_nan(self):
        card = Scorecard.from_registry(MetricsRegistry())
        assert math.isnan(card.f1)
        assert math.isnan(card.p99_batch_seconds)
        assert math.isnan(card.shed_fraction)
        assert math.isnan(card.quarantine_rate)
        assert math.isnan(card.availability)
        assert math.isnan(card.throughput_tweets_per_s)
        assert card.alerts_fired == 0
        assert card.slos_firing == []

    def test_reads_flow_counters(self):
        registry = MetricsRegistry()
        registry.counter("tweets_consumed_total").inc(90)
        registry.counter("overload_shed_total").inc(10)
        registry.counter("tweets_quarantined_total").inc(9)
        registry.counter("tweets_processed_total").inc(81)
        registry.histogram("batch_seconds").observe(0.5)
        card = Scorecard.from_registry(registry, f1=0.9, throughput=1234.0)
        assert card.shed_fraction == pytest.approx(0.1)
        assert card.quarantine_rate == pytest.approx(0.1)
        assert card.availability == pytest.approx(0.81)
        assert card.f1 == 0.9
        assert card.p99_batch_seconds == pytest.approx(0.5)
        payload = card.as_dict()
        assert payload["throughput_tweets_per_s"] == 1234.0

    def test_falls_back_to_ingested_for_engine_only_runs(self):
        registry = MetricsRegistry()
        registry.counter("tweets_ingested_total").inc(100)
        registry.counter("tweets_processed_total").inc(100)
        card = Scorecard.from_registry(registry)
        assert card.availability == pytest.approx(1.0)
