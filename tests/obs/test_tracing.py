"""Span nesting and the registry-backed stage-seconds view."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, stage_seconds_by_stage


class TestSpans:
    def test_span_records_duration_into_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, labels={"engine": "test"})
        with tracer.span("work") as span:
            pass
        assert span.duration is not None and span.duration >= 0.0
        hist = registry.histogram(
            "stage_seconds", engine="test", stage="work"
        )
        assert hist.count == 1
        assert hist.sum == pytest.approx(span.duration)

    def test_nesting_builds_paths_and_stack(self):
        tracer = Tracer(MetricsRegistry())
        assert tracer.current is None
        with tracer.span("batch") as outer:
            assert tracer.current is outer
            with tracer.span("merge") as inner:
                assert tracer.current is inner
                assert inner.parent is outer
                assert inner.path == "batch/merge"
            assert tracer.current is outer
        assert tracer.current is None
        assert outer.path == "batch"

    def test_sibling_spans_share_parent(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("run"):
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.path == "run/a"
        assert b.path == "run/b"

    def test_duration_recorded_even_when_stage_raises(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with pytest.raises(RuntimeError):
            with tracer.span("explodes"):
                raise RuntimeError("boom")
        assert tracer.current is None
        assert registry.histogram("stage_seconds", stage="explodes").count == 1

    def test_per_span_labels_override_tracer_labels(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, labels={"engine": "a"})
        with tracer.span("s", engine="b"):
            pass
        assert registry.histogram(
            "stage_seconds", engine="b", stage="s"
        ).count == 1


class TestStageSecondsByStage:
    def test_groups_sums_by_stage_label(self):
        registry = MetricsRegistry()
        registry.histogram(
            "stage_seconds", engine="mb", stage="merge"
        ).observe(1.0)
        registry.histogram(
            "stage_seconds", engine="mb", stage="merge"
        ).observe(2.0)
        registry.histogram(
            "stage_seconds", engine="mb", stage="drain"
        ).observe(4.0)
        registry.histogram(
            "stage_seconds", engine="seq", stage="merge"
        ).observe(8.0)
        assert stage_seconds_by_stage(registry, engine="mb") == {
            "merge": 3.0, "drain": 4.0
        }
        assert stage_seconds_by_stage(registry) == {"merge": 11.0, "drain": 4.0}

    def test_metric_family_filter(self):
        registry = MetricsRegistry()
        registry.histogram(
            "tweet_stage_seconds", stage="extract"
        ).observe(0.5)
        registry.histogram("stage_seconds", stage="run").observe(1.0)
        per_tweet = stage_seconds_by_stage(
            registry, metric="tweet_stage_seconds"
        )
        assert per_tweet == {"extract": 0.5}

    def test_empty_registry_yields_empty_mapping(self):
        assert stage_seconds_by_stage(MetricsRegistry()) == {}
