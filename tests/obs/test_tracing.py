"""Span nesting and the registry-backed stage-seconds view."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    SpanRecord,
    Tracer,
    WorkerTelemetry,
    span_tree,
    stage_seconds_by_stage,
)


class TestSpans:
    def test_span_records_duration_into_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, labels={"engine": "test"})
        with tracer.span("work") as span:
            pass
        assert span.duration is not None and span.duration >= 0.0
        hist = registry.histogram(
            "stage_seconds", engine="test", stage="work"
        )
        assert hist.count == 1
        assert hist.sum == pytest.approx(span.duration)

    def test_nesting_builds_paths_and_stack(self):
        tracer = Tracer(MetricsRegistry())
        assert tracer.current is None
        with tracer.span("batch") as outer:
            assert tracer.current is outer
            with tracer.span("merge") as inner:
                assert tracer.current is inner
                assert inner.parent is outer
                assert inner.path == "batch/merge"
            assert tracer.current is outer
        assert tracer.current is None
        assert outer.path == "batch"

    def test_sibling_spans_share_parent(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("run"):
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.path == "run/a"
        assert b.path == "run/b"

    def test_duration_recorded_even_when_stage_raises(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with pytest.raises(RuntimeError):
            with tracer.span("explodes"):
                raise RuntimeError("boom")
        assert tracer.current is None
        assert registry.histogram("stage_seconds", stage="explodes").count == 1

    def test_per_span_labels_override_tracer_labels(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, labels={"engine": "a"})
        with tracer.span("s", engine="b"):
            pass
        assert registry.histogram(
            "stage_seconds", engine="b", stage="s"
        ).count == 1


class TestCapture:
    def test_capture_records_finished_spans_and_drain_clears(self):
        tracer = Tracer(MetricsRegistry(), capture=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        records = tracer.drain()
        # Records appear in completion order; ids in creation order.
        assert [r.name for r in records] == ["inner", "outer"]
        assert [r.span_id for r in records] == [2, 1]
        assert records[0].parent_id == 1
        assert records[1].parent_id is None
        assert all(r.duration_s >= 0.0 for r in records)
        assert tracer.drain() == []

    def test_span_ids_are_deterministic_per_tracer(self):
        def run():
            tracer = Tracer(MetricsRegistry(), capture=True)
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            with tracer.span("c"):
                pass
            return [
                (r.span_id, r.parent_id, r.name) for r in tracer.drain()
            ]

        assert run() == run()

    def test_stack_and_capture_survive_raising_span_body(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, capture=True)
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("explodes"):
                    raise RuntimeError("boom")
        assert tracer.current is None
        records = tracer.drain()
        # Both spans still closed, recorded, and booked into the
        # histogram family — a crash never loses the trace.
        assert sorted(r.name for r in records) == ["explodes", "root"]
        assert registry.histogram("stage_seconds", stage="explodes").count == 1

    def test_no_capture_keeps_records_empty(self):
        tracer = Tracer(MetricsRegistry())
        with tracer.span("work"):
            pass
        assert tracer.records == []


def _record(span_id, parent_id, name, start=0.0, duration=1.0):
    return SpanRecord(
        span_id=span_id, parent_id=parent_id, name=name,
        start_s=start, duration_s=duration,
    )


class TestSpanTree:
    def test_nests_children_under_parents_ordered_by_id(self):
        # Shuffled input: the tree is ordered by span_id regardless.
        tree = span_tree(
            [
                _record(3, 1, "late"),
                _record(1, None, "root"),
                _record(2, 1, "early"),
            ]
        )
        assert len(tree) == 1
        assert tree[0]["name"] == "root"
        assert [c["name"] for c in tree[0]["children"]] == ["early", "late"]

    def test_orphans_become_roots(self):
        # Parent id 99 belongs to another process: its child must not
        # vanish from the stitched trace.
        tree = span_tree([_record(1, None, "a"), _record(2, 99, "orphan")])
        assert [node["name"] for node in tree] == ["a", "orphan"]

    def test_empty_input_yields_empty_tree(self):
        assert span_tree([]) == []


class TestWorkerTelemetry:
    def test_tree_and_stage_seconds_views(self):
        telemetry = WorkerTelemetry(
            spans=[
                _record(1, None, "partition", duration=3.0),
                _record(2, 1, "extract", duration=1.0),
                _record(3, 1, "extract", duration=0.5),
            ],
            pid=1234,
            wall_s=3.0,
        )
        (root,) = telemetry.tree()
        assert root["name"] == "partition"
        assert len(root["children"]) == 2
        assert telemetry.stage_seconds() == {
            "partition": 3.0, "extract": 1.5
        }


class TestStageSecondsByStage:
    def test_groups_sums_by_stage_label(self):
        registry = MetricsRegistry()
        registry.histogram(
            "stage_seconds", engine="mb", stage="merge"
        ).observe(1.0)
        registry.histogram(
            "stage_seconds", engine="mb", stage="merge"
        ).observe(2.0)
        registry.histogram(
            "stage_seconds", engine="mb", stage="drain"
        ).observe(4.0)
        registry.histogram(
            "stage_seconds", engine="seq", stage="merge"
        ).observe(8.0)
        assert stage_seconds_by_stage(registry, engine="mb") == {
            "merge": 3.0, "drain": 4.0
        }
        assert stage_seconds_by_stage(registry) == {"merge": 11.0, "drain": 4.0}

    def test_metric_family_filter(self):
        registry = MetricsRegistry()
        registry.histogram(
            "tweet_stage_seconds", stage="extract"
        ).observe(0.5)
        registry.histogram("stage_seconds", stage="run").observe(1.0)
        per_tweet = stage_seconds_by_stage(
            registry, metric="tweet_stage_seconds"
        )
        assert per_tweet == {"extract": 0.5}

    def test_empty_registry_yields_empty_mapping(self):
        assert stage_seconds_by_stage(MetricsRegistry()) == {}
