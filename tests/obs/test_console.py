"""Ops console: pure rendering, throttling, broken-pipe resilience."""

from __future__ import annotations

import io

from repro.obs.console import OpsConsole
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLO, SLOTracker


class _BrokenStream(io.StringIO):
    def write(self, _text):
        raise BrokenPipeError("reader went away")


def _registry():
    registry = MetricsRegistry()
    registry.counter("tweets_processed_total").inc(1200)
    registry.counter("tweets_consumed_total").inc(1250)
    registry.counter("overload_shed_total").inc(50)
    registry.gauge("ingest_queue_depth").set(17)
    return registry


class TestRender:
    def test_render_is_pure_and_complete(self):
        frame = OpsConsole.render(
            {
                "throughput": 1234.5,
                "processed": 1200,
                "queue_depth": 17,
                "shed": 50,
                "slos": [
                    {
                        "slo": "shed_fraction",
                        "firing": True,
                        "burn_short": 4.2,
                        "burn_long": 2.1,
                    }
                ],
            }
        )
        assert "repro ops console" in frame
        assert "1234.5" in frame
        assert "shed_fraction" in frame
        assert "FIRING" in frame
        assert frame.endswith("\n")

    def test_missing_and_nan_fields_render_as_dash(self):
        frame = OpsConsole.render({"throughput": float("nan")})
        assert "-" in frame
        assert "nan" not in frame


class TestDraw:
    def test_draw_writes_one_frame_to_stream(self):
        stream = io.StringIO()
        console = OpsConsole(stream=stream, min_interval_s=0.0)
        assert console.draw({"processed": 5}) is True
        assert console.n_frames == 1
        assert "repro ops console" in stream.getvalue()

    def test_non_tty_streams_append_without_ansi(self):
        stream = io.StringIO()
        console = OpsConsole(stream=stream, min_interval_s=0.0)
        assert console.use_ansi is False
        console.draw({"processed": 1})
        assert "\x1b[" not in stream.getvalue()

    def test_throttle_skips_fast_redraws_but_force_wins(self):
        stream = io.StringIO()
        console = OpsConsole(stream=stream, min_interval_s=3600.0)
        assert console.draw({"processed": 1}) is True
        assert console.draw({"processed": 2}) is False
        assert console.draw({"processed": 3}, force=True) is True
        assert console.n_frames == 2

    def test_broken_pipe_disables_console_permanently(self):
        console = OpsConsole(stream=_BrokenStream(), min_interval_s=0.0)
        assert console.draw({"processed": 1}) is False
        # Disabled, never raises again.
        assert console.draw({"processed": 2}) is False
        console.close()  # also safe
        assert console.n_frames == 0


class TestTick:
    def test_tick_reads_registry_and_slo_status(self):
        stream = io.StringIO()
        console = OpsConsole(stream=stream, min_interval_s=0.0)
        registry = _registry()
        tracker = SLOTracker(
            [
                SLO(
                    name="shed",
                    kind="ratio",
                    budget=0.1,
                    bad=[("overload_shed_total", {})],
                    total=[("tweets_consumed_total", {})],
                )
            ]
        )
        tracker.observe(registry)
        assert console.tick(registry, tracker=tracker) is True
        frame = stream.getvalue()
        assert "1200" in frame  # processed counter
        assert "shed" in frame

    def test_first_frame_throughput_is_unknown_not_zero(self):
        stream = io.StringIO()
        console = OpsConsole(stream=stream, min_interval_s=0.0)
        fields = console.fields_from(_registry())
        import math

        assert math.isnan(fields["throughput"])
        # Second call has an interval to rate over.
        fields = console.fields_from(_registry())
        assert not math.isnan(fields["throughput"])
