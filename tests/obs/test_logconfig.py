"""CLI logging: level routing, JSON formatter, reconfiguration."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.logconfig import configure_logging, get_logger


@pytest.fixture()
def streams():
    return io.StringIO(), io.StringIO()


class TestGetLogger:
    def test_names_live_under_repro(self):
        assert get_logger("cli").name == "repro.cli"
        assert get_logger("repro").name == "repro"
        assert get_logger("repro.supervisor").name == "repro.supervisor"

    def test_children_propagate_to_repro_handlers(self, streams):
        out, err = streams
        configure_logging(stdout=out, stderr=err)
        get_logger("supervisor").info("checkpointed")
        assert out.getvalue() == "checkpointed\n"


class TestRouting:
    def test_info_to_stdout_error_to_stderr(self, streams):
        out, err = streams
        logger = configure_logging(stdout=out, stderr=err)
        logger.info("plain message")
        logger.error("bad news")
        assert out.getvalue() == "plain message\n"
        assert err.getvalue() == "bad news\n"

    def test_level_filters_below_threshold(self, streams):
        out, err = streams
        logger = configure_logging("warning", stdout=out, stderr=err)
        logger.debug("hidden")
        logger.info("hidden too")
        logger.warning("visible")
        assert out.getvalue() == "visible\n"

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            configure_logging("loud")

    def test_reconfigure_does_not_duplicate_handlers(self, streams):
        out, err = streams
        for _ in range(3):
            logger = configure_logging(stdout=out, stderr=err)
        logger.info("once")
        assert out.getvalue() == "once\n"
        assert len(logger.handlers) == 2


class TestJsonMode:
    def test_records_are_json_lines(self, streams):
        out, err = streams
        logger = configure_logging(json_output=True, stdout=out, stderr=err)
        logger.info("processed %d tweets", 42)
        record = json.loads(out.getvalue())
        assert record["level"] == "info"
        assert record["logger"] == "repro"
        assert record["message"] == "processed 42 tweets"
        assert isinstance(record["ts"], float)

    def test_exceptions_carry_traceback(self, streams):
        out, err = streams
        logger = configure_logging(json_output=True, stdout=out, stderr=err)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            logger.exception("stage failed")
        record = json.loads(err.getvalue())
        assert record["level"] == "error"
        assert "RuntimeError: boom" in record["exc_info"]


class TestLibraryNeutrality:
    def test_library_loggers_have_no_handlers_by_default(self):
        # Modules must not configure handlers at import time; only
        # configure_logging() attaches them (to the "repro" root).
        for name in ("repro.supervisor", "repro.cli"):
            assert logging.getLogger(name).handlers == []
