"""Counter/gauge/histogram semantics and snapshot merge/restore."""

from __future__ import annotations

import math
import random

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.streamml.stats import percentile


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_unset_until_first_write(self):
        gauge = Gauge()
        assert gauge.value is None
        gauge.set(7)
        assert gauge.value == 7.0

    def test_inc_dec_relative_to_zero_when_unset(self):
        gauge = Gauge()
        gauge.inc(3)
        gauge.dec(1)
        assert gauge.value == 2.0


class TestHistogram:
    def test_exact_fields(self):
        hist = Histogram()
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 6.0
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == 2.0

    def test_empty_histogram_is_safe(self):
        hist = Histogram()
        assert math.isnan(hist.mean)
        assert hist.quantile(0.5) is None

    def test_unknown_quantile_raises(self):
        with pytest.raises(KeyError):
            Histogram().quantile(0.25)

    def test_p2_quantiles_track_sorted_reference(self):
        rng = random.Random(17)
        samples = [rng.lognormvariate(0.0, 1.0) for _ in range(5000)]
        hist = Histogram()
        for value in samples:
            hist.observe(value)
        for q in (0.5, 0.95, 0.99):
            exact = percentile(samples, 100 * q)
            estimate = hist.quantile(q)
            assert estimate == pytest.approx(exact, rel=0.15)

    def test_sketch_every_keeps_exact_fields_exact(self):
        rng = random.Random(5)
        samples = [rng.random() for _ in range(4000)]
        sampled = Histogram(sketch_every=8)
        for value in samples:
            sampled.observe(value)
        assert sampled.count == len(samples)
        assert sampled.sum == pytest.approx(sum(samples))
        # Uniform data: the thinned sketch stays close to the truth.
        assert sampled.quantile(0.5) == pytest.approx(0.5, abs=0.08)

    def test_sketch_every_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram(sketch_every=0)


class TestRegistry:
    def test_children_keyed_by_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("events_total", kind="a")
        b = registry.counter("events_total", kind="b")
        assert a is not b
        a.inc(2)
        assert registry.counter_value("events_total", kind="a") == 2.0
        assert registry.counter_value("events_total", kind="b") == 0.0

    def test_same_labels_return_same_child(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_name_bound_to_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_total_sums_label_children(self):
        registry = MetricsRegistry()
        registry.counter("q_total", engine="a", stage="s1").inc(1)
        registry.counter("q_total", engine="a", stage="s2").inc(2)
        registry.counter("q_total", engine="b", stage="s1").inc(4)
        assert registry.total("q_total") == 7.0
        assert registry.total("q_total", engine="a") == 3.0
        assert registry.total("q_total", engine="b", stage="s1") == 4.0
        assert registry.total("missing_total") == 0.0

    def test_reads_of_missing_children_are_safe(self):
        registry = MetricsRegistry()
        assert registry.counter_value("nope") == 0.0
        assert registry.gauge_value("nope") is None
        assert registry.histogram_sum("nope") == 0.0


def _populated_registry(seed=1, n=500):
    rng = random.Random(seed)
    registry = MetricsRegistry()
    tweets = registry.counter("tweets_total")
    size = registry.gauge("bow_size")
    latency = registry.histogram("latency_seconds")
    for _ in range(n):
        tweets.inc()
        size.set(rng.randrange(100, 200))
        latency.observe(rng.expovariate(10.0))
    return registry


class TestSnapshotMergeRestore:
    def test_split_stream_merge_matches_single_pass(self):
        rng = random.Random(3)
        samples = [rng.expovariate(1.0) for _ in range(2000)]
        whole, left, right = Histogram(), Histogram(), Histogram()
        for value in samples:
            whole.observe(value)
        for value in samples[:900]:
            left.observe(value)
        for value in samples[900:]:
            right.observe(value)

        reg_whole, reg_left, reg_right = (
            MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        )
        for reg, hist in (
            (reg_whole, whole), (reg_left, left), (reg_right, right)
        ):
            target = reg.histogram("h")
            target.count = hist.count
            target.sum = hist.sum
            target.min = hist.min
            target.max = hist.max
            target._sketches = hist._sketches
        reg_left.merge_snapshot(reg_right.snapshot())
        merged = reg_left.histogram("h")
        assert merged.count == whole.count
        assert merged.sum == pytest.approx(whole.sum)
        assert merged.min == whole.min
        assert merged.max == whole.max
        # Count-weighted sketch merge: approximate but close.
        assert merged.quantile(0.5) == pytest.approx(
            percentile(samples, 50), rel=0.2
        )

    def test_merge_counters_add_and_gauges_take_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(5)
        b.gauge("g").set(9)
        b.gauge("only_b").set(1)
        a.merge_snapshot(b.snapshot())
        assert a.counter_value("c") == 5.0
        assert a.gauge_value("g") == 9.0
        assert a.gauge_value("only_b") == 1.0

    def test_snapshot_roundtrips_through_json_dict(self):
        registry = _populated_registry()
        snap = registry.snapshot()
        rebuilt = MetricsSnapshot.from_dict(snap.as_dict(exact=True))
        assert rebuilt.counters == snap.counters
        assert rebuilt.gauges == snap.gauges
        for key, state in snap.histograms.items():
            other = rebuilt.histograms[key]
            assert other.count == state.count
            assert other.sum == state.sum
            assert other.quantile(0.95) == state.quantile(0.95)

    def test_compact_dict_cannot_rebuild(self):
        snap = _populated_registry().snapshot()
        with pytest.raises(ValueError):
            MetricsSnapshot.from_dict(snap.as_dict(exact=False))

    def test_restore_preserves_live_object_identity(self):
        registry = _populated_registry()
        counter = registry.counter("tweets_total")
        hist = registry.histogram("latency_seconds")
        snap = registry.snapshot()
        counter.inc(100)
        hist.observe(99.0)
        registry.restore(snap)
        assert registry.counter("tweets_total") is counter
        assert registry.histogram("latency_seconds") is hist
        assert counter.value == snap.counters[("tweets_total", ())]
        assert hist.max < 99.0
        counter.inc()  # the live reference still feeds the registry
        assert registry.counter_value("tweets_total") == counter.value

    def test_restore_resets_children_missing_from_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("kept").inc(1)
        snap = registry.snapshot()
        registry.counter("extra").inc(5)
        registry.histogram("extra_h").observe(1.0)
        registry.restore(snap)
        assert registry.counter_value("extra") == 0.0
        assert registry.histogram("extra_h").count == 0
        assert math.isinf(registry.histogram("extra_h").min)
