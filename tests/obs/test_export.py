"""JSONL telemetry sink and Prometheus text exposition."""

from __future__ import annotations

import json

from repro.obs.export import (
    TelemetrySink,
    prometheus_exposition,
    write_exposition,
)
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot


def _registry():
    registry = MetricsRegistry()
    registry.counter("tweets_total", engine="seq").inc(10)
    registry.gauge("bow_size").set(123)
    hist = registry.histogram("latency_seconds")
    for value in (0.1, 0.2, 0.3, 0.4):
        hist.observe(value)
    return registry


class TestTelemetrySink:
    def test_events_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetrySink(path) as sink:
            sink.event("run_start", input="data.jsonl")
            sink.event("checkpoint", chunk=4)
        events = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["event"] for e in events] == ["run_start", "checkpoint"]
        assert events[0]["input"] == "data.jsonl"
        assert events[1]["chunk"] == 4

    def test_seq_is_monotonic_across_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetrySink(path) as sink:
            for _ in range(5):
                sink.event("tick")
        seqs = [
            json.loads(l)["seq"] for l in path.read_text().splitlines()
        ]
        assert seqs == sorted(seqs) == list(range(5))

    def test_snapshot_event_embeds_metrics(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetrySink(path) as sink:
            sink.snapshot(_registry(), reason="final")
        event = json.loads(path.read_text())
        assert event["event"] == "snapshot"
        assert event["reason"] == "final"
        names = {c["name"] for c in event["metrics"]["counters"]}
        assert "tweets_total" in names
        # Compact by default: no sketch state embedded.
        assert "sketches" not in event["metrics"]["histograms"][0]

    def test_exact_snapshot_roundtrips(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetrySink(path) as sink:
            sink.snapshot(_registry(), exact=True)
        event = json.loads(path.read_text())
        rebuilt = MetricsSnapshot.from_dict(event["metrics"])
        assert rebuilt.counters == _registry().snapshot().counters

    def test_write_after_close_is_noop(self, tmp_path):
        sink = TelemetrySink(tmp_path / "events.jsonl")
        sink.event("one")
        sink.close()
        sink.event("two")
        sink.close()  # idempotent
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert len(lines) == 1

    def test_appends_across_sinks(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetrySink(path) as sink:
            sink.event("first_run")
        with TelemetrySink(path) as sink:
            sink.event("second_run")
        kinds = [
            json.loads(l)["event"] for l in path.read_text().splitlines()
        ]
        assert kinds == ["first_run", "second_run"]


class TestPrometheusExposition:
    def test_counters_gauges_and_summaries(self):
        text = prometheus_exposition(_registry())
        assert '# TYPE repro_tweets_total counter' in text
        assert 'repro_tweets_total{engine="seq"} 10.0' in text
        assert '# TYPE repro_bow_size gauge' in text
        assert 'repro_bow_size 123.0' in text
        assert '# TYPE repro_latency_seconds summary' in text
        assert 'repro_latency_seconds{quantile="0.5"}' in text
        assert 'repro_latency_seconds_count 4.0' in text
        assert 'repro_latency_seconds_sum 1.0' in text

    def test_unset_gauges_are_skipped(self):
        registry = MetricsRegistry()
        registry.gauge("never_set")
        assert prometheus_exposition(registry) == ""

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = prometheus_exposition(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_malformed_label_values_round_trip(self):
        # Adversarial label content: backslashes, quotes, newlines.
        evil = {"path": 'a\\b"c\nd', "tag": "\\\\n\"\n"}
        registry = MetricsRegistry()
        registry.counter("events_total", **evil).inc(7)
        text = prometheus_exposition(registry)
        # Escaping keeps every sample on one physical line.
        sample_lines = [
            line for line in text.splitlines()
            if not line.startswith("#")
        ]
        assert len(sample_lines) == 1
        # A single-pass unescape recovers the original values.
        import re

        def unescape(raw):
            return re.sub(
                r"\\(.)",
                lambda m: "\n" if m.group(1) == "n" else m.group(1),
                raw,
            )

        (line,) = sample_lines
        recovered = {
            key: unescape(raw)
            for key, raw in re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"', line)
        }
        assert recovered == evil

    def test_help_and_type_emitted_once_per_family(self):
        registry = MetricsRegistry()
        registry.counter("tweets_total", engine="a").inc(1)
        registry.counter("tweets_total", engine="b").inc(2)
        registry.histogram("latency_seconds", engine="a").observe(0.1)
        registry.histogram("latency_seconds", engine="b").observe(0.2)
        text = prometheus_exposition(registry)
        assert text.count("# TYPE repro_tweets_total ") == 1
        assert text.count("# HELP repro_tweets_total ") == 1
        assert text.count("# TYPE repro_latency_seconds ") == 1
        # Headers precede the family's first sample.
        lines = text.splitlines()
        first_sample = next(
            i for i, l in enumerate(lines)
            if l.startswith("repro_tweets_total")
        )
        header = next(
            i for i, l in enumerate(lines)
            if l.startswith("# HELP repro_tweets_total")
        )
        assert header < first_sample

    def test_unregistered_family_gets_generic_help(self):
        registry = MetricsRegistry()
        registry.counter("bespoke_total").inc()
        text = prometheus_exposition(registry)
        assert "# HELP repro_bespoke_total bespoke_total" in text

    def test_help_text_escapes_backslash_and_newline(self):
        from repro.obs.export import _escape_help

        assert _escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_snapshot_and_registry_render_identically(self):
        registry = _registry()
        assert prometheus_exposition(registry) == prometheus_exposition(
            registry.snapshot()
        )

    def test_write_exposition_returns_byte_count(self, tmp_path):
        path = tmp_path / "metrics.prom"
        n = write_exposition(_registry(), path)
        assert path.stat().st_size == n > 0
