"""Per-partition cProfile slices and the driver-side merged report."""

from __future__ import annotations

from repro.obs.profile import (
    SLICE_LIMIT,
    ProfileReport,
    ProfileSlice,
    profile_call,
)


def _busy():
    total = 0
    for i in range(2000):
        total += _helper(i)
    return total


def _helper(i):
    return i * i


class TestProfileCall:
    def test_returns_result_and_bounded_slice(self):
        result, piece = profile_call(_busy)
        assert result == _busy()
        assert 0 < len(piece.rows) <= SLICE_LIMIT
        assert piece.wall_s >= 0.0
        # The hot helper is attributed by (file, line, function) key.
        assert any(key[2] == "_helper" for key in piece.rows)
        ncalls, tottime, cumtime = next(
            v for k, v in piece.rows.items() if k[2] == "_helper"
        )
        assert ncalls == 2000
        assert cumtime >= tottime >= 0.0


class TestProfileReport:
    def test_merge_accumulates_rows_and_slices(self):
        key = ("f.py", 10, "work")
        report = ProfileReport()
        report.merge(ProfileSlice(rows={key: (2, 0.5, 1.0)}, wall_s=1.0))
        report.merge(ProfileSlice(rows={key: (3, 0.25, 0.5)}, wall_s=0.5))
        assert report.n_slices == 2
        assert report.wall_s == 1.5
        assert report.rows[key] == (5, 0.75, 1.5)

    def test_top_ranks_by_self_time(self):
        report = ProfileReport()
        report.merge(
            ProfileSlice(
                rows={
                    ("a.py", 1, "slow"): (1, 2.0, 2.0),
                    ("b.py", 2, "fast"): (1, 0.1, 0.1),
                }
            )
        )
        top = report.top(k=1)
        assert len(top) == 1
        assert "slow" in top[0]["function"]
        assert top[0]["ncalls"] == 1

    def test_format_top_is_readable(self):
        _, piece = profile_call(_busy)
        report = ProfileReport()
        report.merge(piece)
        text = report.format_top(5)
        assert "partition profile" in text
        assert "_helper" in text
        assert len(text.splitlines()) <= 6
