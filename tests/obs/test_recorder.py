"""Flight recorder: bounded ring, incident dumps, auto-dump naming."""

from __future__ import annotations

import json

import pytest

from repro.obs.recorder import FlightRecorder


class TestRing:
    def test_bounded_ring_evicts_oldest(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.event("tick", n=i)
        assert len(recorder) == 3
        assert [e["n"] for e in recorder.events()] == [2, 3, 4]
        # Sequence numbers keep counting across evictions.
        assert [e["seq"] for e in recorder.events()] == [2, 3, 4]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_sink_compatible_event_signature(self):
        recorder = FlightRecorder()
        recorder.event("slo_alert", slo="shed_fraction", state="firing")
        (entry,) = recorder.events()
        assert entry["event"] == "slo_alert"
        assert entry["slo"] == "shed_fraction"


class TestDump:
    def test_dump_writes_header_plus_events(self, tmp_path):
        recorder = FlightRecorder(capacity=8)
        for i in range(3):
            recorder.event("tick", n=i)
        path = tmp_path / "out.jsonl"
        size = recorder.dump(path, reason="test")
        assert size == path.stat().st_size > 0
        lines = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert lines[0]["event"] == "flight_dump"
        assert lines[0]["reason"] == "test"
        assert lines[0]["n_events"] == 3
        assert [e["n"] for e in lines[1:]] == [0, 1, 2]
        # The ring survives the dump: a later incident keeps history.
        assert len(recorder) == 3
        assert recorder.n_dumps == 1

    def test_auto_dump_names_never_collide(self, tmp_path):
        recorder = FlightRecorder(dump_dir=tmp_path)
        recorder.event("tick")
        first = recorder.auto_dump("quarantine")
        recorder.event("tock")
        second = recorder.auto_dump("quarantine")
        assert first is not None and second is not None
        assert first != second
        assert first.name == "flight-0000-quarantine.jsonl"
        assert second.name == "flight-0001-quarantine.jsonl"

    def test_auto_dump_sanitizes_reason(self, tmp_path):
        recorder = FlightRecorder(dump_dir=tmp_path)
        recorder.event("tick")
        path = recorder.auto_dump("crash: worker/3 died")
        assert path is not None
        assert "/" not in path.name[len("flight-0000-"):]
        assert path.exists()

    def test_auto_dump_noop_without_dir_or_events(self, tmp_path):
        assert FlightRecorder().auto_dump("crash") is None
        empty = FlightRecorder(dump_dir=tmp_path)
        assert empty.auto_dump("crash") is None
        assert list(tmp_path.iterdir()) == []
