"""End-to-end integration tests across the whole system."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline, run_pipeline
from repro.data.loader import (
    interleave_streams,
    read_jsonl,
    strip_labels,
    write_jsonl,
)
from repro.data.synthetic import AbusiveDatasetGenerator


class TestMixedStreams:
    def test_labeled_plus_unlabeled_interleaved(self, medium_stream):
        """The Fig. 1 scenario: both streams feed the same pipeline."""
        labeled = medium_stream[::2]
        unlabeled = list(strip_labels(medium_stream[1::2]))
        merged = list(interleave_streams(labeled, unlabeled))
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        result = pipeline.process_stream(merged)
        assert result.n_labeled == len(labeled)
        assert result.n_unlabeled == len(unlabeled)
        assert result.metrics["f1"] > 0.75
        # Unlabeled traffic produced alerts and a labeling sample.
        assert result.n_alerts > 0
        assert len(pipeline.sampler.sample()) > 0

    def test_from_jsonl_files(self, tmp_path, small_stream):
        """File-backed streams: generate -> write -> read -> detect."""
        path = tmp_path / "stream.jsonl"
        write_jsonl(small_stream, path)
        result = run_pipeline(read_jsonl(path), PipelineConfig(n_classes=2))
        assert result.n_processed == len(small_stream)


class TestClosedLoop:
    def test_sample_label_retrain_loop(self, medium_stream):
        """Sampling -> oracle labeling -> feedback training improves F1."""
        from repro.core.labeling import LabelingQueue, OracleLabeler

        truth = {t.tweet_id: t.label for t in medium_stream}
        split = len(medium_stream) // 4
        seed_labeled = medium_stream[:split]
        rest_unlabeled = list(strip_labels(medium_stream[split:]))

        # Cold pipeline trained only on the seed prefix.
        cold = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        cold.process_stream(seed_labeled)
        cold_correct = sum(
            cold.predict_label(t) == ("normal" if truth[t.tweet_id] == "normal"
                                      else "aggressive")
            for t in rest_unlabeled[-1000:]
        )

        # Closed-loop pipeline: every 1000 unlabeled tweets, drain the
        # boosted sample, label it with the oracle, and feed it back.
        loop = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        loop.process_stream(seed_labeled)
        queue = LabelingQueue()
        labeler = OracleLabeler(truth)
        by_id = {t.tweet_id: t for t in medium_stream}
        for index, tweet in enumerate(rest_unlabeled[:-1000]):
            loop.process(tweet)
            if (index + 1) % 1000 == 0:
                sampled = loop.sampler.drain()
                queue.submit_many(
                    [by_id[c.instance.tweet_id] for c in sampled
                     if c.instance.tweet_id in by_id]
                )
                for labeled_tweet in queue.process(labeler):
                    loop.process(labeled_tweet)
        loop_correct = sum(
            loop.predict_label(t) == ("normal" if truth[t.tweet_id] == "normal"
                                      else "aggressive")
            for t in rest_unlabeled[-1000:]
        )
        # Feedback must not hurt, and usually helps.
        assert loop_correct >= cold_correct - 20


class TestPaperHeadlines:
    """The abstract's headline claims, at reduced scale."""

    def test_over_90_percent_on_2class(self):
        tweets = AbusiveDatasetGenerator(n_tweets=20_000, seed=1).generate_list()
        result = run_pipeline(tweets, PipelineConfig(n_classes=2))
        assert result.metrics["accuracy"] > 0.90
        assert result.metrics["precision"] > 0.90
        assert result.metrics["recall"] > 0.90

    def test_2class_beats_3class(self, medium_stream):
        two = run_pipeline(medium_stream, PipelineConfig(n_classes=2))
        three = run_pipeline(medium_stream, PipelineConfig(n_classes=3))
        assert two.metrics["f1"] > three.metrics["f1"]

    def test_ht_reaches_capacity_within_early_stream(self, medium_stream):
        result = run_pipeline(
            medium_stream, PipelineConfig(n_classes=2, record_every=500)
        )
        curve = dict(result.curve("window_f1"))
        # Windowed F1 after 5k tweets within 6 points of the final value.
        assert curve[5000] > result.metrics["f1"] - 0.06
