"""Integration tests: drift behaviour and streaming-vs-batch regimes."""

from __future__ import annotations

import pytest

from repro.batchml.decision_tree import BatchDecisionTree, instances_to_arrays
from repro.core.config import PipelineConfig
from repro.core.features import FeatureExtractor, LabelEncoder
from repro.core.pipeline import run_pipeline
from repro.data.synthetic import AbusiveDatasetGenerator, DriftConfig


@pytest.fixture(scope="module")
def drifting_days():
    gen = AbusiveDatasetGenerator(
        n_tweets=12_000,
        seed=21,
        drift=DriftConfig(enabled=True, start_fraction=0.05, end_fraction=0.7),
    )
    return gen.generate_days()


class TestAdaptiveBowUnderDrift:
    def test_adaptive_beats_fixed_under_drift(self, drifting_days):
        tweets = [t for day in drifting_days for t in day]
        adaptive = run_pipeline(
            tweets, PipelineConfig(n_classes=2, adaptive_bow=True)
        )
        fixed = run_pipeline(
            tweets, PipelineConfig(n_classes=2, adaptive_bow=False)
        )
        # Fig. 9: the adaptive BoW improves F1 under vocabulary drift.
        assert adaptive.metrics["f1"] > fixed.metrics["f1"]

    def test_bow_growth_bounded(self, drifting_days):
        tweets = [t for day in drifting_days for t in day]
        result = run_pipeline(tweets, PipelineConfig(n_classes=2))
        # Fig. 10 shape: grows beyond the seed, but does not explode.
        assert 347 < result.bow_size < 900


class TestBatchRegimes:
    """Fig. 13/14: train-first-day staleness vs daily retraining."""

    def _daily_f1(self, days, train_days, n_classes=2):
        encoder = LabelEncoder(n_classes)
        extractor = FeatureExtractor(encoder=encoder)
        train_instances = [
            extractor.extract(t) for day in train_days for t in day
        ]
        X, y = instances_to_arrays(train_instances)
        tree = BatchDecisionTree(n_classes=n_classes).fit(X, y)
        from repro.core.evaluation import ConfusionMatrix

        scores = []
        for day in days:
            matrix = ConfusionMatrix(n_classes)
            instances = [extractor.extract(t, update_bow=False) for t in day]
            Xd, yd = instances_to_arrays(instances)
            for true, pred in zip(yd, tree.predict(Xd)):
                matrix.add(int(true), int(pred))
            scores.append(matrix.weighted_f1)
        return scores

    def test_stale_model_degrades_under_drift(self, drifting_days):
        scores = self._daily_f1(
            drifting_days[1:], train_days=[drifting_days[0]]
        )
        early = sum(scores[:3]) / 3
        late = sum(scores[-3:]) / 3
        # Train-first-day: performance decays as vocabulary drifts.
        assert late < early

    def test_daily_retraining_resists_drift(self, drifting_days):
        stale_scores = self._daily_f1(
            drifting_days[1:], train_days=[drifting_days[0]]
        )
        retrained_scores = []
        for day_index in range(1, len(drifting_days)):
            retrained_scores.extend(
                self._daily_f1(
                    [drifting_days[day_index]],
                    train_days=[drifting_days[day_index - 1]],
                )
            )
        assert retrained_scores[-1] > stale_scores[-1] - 0.02


class TestStreamingVsBatch:
    def test_ht_competitive_with_batch_dt(self, drifting_days):
        tweets = [t for day in drifting_days for t in day]
        streaming = run_pipeline(tweets, PipelineConfig(n_classes=2))
        # Batch DT: train day 0, test days 1-9 (the paper's 1st regime).
        batch_scores = TestBatchRegimes()._daily_f1(
            drifting_days[1:], train_days=[drifting_days[0]]
        )
        batch_mean = sum(batch_scores) / len(batch_scores)
        # §V-D: the streaming method performs at least comparably.
        assert streaming.metrics["f1"] > batch_mean - 0.03
