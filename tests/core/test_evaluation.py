"""Tests for confusion matrices and the prequential evaluator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import (
    ConfusionMatrix,
    PrequentialEvaluator,
    holdout_metrics,
)

pairs = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2)), min_size=1, max_size=200
)


class TestConfusionMatrix:
    def test_perfect_predictions(self):
        matrix = ConfusionMatrix(2)
        for cls in (0, 1, 0, 1):
            matrix.add(cls, cls)
        assert matrix.accuracy == 1.0
        assert matrix.weighted_f1 == 1.0

    def test_all_wrong(self):
        matrix = ConfusionMatrix(2)
        matrix.add(0, 1)
        matrix.add(1, 0)
        assert matrix.accuracy == 0.0
        assert matrix.weighted_f1 == 0.0

    def test_known_values(self):
        matrix = ConfusionMatrix(2)
        # TP=8 (class1), FN=2, FP=1, TN=9.
        for _ in range(8):
            matrix.add(1, 1)
        for _ in range(2):
            matrix.add(1, 0)
        matrix.add(0, 1)
        for _ in range(9):
            matrix.add(0, 0)
        assert matrix.precision(1) == pytest.approx(8 / 9)
        assert matrix.recall(1) == pytest.approx(0.8)
        expected_f1 = 2 * (8 / 9) * 0.8 / ((8 / 9) + 0.8)
        assert matrix.f1(1) == pytest.approx(expected_f1)
        assert matrix.accuracy == pytest.approx(17 / 20)

    def test_never_predicted_class(self):
        matrix = ConfusionMatrix(3)
        matrix.add(0, 0)
        matrix.add(2, 0)
        assert matrix.precision(1) == 0.0
        assert matrix.recall(1) == 0.0
        assert matrix.f1(1) == 0.0

    def test_empty_matrix(self):
        matrix = ConfusionMatrix(2)
        assert matrix.accuracy == 0.0
        assert matrix.weighted_f1 == 0.0

    def test_remove_reverses_add(self):
        matrix = ConfusionMatrix(2)
        matrix.add(0, 1)
        matrix.add(1, 1)
        matrix.remove(0, 1)
        assert matrix.accuracy == 1.0
        assert matrix.total == 1

    @given(pairs)
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, data):
        matrix = ConfusionMatrix(3)
        for true, pred in data:
            matrix.add(true, pred)
        assert 0.0 <= matrix.accuracy <= 1.0
        assert 0.0 <= matrix.weighted_f1 <= 1.0
        assert 0.0 <= matrix.macro_f1 <= 1.0
        assert matrix.total == len(data)
        # Weighted recall equals accuracy for single-label problems.
        assert matrix.weighted_recall == pytest.approx(matrix.accuracy)

    @given(pairs, pairs)
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_union(self, left, right):
        merged = ConfusionMatrix(3)
        for true, pred in left + right:
            merged.add(true, pred)
        a = ConfusionMatrix(3)
        b = ConfusionMatrix(3)
        for true, pred in left:
            a.add(true, pred)
        for true, pred in right:
            b.add(true, pred)
        a.merge(b)
        assert a.matrix == merged.matrix

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            ConfusionMatrix(2).merge(ConfusionMatrix(3))

    def test_copy_independent(self):
        matrix = ConfusionMatrix(2)
        matrix.add(0, 0)
        copy = matrix.copy()
        copy.add(1, 1)
        assert matrix.total == 1
        assert copy.total == 2

    def test_as_dict_keys(self):
        keys = set(ConfusionMatrix(2).as_dict())
        assert keys == {
            "accuracy", "precision", "recall", "f1", "macro_f1",
            "kappa", "kappa_m",
        }

    def test_kappa_perfect_and_chance(self):
        perfect = ConfusionMatrix(2)
        for cls in (0, 1, 0, 1):
            perfect.add(cls, cls)
        assert perfect.kappa == pytest.approx(1.0)
        # Predictions independent of truth -> kappa ~ 0.
        chance = ConfusionMatrix(2)
        for true in (0, 1):
            for pred in (0, 1):
                chance.add(true, pred, weight=25)
        assert chance.kappa == pytest.approx(0.0)

    def test_kappa_m_majority_baseline_is_zero(self):
        matrix = ConfusionMatrix(2)
        # Always predict the majority class 0 on a 90/10 stream.
        for _ in range(90):
            matrix.add(0, 0)
        for _ in range(10):
            matrix.add(1, 0)
        assert matrix.accuracy == pytest.approx(0.9)
        assert matrix.kappa_m == pytest.approx(0.0)

    def test_kappa_m_rewards_minority_skill(self):
        matrix = ConfusionMatrix(2)
        for _ in range(90):
            matrix.add(0, 0)
        for _ in range(8):
            matrix.add(1, 1)
        for _ in range(2):
            matrix.add(1, 0)
        assert matrix.kappa_m > 0.7

    def test_kappa_empty(self):
        assert ConfusionMatrix(2).kappa == 0.0
        assert ConfusionMatrix(2).kappa_m == 0.0


class TestPrequentialEvaluator:
    def test_records_points(self):
        evaluator = PrequentialEvaluator(n_classes=2, record_every=10)
        for i in range(35):
            evaluator.add_labeled(i % 2, i % 2)
        assert len(evaluator.history) == 3
        assert evaluator.history[-1].n_seen == 30

    def test_window_tracks_recent_performance(self):
        evaluator = PrequentialEvaluator(n_classes=2, window=100, record_every=10 ** 9)
        # 500 correct, then 100 wrong: window should reflect the recent dip.
        for _ in range(500):
            evaluator.add_labeled(1, 1)
        for _ in range(100):
            evaluator.add_labeled(1, 0)
        evaluator.record_point()
        point = evaluator.history[-1]
        assert point.accuracy > 0.8  # cumulative still high
        assert point.window_accuracy == 0.0  # window all wrong

    def test_unlabeled_distribution(self):
        evaluator = PrequentialEvaluator(n_classes=2)
        for _ in range(3):
            evaluator.add_unlabeled(1)
        evaluator.add_unlabeled(0)
        assert evaluator.unlabeled_stats.fraction(1) == 0.75

    def test_curve(self):
        evaluator = PrequentialEvaluator(n_classes=2, record_every=5)
        for _ in range(10):
            evaluator.add_labeled(0, 0)
        curve = evaluator.curve("accuracy")
        assert curve == [(5, 1.0), (10, 1.0)]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PrequentialEvaluator(n_classes=2, window=0)
        with pytest.raises(ValueError):
            PrequentialEvaluator(n_classes=2, record_every=0)


class TestHoldout:
    def test_basic(self):
        matrix = holdout_metrics([0, 1, 1], [0, 1, 0], n_classes=2)
        assert matrix.accuracy == pytest.approx(2 / 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            holdout_metrics([0], [0, 1], n_classes=2)
