"""Tests for session-level detection (windowing + bullying sessions)."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.sessions import (
    SESSION_FEATURE_NAMES,
    Session,
    SessionDetectionPipeline,
    TumblingWindowAssigner,
)
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.streamml.instance import ClassifiedInstance, Instance


def _classified(timestamp, predicted=0, y=None, x=None):
    if x is None:
        x = tuple(0.0 for _ in range(17))
    return ClassifiedInstance(
        instance=Instance(x=x, y=y, timestamp=timestamp),
        predicted=predicted,
        proba=(0.3, 0.7) if predicted == 1 else (0.7, 0.3),
    )


class TestTumblingWindowAssigner:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TumblingWindowAssigner(0.0)
        with pytest.raises(ValueError):
            TumblingWindowAssigner(10.0, allowed_lateness=-1)

    def test_window_closes_when_watermark_passes(self):
        assigner = TumblingWindowAssigner(window_size=100.0)
        assert assigner.add("u1", _classified(10.0)) == []
        assert assigner.add("u1", _classified(50.0)) == []
        closed = assigner.add("u1", _classified(150.0))
        assert len(closed) == 1
        assert closed[0].window_start == 0.0
        assert len(closed[0].classified) == 2

    def test_windows_are_per_user(self):
        assigner = TumblingWindowAssigner(window_size=100.0)
        assigner.add("u1", _classified(10.0))
        assigner.add("u2", _classified(20.0))
        assert assigner.n_open == 2
        closed = assigner.add("u1", _classified(250.0))
        assert {w.user_id for w in closed} == {"u1", "u2"}

    def test_late_tweet_dropped(self):
        assigner = TumblingWindowAssigner(window_size=100.0)
        assigner.add("u1", _classified(10.0))
        assigner.add("u1", _classified(250.0))  # closes [0, 100)
        assigner.add("u1", _classified(20.0))  # too late
        assert assigner.n_late_dropped == 1

    def test_allowed_lateness_tolerates_disorder(self):
        assigner = TumblingWindowAssigner(window_size=100.0,
                                          allowed_lateness=100.0)
        assigner.add("u1", _classified(10.0))
        assigner.add("u1", _classified(150.0))
        # Watermark is 50, so [0, 100) is still open for this tweet.
        assigner.add("u1", _classified(90.0))
        assert assigner.n_late_dropped == 0
        closed = assigner.flush()
        first = [w for w in closed if w.window_start == 0.0][0]
        assert len(first.classified) == 2

    def test_flush_closes_everything(self):
        assigner = TumblingWindowAssigner(window_size=100.0)
        assigner.add("u1", _classified(10.0))
        assigner.add("u2", _classified(20.0))
        assert len(assigner.flush()) == 2
        assert assigner.n_open == 0


class TestSessionLabeling:
    def _session(self, n_labeled, n_aggressive):
        return Session(
            user_id="u", window_start=0.0, window_end=100.0,
            n_tweets=n_labeled, n_predicted_aggressive=0,
            n_labeled=n_labeled, n_labeled_aggressive=n_aggressive,
            features=(0.0,) * len(SESSION_FEATURE_NAMES),
        )

    def test_bullying_above_threshold(self):
        assert self._session(4, 3).true_label(0.5) == 1

    def test_not_bullying_below_threshold(self):
        assert self._session(4, 1).true_label(0.5) == 0

    def test_unlabeled_session(self):
        assert self._session(0, 0).true_label(0.5) is None


class TestSessionDetectionPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        # A pool of recurring users makes multi-tweet sessions common.
        stream = AbusiveDatasetGenerator(
            n_tweets=6000, seed=3, user_pool_size=150
        ).generate_list()
        pipeline = SessionDetectionPipeline(
            PipelineConfig(n_classes=2),
            window_size=6 * 3600.0,
        )
        return pipeline.process_stream(stream), pipeline

    def test_sessions_emitted(self, result):
        session_result, pipeline = result
        assert session_result.n_sessions > 50
        assert all(s.n_tweets >= 2 for s in pipeline.sessions)

    def test_feature_vector_width(self, result):
        _, pipeline = result
        assert all(
            len(s.features) == len(SESSION_FEATURE_NAMES)
            for s in pipeline.sessions
        )

    def test_session_classifier_learns(self, result):
        session_result, _ = result
        # Bullying sessions are common with 37% aggressive tweets, so a
        # useful session classifier must beat coin flipping comfortably.
        assert session_result.metrics["accuracy"] > 0.75

    def test_flagged_users_are_predominantly_aggressive(self, result):
        session_result, pipeline = result
        stream_labels = {}
        for session in pipeline.sessions:
            stats = stream_labels.setdefault(session.user_id, [0, 0])
            stats[0] += session.n_labeled_aggressive
            stats[1] += session.n_labeled
        top_flagged = session_result.flagged_users[:10]
        rates = [
            stream_labels[u][0] / stream_labels[u][1]
            for u in top_flagged if stream_labels.get(u, [0, 0])[1] > 0
        ]
        assert rates and sum(rates) / len(rates) > 0.5

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SessionDetectionPipeline(bullying_threshold=0.0)


class TestSlidingWindowAssigner:
    def _classified(self, ts):
        return _classified(ts)

    def test_invalid_slide(self):
        from repro.core.sessions import SlidingWindowAssigner

        with pytest.raises(ValueError):
            SlidingWindowAssigner(window_size=100.0, slide=0.0)
        with pytest.raises(ValueError):
            SlidingWindowAssigner(window_size=100.0, slide=200.0)

    def test_tweet_lands_in_overlapping_windows(self):
        from repro.core.sessions import SlidingWindowAssigner

        assigner = SlidingWindowAssigner(window_size=100.0, slide=50.0)
        assigner.add("u1", _classified(75.0))
        # Covered by [0, 100) and [50, 150).
        assert assigner.n_open == 2

    def test_degrades_to_tumbling_when_slide_equals_size(self):
        from repro.core.sessions import SlidingWindowAssigner

        sliding = SlidingWindowAssigner(window_size=100.0, slide=100.0)
        tumbling = TumblingWindowAssigner(window_size=100.0)
        for ts in (10.0, 60.0, 130.0, 250.0):
            sliding.add("u", _classified(ts))
            tumbling.add("u", _classified(ts))
        s_windows = sorted(
            (w.window_start, len(w.classified)) for w in sliding.flush()
        )
        t_windows = sorted(
            (w.window_start, len(w.classified)) for w in tumbling.flush()
        )
        assert s_windows == t_windows

    def test_windows_close_in_order(self):
        from repro.core.sessions import SlidingWindowAssigner

        assigner = SlidingWindowAssigner(window_size=100.0, slide=50.0)
        assigner.add("u1", _classified(75.0))
        closed = assigner.add("u1", _classified(300.0))
        ends = [w.window_end for w in closed]
        assert ends == sorted(ends)
        assert len(closed) == 2

    def test_pipeline_with_sliding_windows(self):
        from repro.core.sessions import (
            SessionDetectionPipeline,
            SlidingWindowAssigner,
        )
        from repro.core.config import PipelineConfig
        from repro.data.synthetic import AbusiveDatasetGenerator

        stream = AbusiveDatasetGenerator(
            n_tweets=2000, seed=6, user_pool_size=60
        ).generate_list()
        pipeline = SessionDetectionPipeline(
            PipelineConfig(n_classes=2),
            window_assigner=SlidingWindowAssigner(
                window_size=6 * 3600.0, slide=3 * 3600.0
            ),
        )
        result = pipeline.process_stream(stream)
        # Sliding windows emit roughly twice as many sessions.
        assert result.n_sessions > 50
        assert 0.0 <= result.metrics["accuracy"] <= 1.0
