"""Tests for tweet-text preprocessing."""

from __future__ import annotations

from repro.core.preprocessing import (
    TWITTER_ABBREVIATIONS,
    preprocess,
    preprocess_tokens,
    raw_word_tokens,
)
from repro.text.tokenizer import TokenType, tokenize


class TestPreprocess:
    def test_removes_urls(self):
        assert "http" not in preprocess("see https://t.co/abc now")

    def test_removes_mentions(self):
        assert "@" not in preprocess("@alex hello there")

    def test_removes_hashtags(self):
        assert "#" not in preprocess("so happy #blessed")

    def test_removes_numbers(self):
        assert "42" not in preprocess("scored 42 points")

    def test_removes_punctuation(self):
        cleaned = preprocess("wow!!! really?? yes...")
        assert "!" not in cleaned and "?" not in cleaned and "." not in cleaned

    def test_removes_rt_abbreviation(self):
        cleaned = preprocess("RT this is a retweet")
        assert cleaned.split()[0] == "this"

    def test_case_preserved(self):
        assert "SHOUTING" in preprocess("stop SHOUTING please")

    def test_condenses_whitespace(self):
        cleaned = preprocess("a   lot\t\tof     space")
        assert "  " not in cleaned

    def test_empty(self):
        assert preprocess("") == ""

    def test_all_abbreviations_lowercase(self):
        assert all(a == a.lower() for a in TWITTER_ABBREVIATIONS)


class TestTokenViews:
    def test_preprocess_tokens_keeps_only_words(self):
        tokens = preprocess_tokens(tokenize("@a word #tag http://x 12 :)"))
        assert [t.text for t in tokens] == ["word"]

    def test_raw_view_keeps_urls_and_tags(self):
        tokens = raw_word_tokens(tokenize("@a word #tag http://x 12 :)"))
        types = {t.type for t in tokens}
        assert TokenType.URL in types
        assert TokenType.HASHTAG in types
        assert TokenType.MENTION in types
        assert TokenType.NUMBER in types
        assert TokenType.EMOTICON not in types

    def test_raw_view_drops_punctuation(self):
        tokens = raw_word_tokens(tokenize("hello!!!"))
        assert [t.text for t in tokens] == ["hello"]
