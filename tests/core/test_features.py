"""Tests for feature extraction and label encoding."""

from __future__ import annotations

import pytest

from repro.core.adaptive_bow import AdaptiveBagOfWords
from repro.core.features import FEATURE_NAMES, FeatureExtractor, LabelEncoder
from repro.data.tweet import SECONDS_PER_DAY, Tweet, UserProfile


def _tweet(text, label=None, **user_kwargs):
    defaults = dict(
        user_id="1",
        created_at=0.0,
        statuses_count=100,
        listed_count=5,
        followers_count=50,
        friends_count=60,
    )
    defaults.update(user_kwargs)
    return Tweet(
        tweet_id="x",
        text=text,
        created_at=10 * SECONDS_PER_DAY,
        user=UserProfile(**defaults),
        label=label,
    )


class TestLabelEncoder:
    def test_three_class(self):
        enc = LabelEncoder(3)
        assert enc.encode("normal") == 0
        assert enc.encode("abusive") == 1
        assert enc.encode("hateful") == 2
        assert enc.decode(2) == "hateful"

    def test_two_class_merges_aggressive(self):
        enc = LabelEncoder(2)
        assert enc.encode("abusive") == enc.encode("hateful") == 1
        assert enc.decode(1) == "aggressive"

    def test_none_passthrough(self):
        assert LabelEncoder(3).encode(None) is None

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            LabelEncoder(3).encode("spam")

    def test_invalid_class_count(self):
        with pytest.raises(ValueError):
            LabelEncoder(4)

    def test_aggressive_classes(self):
        assert LabelEncoder(3).aggressive_classes == (1, 2)
        assert LabelEncoder(2).aggressive_classes == (1,)

    def test_is_aggressive(self):
        enc = LabelEncoder(3)
        assert not enc.is_aggressive(0)
        assert enc.is_aggressive(1)
        assert enc.is_aggressive(2)


class TestFeatureVector:
    @pytest.fixture()
    def extractor(self):
        return FeatureExtractor(encoder=LabelEncoder(3))

    def _value(self, extractor, tweet, name):
        instance = extractor.extract(tweet)
        return instance.x[FEATURE_NAMES.index(name)]

    def test_vector_width(self, extractor):
        instance = extractor.extract(_tweet("hello world"))
        assert instance.n_features == len(FEATURE_NAMES) == 17

    def test_account_age(self, extractor):
        tweet = _tweet("hi", created_at=0.0)
        assert self._value(extractor, tweet, "accountAge") == pytest.approx(10.0)

    def test_profile_counts(self, extractor):
        tweet = _tweet("hi", statuses_count=7, listed_count=2,
                       followers_count=11, friends_count=13)
        assert self._value(extractor, tweet, "cntPosts") == 7
        assert self._value(extractor, tweet, "cntLists") == 2
        assert self._value(extractor, tweet, "cntFollowers") == 11
        assert self._value(extractor, tweet, "cntFriends") == 13

    def test_hashtags_counted_from_raw(self, extractor):
        tweet = _tweet("nice day #sun #beach")
        assert self._value(extractor, tweet, "numHashtags") == 2

    def test_urls_counted_from_raw(self, extractor):
        tweet = _tweet("look https://t.co/a http://b.co")
        assert self._value(extractor, tweet, "numUrls") == 2

    def test_uppercase_words(self, extractor):
        tweet = _tweet("this is REALLY BAD ok")
        assert self._value(extractor, tweet, "numUpperCases") == 2

    def test_swear_count(self, extractor):
        tweet = _tweet("you fucking idiot moron")
        assert self._value(extractor, tweet, "cntSwearWords") == 3

    def test_sentiment_features(self, extractor):
        positive = _tweet("what a wonderful day")
        negative = _tweet("this is disgusting and awful")
        assert self._value(extractor, positive, "sentimentScorePos") >= 3
        assert self._value(extractor, negative, "sentimentScoreNeg") <= -3

    def test_pos_counts(self, extractor):
        tweet = _tweet("the happy dog runs quickly")
        assert self._value(extractor, tweet, "cntAdjective") >= 1
        assert self._value(extractor, tweet, "cntAdverbs") >= 1
        assert self._value(extractor, tweet, "cntVerbs") >= 1

    def test_words_per_sentence(self, extractor):
        tweet = _tweet("one two three. four five six.")
        assert self._value(extractor, tweet, "wordsPerSentence") == 3.0

    def test_mean_word_length(self, extractor):
        tweet = _tweet("aa bbbb")
        assert self._value(extractor, tweet, "meanWordLength") == 3.0

    def test_empty_text(self, extractor):
        instance = extractor.extract(_tweet(""))
        assert instance.n_features == 17

    def test_label_attached(self, extractor):
        instance = extractor.extract(_tweet("hi", label="abusive"))
        assert instance.y == 1

    def test_unlabeled(self, extractor):
        assert extractor.extract(_tweet("hi")).y is None

    def test_feature_index(self, extractor):
        assert extractor.feature_index("cntSwearWords") == 15


class TestPreprocessingToggle:
    def test_off_pollutes_word_features(self):
        clean = FeatureExtractor(preprocessing=True)
        dirty = FeatureExtractor(preprocessing=False)
        tweet = _tweet("good day https://t.co/abcdef1234 #tag 99")
        mwl_index = FEATURE_NAMES.index("meanWordLength")
        assert (
            dirty.extract(tweet).x[mwl_index]
            > clean.extract(tweet).x[mwl_index]
        )

    def test_rt_removed_only_with_preprocessing(self):
        clean = FeatureExtractor(preprocessing=True)
        dirty = FeatureExtractor(preprocessing=False)
        tweet = _tweet("RT great stuff")
        wps_index = FEATURE_NAMES.index("wordsPerSentence")
        assert clean.extract(tweet).x[wps_index] < dirty.extract(tweet).x[wps_index]


class TestBowIntegration:
    def test_labeled_updates_adaptive_bow(self):
        bow = AdaptiveBagOfWords(seed_words=["seed"], update_interval=10 ** 9)
        extractor = FeatureExtractor(bag_of_words=bow)
        extractor.extract(_tweet("some newinsult here", label="abusive"))
        assert bow._aggressive_counts.get("newinsult") == 1.0

    def test_unlabeled_does_not_update_bow(self):
        bow = AdaptiveBagOfWords(seed_words=["seed"], update_interval=10 ** 9)
        extractor = FeatureExtractor(bag_of_words=bow)
        extractor.extract(_tweet("some newinsult here"))
        assert not bow._aggressive_counts

    def test_update_bow_flag(self):
        bow = AdaptiveBagOfWords(seed_words=["seed"], update_interval=10 ** 9)
        extractor = FeatureExtractor(bag_of_words=bow)
        extractor.extract(_tweet("word", label="abusive"), update_bow=False)
        assert not bow._aggressive_counts

    def test_bow_feature_counts_matches(self):
        bow = AdaptiveBagOfWords(seed_words=["target"], update_interval=10 ** 9)
        extractor = FeatureExtractor(bag_of_words=bow)
        instance = extractor.extract(_tweet("target target other"))
        assert instance.x[FEATURE_NAMES.index("bowMatches")] == 2
