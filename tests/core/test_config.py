"""Tests for pipeline configuration and the model factory."""

from __future__ import annotations

import pytest

from repro.core.config import MODEL_DEFAULTS, PipelineConfig, create_model
from repro.streamml.arf import AdaptiveRandomForest
from repro.streamml.hoeffding_tree import HoeffdingTree
from repro.streamml.slr import StreamingLogisticRegression


class TestPipelineConfig:
    def test_defaults_match_table1(self):
        config = PipelineConfig()
        model = create_model(config)
        assert isinstance(model, HoeffdingTree)
        assert model.split_criterion == "infogain"
        assert model.split_confidence == 0.01
        assert model.tie_threshold == 0.05
        assert model.grace_period == 200
        assert model.max_depth == 20

    def test_invalid_n_classes(self):
        with pytest.raises(ValueError):
            PipelineConfig(n_classes=4)

    def test_invalid_model(self):
        with pytest.raises(ValueError):
            PipelineConfig(model="cnn")

    def test_normalization_enabled(self):
        assert PipelineConfig().normalization_enabled
        assert not PipelineConfig(normalization="none").normalization_enabled

    def test_describe_format(self):
        config = PipelineConfig(
            n_classes=2, preprocessing=False, adaptive_bow=True
        )
        text = config.describe()
        assert "HT" in text
        assert "p=OFF" in text
        assert "ad=ON" in text
        assert "c=2" in text


class TestCreateModel:
    def test_arf_defaults(self):
        model = create_model(PipelineConfig(model="arf"))
        assert isinstance(model, AdaptiveRandomForest)
        assert model.ensemble_size == 10

    def test_slr_defaults(self):
        model = create_model(PipelineConfig(model="slr"))
        assert isinstance(model, StreamingLogisticRegression)
        assert model.learning_rate == 0.1
        assert model.regularizer == "l2"
        assert model.regularization == 0.01

    def test_param_override(self):
        config = PipelineConfig(model="ht", model_params={"grace_period": 99})
        assert create_model(config).grace_period == 99

    def test_n_classes_threaded(self):
        assert create_model(PipelineConfig(n_classes=2)).n_classes == 2

    def test_arf_seed_from_config(self):
        model = create_model(PipelineConfig(model="arf", seed=123))
        assert model.seed == 123

    def test_all_defaults_instantiable(self):
        for name in MODEL_DEFAULTS:
            model = create_model(PipelineConfig(model=name))
            assert model.n_classes == 3
