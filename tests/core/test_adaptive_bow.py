"""Tests for the adaptive bag-of-words."""

from __future__ import annotations

import pytest

from repro.core.adaptive_bow import AdaptiveBagOfWords, FixedBagOfWords
from repro.text.lexicons import swear_words


class TestInitialization:
    def test_seeded_with_347_swears(self):
        bow = AdaptiveBagOfWords()
        assert len(bow) == 347

    def test_custom_seed_words(self):
        bow = AdaptiveBagOfWords(seed_words=["alpha", "beta"])
        assert len(bow) == 2
        assert "alpha" in bow

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdaptiveBagOfWords(update_interval=0)
        with pytest.raises(ValueError):
            AdaptiveBagOfWords(decay=0.0)


class TestCounting:
    def test_count_matches(self):
        bow = AdaptiveBagOfWords(seed_words=["bad", "worse"])
        assert bow.count_matches(["bad", "good", "worse", "bad"]) == 3

    def test_count_empty(self):
        assert AdaptiveBagOfWords().count_matches([]) == 0


class TestAdaptation:
    def _feed(self, bow, word, aggressive_tweets, normal_tweets):
        for _ in range(aggressive_tweets):
            bow.update([word, "filler"], is_aggressive=True)
        for _ in range(normal_tweets):
            bow.update(["other", "filler"], is_aggressive=False)

    def test_adds_trending_aggressive_word(self):
        bow = AdaptiveBagOfWords(
            seed_words=["seed"], update_interval=100, add_min_count=8
        )
        self._feed(bow, "newslur", aggressive_tweets=50, normal_tweets=50)
        assert "newslur" in bow

    def test_does_not_add_balanced_word(self):
        bow = AdaptiveBagOfWords(
            seed_words=["seed"], update_interval=100, add_min_count=8
        )
        # "filler" appears in both groups equally -> must not be added.
        self._feed(bow, "whatever", aggressive_tweets=50, normal_tweets=50)
        assert "filler" not in bow

    def test_rare_word_not_added(self):
        bow = AdaptiveBagOfWords(
            seed_words=["seed"], update_interval=100, add_min_count=8
        )
        for i in range(100):
            tokens = ["rareword"] if i == 0 else ["common"]
            bow.update(tokens, is_aggressive=True)
        assert "rareword" not in bow

    def test_removes_word_that_goes_mainstream(self):
        bow = AdaptiveBagOfWords(
            seed_words=["fad"],
            update_interval=200,
            remove_min_count=20,
            remove_ratio=2.0,
        )
        # "fad" becomes very popular in normal tweets, absent in aggressive.
        for _ in range(100):
            bow.update(["fad"], is_aggressive=False)
        for _ in range(100):
            bow.update(["insult"], is_aggressive=True)
        assert "fad" not in bow
        assert bow.n_removed >= 1

    def test_short_tokens_ignored(self):
        bow = AdaptiveBagOfWords(
            seed_words=["seed"], update_interval=50, add_min_count=5,
            min_word_length=3,
        )
        for _ in range(50):
            bow.update(["xx"], is_aggressive=True)
        assert "xx" not in bow

    def test_size_history_recorded(self):
        bow = AdaptiveBagOfWords(seed_words=["seed"], update_interval=10)
        for i in range(35):
            bow.update(["word"], is_aggressive=bool(i % 2))
        assert len(bow.size_history) == 3
        assert all(isinstance(point, tuple) for point in bow.size_history)

    def test_decay_fades_old_counts(self):
        bow = AdaptiveBagOfWords(
            seed_words=["seed"], update_interval=10, decay=0.5
        )
        bow.update(["oldword"], is_aggressive=True)
        for _ in range(60):
            bow.update(["filler"], is_aggressive=False)
        assert bow._aggressive_counts.get("oldword", 0.0) < 1.0


class TestDistributedMerge:
    def test_fresh_delta_shares_words(self):
        bow = AdaptiveBagOfWords(seed_words=["alpha"])
        delta = bow.fresh_delta()
        assert "alpha" in delta
        assert delta._aggressive_tweets == 0

    def test_absorb_combines_counts(self):
        bow = AdaptiveBagOfWords(
            seed_words=["seed"], update_interval=10 ** 9, add_min_count=8
        )
        deltas = [bow.fresh_delta() for _ in range(2)]
        for delta in deltas:
            for _ in range(30):
                delta.update(["emergent"], is_aggressive=True)
                delta.update(["plain"], is_aggressive=False)
        for delta in deltas:
            bow.absorb(delta)
        bow.maintain()
        assert "emergent" in bow
        assert "plain" not in bow


class TestFixedBagOfWords:
    def test_never_changes(self):
        bow = FixedBagOfWords(seed_words=["only"])
        bow.update(["newword"] * 100, is_aggressive=True)
        bow.maintain()
        assert len(bow) == 1

    def test_default_seed_is_swear_list(self):
        assert len(FixedBagOfWords()) == len(swear_words())
