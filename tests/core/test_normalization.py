"""Tests for the incremental normalizers."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalization import (
    IdentityNormalizer,
    MinMaxNoOutliersNormalizer,
    MinMaxNormalizer,
    ZScoreNormalizer,
    make_normalizer,
)
from repro.streamml.instance import Instance

vectors = st.lists(
    st.tuples(
        st.floats(-1e4, 1e4, allow_nan=False),
        st.floats(-1e4, 1e4, allow_nan=False),
    ),
    min_size=2,
    max_size=60,
)


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_normalizer("minmax", 3), MinMaxNormalizer)
        assert isinstance(
            make_normalizer("minmax_no_outliers", 3), MinMaxNoOutliersNormalizer
        )
        assert isinstance(make_normalizer("zscore", 3), ZScoreNormalizer)
        assert isinstance(make_normalizer("none", 3), IdentityNormalizer)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_normalizer("rank", 3)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            MinMaxNormalizer(0)


class TestMinMax:
    def test_scales_into_unit_interval(self):
        normalizer = MinMaxNormalizer(1)
        for v in (0.0, 10.0, 5.0):
            normalizer.observe((v,))
        assert normalizer.transform((0.0,)) == (0.0,)
        assert normalizer.transform((10.0,)) == (1.0,)
        assert normalizer.transform((5.0,)) == (0.5,)

    def test_clamps_unseen_extremes(self):
        normalizer = MinMaxNormalizer(1)
        normalizer.observe((0.0,))
        normalizer.observe((1.0,))
        assert normalizer.transform((5.0,)) == (1.0,)
        assert normalizer.transform((-5.0,)) == (0.0,)

    def test_constant_feature_maps_to_zero(self):
        normalizer = MinMaxNormalizer(1)
        normalizer.observe((3.0,))
        normalizer.observe((3.0,))
        assert normalizer.transform((3.0,)) == (0.0,)

    def test_width_mismatch(self):
        normalizer = MinMaxNormalizer(2)
        with pytest.raises(ValueError):
            normalizer.observe((1.0,))

    @given(vectors)
    @settings(max_examples=50, deadline=None)
    def test_outputs_always_in_unit_interval(self, data):
        normalizer = MinMaxNormalizer(2)
        for vector in data:
            out = normalizer.observe_and_transform(vector)
            assert all(0.0 <= v <= 1.0 for v in out)

    def test_merge(self):
        a = MinMaxNormalizer(1)
        b = MinMaxNormalizer(1)
        a.observe((0.0,))
        b.observe((10.0,))
        a.merge(b)
        assert a.transform((5.0,)) == (0.5,)


class TestMinMaxNoOutliers:
    def test_outlier_does_not_stretch_range(self):
        rng = random.Random(0)
        robust = MinMaxNoOutliersNormalizer(1)
        plain = MinMaxNormalizer(1)
        for _ in range(5000):
            v = (rng.uniform(0, 1),)
            robust.observe(v)
            plain.observe(v)
        outlier = (1000.0,)
        robust.observe(outlier)
        plain.observe(outlier)
        mid = (0.5,)
        # Plain min-max collapses everything near 0; robust stays ~0.5.
        assert plain.transform(mid)[0] < 0.01
        assert robust.transform(mid)[0] == pytest.approx(0.5, abs=0.1)

    def test_invalid_quantiles(self):
        with pytest.raises(ValueError):
            MinMaxNoOutliersNormalizer(1, lower_quantile=0.9, upper_quantile=0.1)

    def test_clipping(self):
        normalizer = MinMaxNoOutliersNormalizer(1)
        rng = random.Random(1)
        for _ in range(1000):
            normalizer.observe((rng.uniform(0, 1),))
        assert normalizer.transform((99.0,)) == (1.0,)
        assert normalizer.transform((-99.0,)) == (0.0,)

    def test_merge_of_splits_approximates_single_pass(self):
        """The engine's use case: partitions of one batch merge back."""
        rng = random.Random(2)
        data = [(rng.uniform(0, 1),) for _ in range(2000)]
        together = MinMaxNoOutliersNormalizer(1)
        for v in data:
            together.observe(v)
        a = MinMaxNoOutliersNormalizer(1)
        b = MinMaxNoOutliersNormalizer(1)
        for index, v in enumerate(data):  # round-robin split
            (a if index % 2 == 0 else b).observe(v)
        a.merge(b)
        assert a.observed == 2000
        for probe in (0.25, 0.5, 0.75):
            assert a.transform((probe,))[0] == pytest.approx(
                together.transform((probe,))[0], abs=0.05
            )

    def test_merge_into_light_side_keeps_heavy_statistics(self):
        a = MinMaxNoOutliersNormalizer(1)
        b = MinMaxNoOutliersNormalizer(1)
        rng = random.Random(2)
        for _ in range(3):  # still buffering initial samples
            a.observe((rng.uniform(100, 101),))
        for _ in range(1000):
            b.observe((rng.uniform(100, 101),))
        a.merge(b)
        assert a.observed == 1003
        assert a.transform((100.5,))[0] == pytest.approx(0.5, abs=0.15)

    def test_merge_rejects_mismatched_bounds(self):
        a = MinMaxNoOutliersNormalizer(1, 0.05, 0.95)
        b = MinMaxNoOutliersNormalizer(1, 0.10, 0.90)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_fresh_copies_configuration(self):
        a = MinMaxNoOutliersNormalizer(3, 0.10, 0.90)
        a.observe((1.0, 2.0, 3.0))
        b = a.fresh()
        assert isinstance(b, MinMaxNoOutliersNormalizer)
        assert b.observed == 0
        assert (b.n_features, b.lower_quantile, b.upper_quantile) == (
            3,
            0.10,
            0.90,
        )


class TestZScore:
    def test_standardizes(self):
        normalizer = ZScoreNormalizer(1)
        rng = random.Random(3)
        for _ in range(5000):
            normalizer.observe((rng.gauss(10.0, 2.0),))
        assert normalizer.transform((10.0,))[0] == pytest.approx(0.0, abs=0.1)
        assert normalizer.transform((12.0,))[0] == pytest.approx(1.0, abs=0.1)

    def test_too_few_observations_zero(self):
        normalizer = ZScoreNormalizer(1)
        normalizer.observe((5.0,))
        assert normalizer.transform((5.0,)) == (0.0,)

    def test_merge_equals_sequential(self):
        rng = random.Random(4)
        data = [(rng.gauss(0, 5),) for _ in range(400)]
        together = ZScoreNormalizer(1)
        for v in data:
            together.observe(v)
        a = ZScoreNormalizer(1)
        b = ZScoreNormalizer(1)
        for v in data[:200]:
            a.observe(v)
        for v in data[200:]:
            b.observe(v)
        a.merge(b)
        probe = (3.3,)
        assert a.transform(probe)[0] == pytest.approx(
            together.transform(probe)[0], rel=1e-9
        )


class TestIdentity:
    def test_passthrough(self):
        normalizer = IdentityNormalizer(2)
        assert normalizer.observe_and_transform((7.0, -3.0)) == (7.0, -3.0)

    def test_transform_instance_preserves_metadata(self):
        normalizer = MinMaxNormalizer(1)
        normalizer.observe((0.0,))
        normalizer.observe((2.0,))
        instance = Instance(x=(1.0,), y=1, tweet_id="t9")
        out = normalizer.transform_instance(instance)
        assert out.x == (0.5,)
        assert out.y == 1
        assert out.tweet_id == "t9"
