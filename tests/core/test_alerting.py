"""Tests for alerting."""

from __future__ import annotations

import pytest

from repro.core.alerting import Alert, AlertAction, AlertManager, AlertPolicy
from repro.streamml.instance import ClassifiedInstance, Instance


def _classified(predicted, confidence, timestamp=0.0, tweet_id="t1"):
    n_classes = max(predicted + 1, 2)
    proba = [0.0] * n_classes
    proba[predicted] = confidence
    remaining = 1.0 - confidence
    for cls in range(n_classes):
        if cls != predicted:
            proba[cls] = remaining / (n_classes - 1)
    return ClassifiedInstance(
        instance=Instance(x=(0.0,), timestamp=timestamp, tweet_id=tweet_id),
        predicted=predicted,
        proba=tuple(proba),
    )


class TestAlertPolicy:
    def test_action_by_confidence(self):
        policy = AlertPolicy(escalation_confidence=0.9)
        assert policy.action_for(0.5) is AlertAction.NOTIFY_MODERATOR
        assert policy.action_for(0.95) is AlertAction.REMOVE_TWEET


class TestProcessBatch:
    def test_batch_matches_per_instance_processing(self):
        items = [
            (_classified(1, 0.9, timestamp=float(i), tweet_id=f"t{i}"), "u1")
            for i in range(4)
        ] + [(_classified(0, 0.99), "u2"), (_classified(1, 0.3), "u3")]
        batched = AlertManager()
        raised = batched.process_batch(items)
        one_by_one = AlertManager()
        for classified, user_id in items:
            one_by_one.process(classified, user_id=user_id)
        assert len(raised) == batched.n_alerts == one_by_one.n_alerts
        assert [a.action for a in batched.alerts] == [
            a.action for a in one_by_one.alerts
        ]
        assert batched.suspended_users == one_by_one.suspended_users

    def test_returns_only_raised_alerts(self):
        manager = AlertManager()
        raised = manager.process_batch(
            [(_classified(0, 0.9), None), (_classified(1, 0.9), None)]
        )
        assert len(raised) == 1
        assert raised[0].predicted_class == 1

    def test_empty_batch(self):
        manager = AlertManager()
        assert manager.process_batch([]) == []
        assert manager.n_alerts == 0


class TestAlertManager:
    def test_normal_prediction_no_alert(self):
        manager = AlertManager()
        assert manager.process(_classified(0, 0.99)) is None
        assert manager.n_alerts == 0

    def test_aggressive_prediction_alerts(self):
        manager = AlertManager()
        alert = manager.process(_classified(1, 0.8))
        assert alert is not None
        assert alert.predicted_class == 1
        assert alert.action is AlertAction.NOTIFY_MODERATOR

    def test_low_confidence_suppressed(self):
        manager = AlertManager(AlertPolicy(min_confidence=0.7))
        assert manager.process(_classified(1, 0.6)) is None

    def test_high_confidence_escalates_to_removal(self):
        manager = AlertManager(AlertPolicy(escalation_confidence=0.9))
        alert = manager.process(_classified(1, 0.97))
        assert alert.action is AlertAction.REMOVE_TWEET

    def test_multiclass_aggressive_classes(self):
        manager = AlertManager(AlertPolicy(aggressive_classes=(1, 2)))
        assert manager.process(_classified(2, 0.9)) is not None

    def test_repeat_offender_suspended(self):
        manager = AlertManager(AlertPolicy(suspend_after=3))
        for i in range(3):
            alert = manager.process(
                _classified(1, 0.8, timestamp=float(i)), user_id="u7"
            )
        assert alert.action is AlertAction.SUSPEND_USER
        assert manager.is_suspended("u7")

    def test_history_window_expires(self):
        manager = AlertManager(
            AlertPolicy(suspend_after=2, history_window=10.0)
        )
        manager.process(_classified(1, 0.8, timestamp=0.0), user_id="u1")
        # Second offense far outside the window: no suspension.
        alert = manager.process(
            _classified(1, 0.8, timestamp=1000.0), user_id="u1"
        )
        assert alert.action is not AlertAction.SUSPEND_USER
        assert not manager.is_suspended("u1")

    def test_sink_invoked(self):
        received = []
        manager = AlertManager()
        manager.add_sink(received.append)
        manager.process(_classified(1, 0.8))
        assert len(received) == 1
        assert isinstance(received[0], Alert)

    def test_alerts_by_action(self):
        manager = AlertManager(AlertPolicy(escalation_confidence=0.9))
        manager.process(_classified(1, 0.8))
        manager.process(_classified(1, 0.95))
        histogram = manager.alerts_by_action()
        assert histogram[AlertAction.NOTIFY_MODERATOR] == 1
        assert histogram[AlertAction.REMOVE_TWEET] == 1
