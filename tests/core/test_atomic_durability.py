"""Crash-window regression tests for atomic+durable file writes.

``atomic_write_text`` must fsync the temp file *and* the parent
directory around the rename: skipping the file fsync risks a
zero-length target after power loss, skipping the directory fsync
risks the rename itself vanishing. These tests pin the call sequence
(via a recording fsync) and the crash-window invariant (replace fails
→ previous content intact, no temp litter).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.checkpoint import atomic_write_json, atomic_write_text


def _fd_target(fd: int) -> str:
    try:
        return os.readlink(f"/proc/self/fd/{fd}")
    except OSError:  # pragma: no cover - non-Linux fallback
        return f"fd:{fd}"


class TestDurabilityProtocol:
    def test_fsyncs_file_and_directory_around_rename(
        self, tmp_path, monkeypatch
    ):
        events = []
        real_fsync = os.fsync
        real_replace = os.replace

        def recording_fsync(fd):
            events.append(("fsync", _fd_target(fd)))
            real_fsync(fd)

        def recording_replace(src, dst):
            events.append(("replace", str(src), str(dst)))
            real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        monkeypatch.setattr(os, "replace", recording_replace)
        target = tmp_path / "state.json"
        atomic_write_text(target, '{"ok": true}')

        kinds = [
            (
                event[0],
                "dir" if event[1] == str(tmp_path) else "file",
            )
            for event in events
            if event[0] == "fsync"
        ]
        # Temp-file fsync, then the parent dir before AND after the
        # rename: the rename itself must be on disk.
        assert kinds == [
            ("fsync", "file"), ("fsync", "dir"), ("fsync", "dir")
        ]
        replace_at = next(
            i for i, e in enumerate(events) if e[0] == "replace"
        )
        fsyncs_before = [
            e for e in events[:replace_at] if e[0] == "fsync"
        ]
        fsyncs_after = [
            e for e in events[replace_at:] if e[0] == "fsync"
        ]
        assert len(fsyncs_before) == 2  # file + dir precede the swap
        assert len(fsyncs_after) == 1  # dir follows it

    def test_crashed_rename_leaves_previous_content(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "state.json"
        atomic_write_text(target, "generation-1")

        def exploding_replace(src, dst):
            raise OSError("simulated crash inside the rename window")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(target, "generation-2")
        monkeypatch.undo()
        assert target.read_text(encoding="utf-8") == "generation-1"

    def test_crashed_fsync_never_exposes_partial_target(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "state.json"

        def exploding_fsync(fd):
            raise OSError("simulated device error")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="device error"):
            atomic_write_text(target, "never-visible")
        monkeypatch.undo()
        assert not target.exists()

    def test_directory_fsync_failure_is_tolerated(
        self, tmp_path, monkeypatch
    ):
        """Some filesystems refuse O_RDONLY fsync on directories; the
        write must still land (atomicity holds, durability degrades)."""
        real_open = os.open

        def no_dir_open(path, flags, *args, **kwargs):
            if Path(path).is_dir():
                raise OSError("directories not openable here")
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr(os, "open", no_dir_open)
        target = tmp_path / "state.json"
        atomic_write_text(target, "content")
        monkeypatch.undo()
        assert target.read_text(encoding="utf-8") == "content"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write_json(tmp_path / "a.json", {"x": 1})
        leftovers = [
            p.name for p in tmp_path.iterdir() if p.name != "a.json"
        ]
        assert leftovers == []
