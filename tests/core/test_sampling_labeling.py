"""Tests for boosted sampling and the labeling loop."""

from __future__ import annotations

import random

import pytest

from repro.core.labeling import LabelingQueue, OracleLabeler
from repro.core.sampling import BoostedRandomSampler
from repro.data.tweet import Tweet, UserProfile
from repro.streamml.instance import ClassifiedInstance, Instance


def _classified(predicted, tweet_id="t"):
    return ClassifiedInstance(
        instance=Instance(x=(0.0,), tweet_id=tweet_id),
        predicted=predicted,
        proba=(0.5, 0.5),
    )


class TestBoostedRandomSampler:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BoostedRandomSampler(capacity=0)
        with pytest.raises(ValueError):
            BoostedRandomSampler(boost=0.0)

    def test_fills_to_capacity(self):
        sampler = BoostedRandomSampler(capacity=10)
        for i in range(5):
            sampler.offer(_classified(0, tweet_id=str(i)))
        assert len(sampler.sample()) == 5
        for i in range(100):
            sampler.offer(_classified(0, tweet_id=f"b{i}"))
        assert len(sampler.sample()) == 10

    def test_boost_overrepresents_minority(self):
        rng = random.Random(0)
        sampler = BoostedRandomSampler(capacity=200, boost=8.0, seed=1)
        minority_rate = 0.05
        for i in range(20_000):
            predicted = 1 if rng.random() < minority_rate else 0
            sampler.offer(_classified(predicted, tweet_id=str(i)))
        fraction = sampler.aggressive_fraction_in_sample
        # 5% base rate boosted 8x -> expect ~30% in sample.
        assert fraction > 0.15

    def test_unboosted_matches_base_rate(self):
        rng = random.Random(2)
        sampler = BoostedRandomSampler(capacity=300, boost=1.0, seed=3)
        for i in range(20_000):
            predicted = 1 if rng.random() < 0.1 else 0
            sampler.offer(_classified(predicted, tweet_id=str(i)))
        assert sampler.aggressive_fraction_in_sample == pytest.approx(0.1, abs=0.06)

    def test_drain_resets(self):
        sampler = BoostedRandomSampler(capacity=5)
        for i in range(10):
            sampler.offer(_classified(0, tweet_id=str(i)))
        drained = sampler.drain()
        assert len(drained) == 5
        assert sampler.sample() == []

    def test_counters(self):
        sampler = BoostedRandomSampler(capacity=5)
        sampler.offer(_classified(1))
        sampler.offer(_classified(0))
        assert sampler.n_offered == 2
        assert sampler.n_aggressive_offered == 1

    def test_offer_many_matches_per_instance_offers(self):
        items = [
            _classified(1 if i % 7 == 0 else 0, tweet_id=str(i))
            for i in range(500)
        ]
        batched = BoostedRandomSampler(capacity=20, seed=9)
        batched.offer_many(items)
        one_by_one = BoostedRandomSampler(capacity=20, seed=9)
        for item in items:
            one_by_one.offer(item)
        assert batched.n_offered == one_by_one.n_offered == 500
        assert [item.instance.tweet_id for item in batched.sample()] == [
            item.instance.tweet_id for item in one_by_one.sample()
        ]


def _tweet(tweet_id, label=None):
    return Tweet(
        tweet_id=tweet_id,
        text="text",
        created_at=0.0,
        user=UserProfile(user_id="0"),
        label=label,
    )


class TestOracleLabeler:
    def test_returns_truth(self):
        labeler = OracleLabeler({"a": "abusive"})
        assert labeler.label(_tweet("a")) == "abusive"

    def test_unknown_returns_none(self):
        assert OracleLabeler({}).label(_tweet("zz")) is None

    def test_error_injection(self):
        labeler = OracleLabeler(
            {str(i): "abusive" for i in range(10)}, error_rate=0.5
        )
        labels = [labeler.label(_tweet(str(i))) for i in range(10)]
        assert labels.count("normal") == 5

    def test_invalid_error_rate(self):
        with pytest.raises(ValueError):
            OracleLabeler({}, error_rate=1.0)


class TestLabelingQueue:
    def test_fifo_processing(self):
        queue = LabelingQueue()
        queue.submit_many([_tweet("a"), _tweet("b")])
        labeler = OracleLabeler({"a": "normal", "b": "abusive"})
        labeled = queue.process(labeler)
        assert [t.tweet_id for t in labeled] == ["a", "b"]
        assert [t.label for t in labeled] == ["normal", "abusive"]
        assert queue.pending == 0

    def test_limit(self):
        queue = LabelingQueue()
        queue.submit_many([_tweet(str(i)) for i in range(5)])
        labeler = OracleLabeler({str(i): "normal" for i in range(5)})
        labeled = queue.process(labeler, limit=2)
        assert len(labeled) == 2
        assert queue.pending == 3

    def test_undecidable_dropped(self):
        queue = LabelingQueue()
        queue.submit(_tweet("known"))
        queue.submit(_tweet("unknown"))
        labeled = queue.process(OracleLabeler({"known": "normal"}))
        assert len(labeled) == 1
        assert queue.n_dropped == 1

    def test_max_pending_drops_oldest(self):
        queue = LabelingQueue(max_pending=3)
        for i in range(5):
            queue.submit(_tweet(str(i)))
        assert queue.pending == 3
        assert queue.n_dropped == 2

    def test_invalid_max_pending(self):
        with pytest.raises(ValueError):
            LabelingQueue(max_pending=0)
