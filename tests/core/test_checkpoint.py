"""Tests for pipeline checkpointing (save → resume equivalence)."""

from __future__ import annotations

import pytest

from repro.core.checkpoint import (
    load_pipeline,
    normalizer_from_dict,
    normalizer_to_dict,
    pipeline_from_dict,
    pipeline_to_dict,
    save_pipeline,
)
from repro.core.config import PipelineConfig
from repro.core.normalization import make_normalizer
from repro.core.pipeline import AggressionDetectionPipeline
from repro.data.loader import strip_labels


class TestNormalizerRoundTrip:
    @pytest.mark.parametrize(
        "kind", ["minmax", "minmax_no_outliers", "zscore", "none"]
    )
    def test_transform_identical(self, kind):
        import random

        rng = random.Random(0)
        normalizer = make_normalizer(kind, 3)
        for _ in range(500):
            normalizer.observe(
                (rng.gauss(5, 2), rng.expovariate(0.1), rng.random())
            )
        restored = normalizer_from_dict(normalizer_to_dict(normalizer))
        for _ in range(50):
            probe = (rng.gauss(5, 2), rng.expovariate(0.1), rng.random())
            assert restored.transform(probe) == pytest.approx(
                normalizer.transform(probe)
            )


class TestResumeEquivalence:
    """A resumed pipeline must continue exactly as an uninterrupted one."""

    @pytest.mark.parametrize("model", ["ht", "slr"])
    def test_metrics_identical_after_resume(self, medium_stream, model):
        stream = medium_stream[:5000]
        half = len(stream) // 2
        config = PipelineConfig(n_classes=2, model=model)

        uninterrupted = AggressionDetectionPipeline(config)
        uninterrupted.process_stream(stream)

        first = AggressionDetectionPipeline(config)
        first.process_stream(stream[:half])
        resumed = pipeline_from_dict(pipeline_to_dict(first))
        resumed.process_stream(stream[half:])

        assert resumed.evaluator.summary() == pytest.approx(
            uninterrupted.evaluator.summary()
        )
        assert resumed.n_processed == uninterrupted.n_processed
        assert len(resumed.bag_of_words) == len(uninterrupted.bag_of_words)

    def test_unlabeled_path_state_restored(self, small_stream):
        config = PipelineConfig(n_classes=2)
        pipeline = AggressionDetectionPipeline(config)
        pipeline.process_stream(small_stream)
        for tweet in strip_labels(small_stream[:400]):
            pipeline.process(tweet)
        restored = pipeline_from_dict(pipeline_to_dict(pipeline))
        assert restored.n_unlabeled == pipeline.n_unlabeled
        assert restored.sampler.n_offered == pipeline.sampler.n_offered
        assert len(restored.sampler.sample()) == len(pipeline.sampler.sample())
        assert (
            restored.alert_manager.suspended_users
            == pipeline.alert_manager.suspended_users
        )

    def test_sampler_rng_continues_identically(self, small_stream):
        config = PipelineConfig(n_classes=2)
        pipeline = AggressionDetectionPipeline(config)
        pipeline.process_stream(small_stream[:1000])
        restored = pipeline_from_dict(pipeline_to_dict(pipeline))
        tail = list(strip_labels(small_stream[1000:1400]))
        for tweet in tail:
            pipeline.process(tweet)
            restored.process(tweet)
        original_ids = sorted(
            c.instance.tweet_id for c in pipeline.sampler.sample()
        )
        restored_ids = sorted(
            c.instance.tweet_id for c in restored.sampler.sample()
        )
        assert original_ids == restored_ids


class TestFiles:
    def test_file_round_trip(self, tmp_path, small_stream):
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=3))
        pipeline.process_stream(small_stream[:800])
        path = tmp_path / "checkpoint.json"
        size = save_pipeline(pipeline, path)
        assert size > 0
        restored = load_pipeline(path)
        assert restored.config.n_classes == 3
        assert restored.n_processed == 800

    def test_bad_version_rejected(self, small_stream):
        from repro.streamml.serialize import SerializationError

        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        pipeline.process_stream(small_stream[:100])
        payload = pipeline_to_dict(pipeline)
        payload["checkpoint_version"] = 999
        with pytest.raises(SerializationError):
            pipeline_from_dict(payload)
