"""Tests for alert explanations."""

from __future__ import annotations

import random

import pytest

from repro.core.config import PipelineConfig
from repro.core.explain import (
    AlertExplainer,
    explain_linear_prediction,
    explain_tree_prediction,
)
from repro.core.pipeline import AggressionDetectionPipeline
from repro.data.tweet import Tweet, UserProfile
from repro.streamml.hoeffding_tree import HoeffdingTree
from repro.streamml.instance import Instance
from repro.streamml.slr import StreamingLogisticRegression


def _grown_tree():
    rng = random.Random(0)
    tree = HoeffdingTree(n_classes=2, grace_period=100)
    for _ in range(5000):
        label = rng.random() < 0.5
        tree.learn_one(Instance(
            x=(rng.gauss(4.0 if label else 0.0, 1.0), rng.gauss(0, 1)),
            y=int(label),
        ))
    assert tree.n_split_nodes >= 1
    return tree


class TestTreeExplanation:
    def test_path_matches_prediction(self):
        tree = _grown_tree()
        x = (4.5, 0.0)
        steps, counts = explain_tree_prediction(
            tree, x, feature_names=("f0", "f1")
        )
        assert len(steps) >= 1
        assert len(counts) == 2
        # The leaf's majority class should match the tree's prediction
        # when leaves predict by majority on well-trained data.
        assert counts.index(max(counts)) == tree.predict_one(x)

    def test_step_descriptions(self):
        tree = _grown_tree()
        steps, _ = explain_tree_prediction(tree, (4.5, 0.0), ("f0", "f1"))
        text = steps[0].describe()
        assert "f0" in text or "f1" in text
        assert "<=" in text or ">" in text

    def test_single_leaf_tree_has_empty_path(self):
        tree = HoeffdingTree(n_classes=2)
        steps, counts = explain_tree_prediction(tree, (1.0,), ("f0",))
        assert steps == []


class TestLinearExplanation:
    def test_contributions_sorted_by_magnitude(self):
        rng = random.Random(1)
        model = StreamingLogisticRegression(n_classes=2)
        for _ in range(2000):
            label = rng.random() < 0.5
            model.learn_one(Instance(
                x=(rng.gauss(2.0 if label else -2.0, 1.0), rng.gauss(0, 1)),
                y=int(label),
            ))
        contributions = explain_linear_prediction(
            model, (2.0, 0.1), target_class=1, feature_names=("sep", "noise")
        )
        magnitudes = [abs(c.contribution) for c in contributions]
        assert magnitudes == sorted(magnitudes, reverse=True)
        assert contributions[0].feature == "sep"

    def test_untrained_model_empty(self):
        model = StreamingLogisticRegression(n_classes=2)
        assert explain_linear_prediction(model, (1.0,), 0) == []

    def test_top_limits_output(self):
        rng = random.Random(2)
        model = StreamingLogisticRegression(n_classes=2)
        model.learn_one(Instance(x=(1.0, 2.0, 3.0), y=1))
        result = explain_linear_prediction(model, (1.0, 2.0, 3.0), 1, top=2)
        assert len(result) == 2


class TestAlertExplainer:
    @pytest.fixture(scope="class")
    def pipeline(self, request):
        from repro.data.synthetic import AbusiveDatasetGenerator

        stream = AbusiveDatasetGenerator(n_tweets=3000, seed=4).generate_list()
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        pipeline.process_stream(stream)
        return pipeline

    def _tweet(self, text):
        return Tweet(
            tweet_id="x1",
            text=text,
            created_at=9e8,
            user=UserProfile(user_id="u", created_at=0.0),
        )

    def test_explains_aggressive_tweet(self, pipeline):
        explanation = AlertExplainer(pipeline).explain(
            self._tweet("you are a fucking idiot and a moron")
        )
        assert explanation.predicted_label == "aggressive"
        assert "fucking" in explanation.matched_swear_words
        assert "idiot" in explanation.matched_swear_words
        assert explanation.confidence > 0.5
        assert explanation.decision_path  # HT model -> path present

    def test_explains_normal_tweet(self, pipeline):
        explanation = AlertExplainer(pipeline).explain(
            self._tweet("what a lovely day at the park with my family")
        )
        assert explanation.predicted_label == "normal"
        assert explanation.matched_swear_words == []

    def test_describe_is_readable(self, pipeline):
        explanation = AlertExplainer(pipeline).explain(
            self._tweet("shut up you pathetic clown")
        )
        text = explanation.describe()
        assert "predicted" in text
        assert "x1" in text

    def test_explain_does_not_mutate_state(self, pipeline):
        seen_before = pipeline.model.instances_seen
        processed_before = pipeline.n_processed
        AlertExplainer(pipeline).explain(self._tweet("damn this idiot"))
        assert pipeline.model.instances_seen == seen_before
        assert pipeline.n_processed == processed_before

    def test_slr_contributions(self):
        from repro.data.synthetic import AbusiveDatasetGenerator

        stream = AbusiveDatasetGenerator(n_tweets=2000, seed=5).generate_list()
        pipeline = AggressionDetectionPipeline(
            PipelineConfig(n_classes=2, model="slr")
        )
        pipeline.process_stream(stream)
        explanation = AlertExplainer(pipeline).explain(
            self._tweet("you are a fucking idiot")
        )
        assert explanation.contributions
        assert explanation.decision_path == []
