"""Tests for the end-to-end pipeline."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline, run_pipeline
from repro.data.loader import strip_labels
from repro.data.synthetic import AbusiveDatasetGenerator


class TestProcessing:
    def test_processes_labeled_stream(self, small_stream):
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        result = pipeline.process_stream(small_stream)
        assert result.n_processed == len(small_stream)
        assert result.n_labeled == len(small_stream)
        assert result.n_unlabeled == 0
        assert 0.0 <= result.metrics["f1"] <= 1.0

    def test_learns_above_majority_baseline(self, medium_stream):
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        result = pipeline.process_stream(medium_stream)
        majority = sum(
            1 for t in medium_stream if t.label == "normal"
        ) / len(medium_stream)
        assert result.metrics["accuracy"] > majority + 0.05

    def test_unlabeled_stream_generates_alerts(self, small_stream):
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        # Train on the labeled stream, then process it unlabeled.
        pipeline.process_stream(small_stream)
        for tweet in strip_labels(small_stream[:500]):
            pipeline.process(tweet)
        assert pipeline.n_unlabeled == 500
        assert pipeline.alert_manager.n_alerts > 0
        assert len(pipeline.sampler.sample()) > 0

    def test_classified_instance_fields(self, small_stream):
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=3))
        classified = pipeline.process(small_stream[0])
        assert classified.predicted in (0, 1, 2)
        assert sum(classified.proba) == pytest.approx(1.0)

    def test_three_class_setup(self, small_stream):
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=3))
        result = pipeline.process_stream(small_stream)
        assert result.metrics["f1"] > 0.5

    def test_predict_is_stateless(self, small_stream):
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        pipeline.process_stream(small_stream[:1000])
        seen_before = pipeline.model.instances_seen
        label = pipeline.predict_label(small_stream[1000])
        assert label in ("normal", "aggressive")
        assert pipeline.model.instances_seen == seen_before

    def test_run_pipeline_helper(self, small_stream):
        result = run_pipeline(small_stream[:300], PipelineConfig(n_classes=2))
        assert result.n_processed == 300


class TestConfigurationEffects:
    def test_adaptive_bow_grows(self, medium_stream):
        pipeline = AggressionDetectionPipeline(
            PipelineConfig(n_classes=2, adaptive_bow=True)
        )
        result = pipeline.process_stream(medium_stream)
        assert result.bow_size > 347
        assert result.bow_size_history

    def test_fixed_bow_stays(self, small_stream):
        pipeline = AggressionDetectionPipeline(
            PipelineConfig(n_classes=2, adaptive_bow=False)
        )
        result = pipeline.process_stream(small_stream)
        assert result.bow_size == 347
        assert result.bow_size_history == []

    def test_normalization_critical_for_slr(self, medium_stream):
        on = run_pipeline(
            medium_stream,
            PipelineConfig(n_classes=2, model="slr"),
        )
        off = run_pipeline(
            medium_stream,
            PipelineConfig(n_classes=2, model="slr", normalization="none"),
        )
        # The Fig. 8 effect: normalization dramatically helps SLR.
        assert on.metrics["f1"] > off.metrics["f1"] + 0.10

    def test_all_models_run(self, small_stream):
        for model in ("ht", "arf", "slr", "gnb", "majority"):
            result = run_pipeline(
                small_stream[:600], PipelineConfig(n_classes=2, model=model)
            )
            assert result.n_processed == 600

    def test_history_curve(self, small_stream):
        result = run_pipeline(
            small_stream, PipelineConfig(n_classes=2, record_every=200)
        )
        curve = result.curve("f1")
        assert len(curve) >= 9
        assert curve[0][0] == 200


class TestDeterminism:
    def test_same_config_same_result(self, small_stream):
        a = run_pipeline(small_stream, PipelineConfig(n_classes=2, seed=5))
        b = run_pipeline(small_stream, PipelineConfig(n_classes=2, seed=5))
        assert a.metrics == b.metrics
