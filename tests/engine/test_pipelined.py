"""Pipelined execution parity: double-buffering is invisible in results.

``MicroBatchEngine(pipelined=True)`` overlaps the driver's merge of
batch *k* with the workers' execution of batch *k+1*. The contract
under test: pipelining is a *throughput* knob and never a *results*
knob — the merged model digest, cumulative metrics, and alert stream
are bit-identical to the synchronous path, across every fault domain
(retry, speculation/straggler healing, deadline quarantine, elastic
resize) and through checkpoint/resume (the in-flight batch is drained
exactly once, never lost, never double-merged).
"""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.replay import model_state_digest, run_chaos_scenario
from repro.engine.runners import SerialRunner, live_segment_names
from repro.reliability.faults import FaultInjectingRunner, FaultInjector
from repro.reliability.supervisor import RetryPolicy, StreamSupervisor


def _engine(pipelined, runner=None, workers=None, **kwargs):
    return MicroBatchEngine(
        PipelineConfig(n_classes=2),
        n_partitions=3,
        batch_size=400,
        runner=runner,
        n_workers=workers,
        pipelined=pipelined,
        **kwargs,
    )


def _digest_and_metrics(engine, tweets):
    with engine:
        result = engine.run(tweets)
        return model_state_digest(engine.model), result.metrics


class TestPipelinedParity:
    def test_pipelined_serial_matches_sync(self, small_stream):
        tweets = small_stream[:1600]
        sync_digest, sync_metrics = _digest_and_metrics(
            _engine(False), tweets
        )
        pipe_digest, pipe_metrics = _digest_and_metrics(
            _engine(True), tweets
        )
        assert pipe_digest == sync_digest
        assert pipe_metrics == pytest.approx(sync_metrics)

    def test_pipelined_processes_matches_sync_serial(self, small_stream):
        tweets = small_stream[:1600]
        sync_digest, sync_metrics = _digest_and_metrics(
            _engine(False), tweets
        )
        pipe_digest, pipe_metrics = _digest_and_metrics(
            _engine(True, runner="processes", workers=2), tweets
        )
        assert pipe_digest == sync_digest
        assert pipe_metrics == pytest.approx(sync_metrics)

    def test_pipelined_retry_matches_sync(self, small_stream):
        """Same injected transient fault, same healed state."""
        tweets = small_stream[:1200]

        def run(pipelined):
            runner = FaultInjectingRunner(
                SerialRunner(), FaultInjector(schedule={1: [0]})
            )
            return _digest_and_metrics(
                _engine(
                    pipelined,
                    runner=runner,
                    retry_policy=RetryPolicy(max_retries=2, seed=5),
                ),
                tweets,
            )

        sync_digest, sync_metrics = run(False)
        pipe_digest, pipe_metrics = run(True)
        assert pipe_digest == sync_digest
        assert pipe_metrics == pytest.approx(sync_metrics)

    def test_pipelined_elastic_resize_matches_sync(self, small_stream):
        """A partition-count change between batches lands on the same
        batch in both modes (the next prepared batch)."""
        chunks = [small_stream[i : i + 400] for i in range(0, 1600, 400)]

        def run(pipelined):
            with _engine(pipelined) as engine:
                for i, chunk in enumerate(chunks):
                    if pipelined:
                        engine.submit_batch(chunk)
                    else:
                        engine.process_batch(chunk)
                    if i == 1:
                        engine.n_partitions = 5
                if pipelined:
                    engine.drain()
                assert engine.n_partitions == 5
                return model_state_digest(engine.model)

        assert run(True) == run(False)


@pytest.mark.chaos
class TestPipelinedChaosParity:
    def test_straggler_speculation_heals_bit_exact(self, small_stream):
        tweets = small_stream[:1200]
        baseline = run_chaos_scenario(tweets, every_n_calls=0)
        report = run_chaos_scenario(
            tweets,
            fault_kind="slow_partition",
            every_n_calls=3,
            partition_deadline_s=8.0,
            speculate=0.05,
            slow_s=1.0,
            pipelined=True,
        )
        assert report.n_injected >= 1
        assert report.model_digest == baseline.model_digest
        assert report.n_batches == baseline.n_batches
        assert report.n_quarantined == 0

    def test_hang_quarantine_path_heals_bit_exact(self, small_stream):
        tweets = small_stream[:1200]
        baseline = run_chaos_scenario(tweets, every_n_calls=0)
        report = run_chaos_scenario(
            tweets,
            fault_kind="worker_hang",
            every_n_calls=3,
            partition_deadline_s=1.0,
            hang_s=8.0,
            pipelined=True,
        )
        assert report.n_injected >= 1
        assert report.n_partition_timeouts >= 1
        assert report.model_digest == baseline.model_digest
        assert report.n_quarantined == 0


class TestPipelinedLifecycle:
    def test_submit_returns_previous_batch_result(self, small_stream):
        with _engine(True) as engine:
            first = engine.submit_batch(small_stream[:400])
            assert first is None
            second = engine.submit_batch(small_stream[400:800])
            assert second is not None and second.n_processed == 400
            last = engine.drain()
            assert last is not None and last.n_processed == 400
            assert engine.drain() is None

    def test_close_aborts_inflight_without_leaks(self, small_stream):
        stale = set(live_segment_names())
        engine = _engine(True, runner="processes", workers=2)
        engine.submit_batch(small_stream[:400])
        engine.close()
        assert set(live_segment_names()) - stale == set()

    def test_no_leaked_segments_after_pipelined_run(self, small_stream):
        stale = set(live_segment_names())
        with _engine(True, runner="processes", workers=2) as engine:
            engine.run(small_stream[:1200])
        assert set(live_segment_names()) - stale == set()

    def test_sync_process_batch_drains_pending_pipeline(self, small_stream):
        """Mixing modes never interleaves: process_batch drains first."""
        with _engine(True) as engine:
            engine.submit_batch(small_stream[:400])
            result = engine.process_batch(small_stream[400:800])
            assert result.n_processed == 400
            assert engine.drain() is None
            assert len(engine.batches) == 2


class _Crash(RuntimeError):
    pass


def _crashing(tweets, at):
    for i, tweet in enumerate(tweets):
        if i == at:
            raise _Crash(f"injected crash at tweet {i}")
        yield tweet


class TestPipelinedCheckpointResume:
    def test_mid_pipeline_crash_resumes_bit_exact(
        self, tmp_path, small_stream
    ):
        """The checkpoint drains the in-flight batch exactly once: the
        resumed run replays to the same state as an uninterrupted
        synchronous run."""
        tweets = small_stream[:1600]

        baseline_engine = _engine(False)
        baseline = StreamSupervisor(
            baseline_engine,
            checkpoint_dir=tmp_path / "base",
            checkpoint_every=1,
            chunk_size=400,
        ).run(tweets)

        crashed = StreamSupervisor(
            _engine(True),
            checkpoint_dir=tmp_path / "crash",
            checkpoint_every=1,
            chunk_size=400,
        )
        with pytest.raises(_Crash):
            crashed.run(_crashing(tweets, at=900))
        assert crashed.n_checkpoints >= 2
        crashed.engine.close()

        resumed = StreamSupervisor.resume(
            tmp_path / "crash", checkpoint_every=1
        )
        assert resumed.engine.pipelined
        rerun = resumed.run(tweets)
        assert rerun.result.metrics == pytest.approx(baseline.result.metrics)
        assert rerun.health.n_processed == baseline.health.n_processed
        assert model_state_digest(resumed.engine.model) == model_state_digest(
            baseline_engine.model
        )
        resumed.engine.close()
