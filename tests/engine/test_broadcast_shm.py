"""Shared-memory broadcast: segment lifecycle and bounded worker caches.

``StateBroadcast`` writes its encoded payload into one
``multiprocessing.shared_memory`` segment at first pickle and ships
only the segment *name* inside the pickle, so N partition tasks x M
workers map the same bytes instead of copying them. These tests pin the
lifecycle contract: segments exist only between first pickle and
``release()``; serial execution never creates any; the worker-side
decode cache stays bounded no matter how many engine lifetimes share a
pool.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.config import PipelineConfig
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine import runners
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.runners import (
    BROADCAST_CACHE_MAX,
    ProcessPoolRunner,
    StateBroadcast,
    broadcast_cache_size,
    live_segment_names,
)


def _shm_names():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-POSIX-shm hosts
        return set()


def _probe_cache_size():
    return runners.broadcast_cache_size()


@pytest.fixture(autouse=True)
def _stale_segments():
    # The live-segment registry is process-global: engines elsewhere in
    # the suite may legitimately defer cleanup to the atexit sweep, so
    # every assertion here is a delta against the registry at test
    # start, never an absolute count.
    yield set(live_segment_names())


def _new_live(stale):
    return set(live_segment_names()) - stale


@pytest.fixture()
def payload():
    return {"weights": [[float(i)] * 40 for i in range(50)], "tag": "state"}


class TestSegmentLifecycle:
    def test_no_segment_before_first_pickle(self, payload, _stale_segments):
        broadcast = StateBroadcast("lazy", 1, payload)
        assert _new_live(_stale_segments) == set()
        broadcast.release()

    def test_pickle_ships_name_not_payload(self, payload, _stale_segments):
        broadcast = StateBroadcast("ship", 1, payload)
        data = pickle.dumps(broadcast)
        try:
            # The payload rides in shared memory; the pickle is a stub.
            assert len(data) < len(pickle.dumps(payload)) / 10
            assert len(_new_live(_stale_segments)) == 1
            clone = pickle.loads(data)
            assert clone.value() == payload
        finally:
            broadcast.release()
            runners.evict_broadcast("ship")

    def test_release_unlinks_and_is_idempotent(
        self, payload, _stale_segments
    ):
        before = _shm_names()
        broadcast = StateBroadcast("unlink", 1, payload)
        pickle.dumps(broadcast)
        assert _shm_names() - before
        broadcast.release()
        broadcast.release()
        assert _new_live(_stale_segments) == set()
        assert _shm_names() - before == set()

    def test_repeated_pickle_reuses_one_segment(
        self, payload, _stale_segments
    ):
        broadcast = StateBroadcast("reuse", 1, payload)
        try:
            blobs = {pickle.dumps(broadcast) for _ in range(5)}
            assert len(blobs) == 1
            assert len(_new_live(_stale_segments)) == 1
        finally:
            broadcast.release()

    def test_inline_fallback_when_disabled(self, payload, _stale_segments):
        broadcast = StateBroadcast(
            "inline", 1, payload, use_shared_memory=False
        )
        clone = pickle.loads(pickle.dumps(broadcast))
        assert _new_live(_stale_segments) == set()
        assert clone.value() == payload
        broadcast.release()

    def test_serial_engine_creates_no_segments(self, _stale_segments):
        tweets = AbusiveDatasetGenerator(n_tweets=120, seed=5).generate_list()
        before = _shm_names()
        with MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=2, batch_size=60
        ) as engine:
            engine.run(tweets)
            # Serial runner never pickles the broadcast.
            assert _new_live(_stale_segments) == set()
        assert _shm_names() == before


class TestBoundedWorkerCache:
    def test_local_decode_cache_is_lru_bounded(self, payload):
        keys = [f"bounded-{i}" for i in range(BROADCAST_CACHE_MAX * 2)]
        for key in keys:
            broadcast = StateBroadcast(key, 1, payload)
            clone = pickle.loads(pickle.dumps(broadcast))
            assert clone.value() == payload
            broadcast.release()
        assert broadcast_cache_size() <= BROADCAST_CACHE_MAX
        for key in keys:
            runners.evict_broadcast(key)

    def test_cache_bounded_across_engine_lifetimes_on_reused_pool(
        self, _stale_segments
    ):
        tweets = AbusiveDatasetGenerator(n_tweets=80, seed=9).generate_list()
        before = _shm_names()
        with ProcessPoolRunner(n_processes=2) as runner:
            for _ in range(BROADCAST_CACHE_MAX + 2):
                engine = MicroBatchEngine(
                    PipelineConfig(n_classes=2),
                    n_partitions=2,
                    batch_size=80,
                    runner=runner,
                )
                engine.run(tweets)
                engine.close()
                assert _new_live(_stale_segments) == set()
            worker_sizes = runner.run([_probe_cache_size] * 4)
            assert all(s <= BROADCAST_CACHE_MAX for s in worker_sizes)
        assert broadcast_cache_size() <= BROADCAST_CACHE_MAX
        assert _shm_names() - before == set()
