"""Cross-process tracing: worker spans ship back and stitch into one tree.

Partition tasks run in worker processes the driver cannot see into;
the engine closes that gap by capturing per-stage spans worker-side,
shipping them in the partition output, and stitching them under the
driver's own spans into ``engine.last_trace``. These tests pin the
contract end to end: the stitched tree's shape, the serial-runner
coverage invariant (worker span time accounts for nearly all of the
driver's ``partition_execute`` time), real worker pids under the
process runner, broadcast encode/decode accounting, and — the
subtle one — that retry and speculation losers contribute their
telemetry exactly zero times, so per-stage histograms never double
count.
"""

from __future__ import annotations

import os

from repro.core.config import PipelineConfig
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.runners import ProcessPoolRunner
from repro.obs.tracing import WORKER_STAGE_SECONDS
from repro.reliability.faults import FaultInjectingRunner, FaultInjector
from repro.reliability.supervisor import RetryPolicy


def _tweets(n=600, seed=11):
    return AbusiveDatasetGenerator(n_tweets=n, seed=seed).generate_list()


def _span_names(nodes):
    names = []
    for node in nodes:
        names.append(node["name"])
        names.extend(_span_names(node["children"]))
    return names


def _no_sleep_policy():
    return RetryPolicy(
        max_retries=3, base_delay_s=0.0, jitter=0.0, sleep=lambda _s: None
    )


class TestSerialStitching:
    def test_last_trace_holds_driver_and_worker_spans(self):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=4, batch_size=300
        )
        result = engine.run(_tweets())
        trace = engine.last_trace
        assert trace is not None
        assert trace["trace_id"] == "microbatch-batch-1"  # 0-based, last
        driver_names = _span_names(trace["driver"])
        assert "partition_execute" in driver_names
        assert len(trace["partitions"]) == 4
        for node in trace["partitions"]:
            assert node["status"] == "ok"
            assert node["pid"] == os.getpid()  # serial: driver process
            assert node["wall_s"] >= 0.0
            assert node["spans"][0]["name"] == "partition"
            # The worker pipeline stages nest under the root span.
            stages = _span_names(node["spans"])
            assert "decode" in stages
            assert "extract" in stages
        # Aggregated view exists and matches the metric family.
        assert result.worker_stage_seconds
        assert "partition" in result.worker_stage_seconds

    def test_worker_spans_cover_driver_execute_time(self):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=4, batch_size=300
        )
        result = engine.run(_tweets(n=1200, seed=5))
        worker_s = result.worker_stage_seconds["partition"]
        driver_s = result.stage_seconds.partition_execute
        assert driver_s > 0.0
        # Serial: workers run inside the driver span, so coverage is a
        # fraction of 1 — and near 1, or the trace is lying about where
        # the time goes. (The fig16 bench pins the >=0.9 acceptance bar
        # at scale; this keeps a margin for tiny-workload jitter.)
        assert 0.7 <= worker_s / driver_s <= 1.0

    def test_worker_telemetry_off_ships_no_spans(self):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2),
            n_partitions=2,
            batch_size=300,
            worker_telemetry=False,
        )
        result = engine.run(_tweets(n=300))
        assert engine.last_trace is not None
        assert engine.last_trace["partitions"] == []
        assert result.worker_stage_seconds == {}
        # Metrics still ship: telemetry is the spans, not the counters.
        assert engine.metrics.total("tweets_processed_total") == 300
        assert result.n_processed == 300


class TestProcessStitching:
    def test_partition_nodes_carry_real_worker_pids(self):
        with MicroBatchEngine(
            PipelineConfig(n_classes=2),
            n_partitions=2,
            batch_size=400,
            runner="processes",
            n_workers=2,
        ) as engine:
            engine.run(_tweets(n=400))
            trace = engine.last_trace
        assert trace is not None
        assert len(trace["partitions"]) == 2
        for node in trace["partitions"]:
            assert node["pid"] > 0
            assert node["pid"] != os.getpid()
            assert node["spans"][0]["name"] == "partition"


class TestBroadcastAccounting:
    def test_serial_decodes_live_and_never_encodes(self):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=2, batch_size=300
        )
        engine.run(_tweets())
        # 2 batches x 2 partitions, every decode from the live objects.
        assert engine.metrics.total(
            "broadcast_decode_total", source="live"
        ) == 4
        assert engine.metrics.total("broadcast_decode_total") == 4
        # No pickling happens, so neither timing histogram fills.
        assert engine.metrics.histogram("broadcast_decode_seconds").count == 0
        assert engine.metrics.histogram(
            "broadcast_encode_seconds", engine="microbatch"
        ).count == 0

    def test_processes_record_encode_and_decode_timings(self):
        with MicroBatchEngine(
            PipelineConfig(n_classes=2),
            n_partitions=2,
            batch_size=400,
            runner="processes",
            n_workers=2,
        ) as engine:
            engine.run(_tweets(n=400))
            decode_total = engine.metrics.total("broadcast_decode_total")
            live = engine.metrics.total(
                "broadcast_decode_total", source="live"
            )
            encodes = engine.metrics.histogram(
                "broadcast_encode_seconds", engine="microbatch"
            ).count
            decode_s = engine.metrics.histogram(
                "broadcast_decode_seconds"
            ).count
        assert decode_total == 2 and live == 0  # real cross-process decodes
        assert encodes == 1  # one batch -> one pickled payload
        assert decode_s == 2  # each worker timed its decode


class TestLoserTelemetryDiscarded:
    """Retry and speculation produce extra task *attempts*; only the
    winning attempt's telemetry may merge, exactly once."""

    def test_retried_partition_contributes_one_span_set(self):
        tweets = _tweets()
        injector = FaultInjector(schedule={0: (0,)}, kind="error")
        runner = FaultInjectingRunner(
            ProcessPoolRunner(n_processes=2), injector, owns_inner=True
        )
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2),
            n_partitions=2,
            batch_size=len(tweets),
            runner=runner,
            retry_policy=_no_sleep_policy(),
            partition_deadline_s=30.0,
        )
        try:
            result = engine.run(tweets)
        finally:
            engine.close()
            runner.close()
        assert injector.n_injected == 1
        assert result.n_retries == 1
        # The failed attempt shipped nothing; the retry shipped once.
        assert engine.metrics.histogram(
            WORKER_STAGE_SECONDS, engine="microbatch", stage="partition"
        ).count == 2
        assert engine.metrics.total("tweets_processed_total") == len(tweets)
        assert result.n_processed == len(tweets)

    def test_speculation_loser_discarded_exactly_once(self):
        tweets = _tweets()
        # Partition 0 is slowed (but succeeds); with the speculation
        # point (fraction x deadline = 0.6s) well under slow_s, a
        # duplicate attempt launches. Both attempts execute the full
        # task — whichever wins, the loser's telemetry and counters
        # must be dropped with it.
        injector = FaultInjector(
            schedule={0: (0,)}, kind="slow_partition", slow_s=1.5
        )
        runner = FaultInjectingRunner(
            ProcessPoolRunner(n_processes=2), injector, owns_inner=True
        )
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2),
            n_partitions=2,
            batch_size=len(tweets),
            runner=runner,
            retry_policy=_no_sleep_policy(),
            partition_deadline_s=30.0,
            speculate=0.02,
        )
        try:
            result = engine.run(tweets)
        finally:
            engine.close()
            runner.close()
        assert engine.metrics.total("speculative_launches_total") >= 1
        # Exactly one telemetry set per partition, not per attempt.
        assert engine.metrics.histogram(
            WORKER_STAGE_SECONDS, engine="microbatch", stage="partition"
        ).count == 2
        assert engine.metrics.total("tweets_processed_total") == len(tweets)
        assert result.n_processed == len(tweets)
        (node_a, node_b) = engine.last_trace["partitions"]
        assert {node_a["partition"], node_b["partition"]} == {0, 1}
