"""Tests for the calibrated cluster cost model (Figs. 15/16)."""

from __future__ import annotations

import math

import pytest

from repro.engine.cluster import (
    MOA_SPEC,
    PAPER_SPECS,
    SPARK_CLUSTER_SPEC,
    SPARK_LOCAL_SPEC,
    SPARK_SINGLE_SPEC,
    ClusterSpec,
    CostModel,
    SimulatedCluster,
    SimulationResult,
    machines_needed_for_firehose,
    sweep,
)


class TestCostModel:
    def test_calibrated_from_measurement(self):
        model = CostModel.calibrated(measured_throughput=2000.0)
        assert model.tweet_cpu_us == pytest.approx(500.0)

    def test_calibrated_invalid(self):
        with pytest.raises(ValueError):
            CostModel.calibrated(0.0)

    def test_clock_scale(self):
        model = CostModel()
        assert model.clock_scale(3.2) == pytest.approx(1.0)
        assert model.clock_scale(1.6) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            model.clock_scale(0.0)

    def test_overheads_grow_with_nodes(self):
        model = CostModel()
        assert model.batch_overhead_s(3) > model.batch_overhead_s(1)
        assert model.startup_s(3) > model.startup_s(1)


class TestClusterSpec:
    def test_invalid_engine(self):
        with pytest.raises(ValueError):
            ClusterSpec(name="x", engine="storm")

    def test_total_cores(self):
        assert SPARK_CLUSTER_SPEC.total_cores == 24

    def test_invalid_efficiency(self):
        with pytest.raises(ValueError):
            ClusterSpec(name="x", parallel_efficiency=0.0)


class TestPaperCalibration:
    """The headline numbers of §V-E must hold for the default model."""

    def test_moa_constant_1100(self):
        cluster = SimulatedCluster(MOA_SPEC)
        assert cluster.throughput(2_000_000) == pytest.approx(1100, rel=0.02)
        # Constant throughput: barely varies with workload.
        assert cluster.throughput(250_000) == pytest.approx(1100, rel=0.02)

    def test_spark_single_7_to_17_percent_slower_than_moa(self):
        moa = SimulatedCluster(MOA_SPEC).execution_time_s(2_000_000)
        single = SimulatedCluster(SPARK_SINGLE_SPEC).execution_time_s(2_000_000)
        assert 1.07 <= single / moa <= 1.17

    def test_spark_local_about_6k(self):
        throughput = SimulatedCluster(SPARK_LOCAL_SPEC).throughput(2_000_000)
        assert throughput == pytest.approx(6000, rel=0.10)

    def test_spark_cluster_about_14_5k(self):
        throughput = SimulatedCluster(SPARK_CLUSTER_SPEC).throughput(2_000_000)
        assert throughput == pytest.approx(14_500, rel=0.10)

    def test_2m_speedup_ratios(self):
        single = SimulatedCluster(SPARK_SINGLE_SPEC).execution_time_s(2_000_000)
        local = SimulatedCluster(SPARK_LOCAL_SPEC).execution_time_s(2_000_000)
        cluster = SimulatedCluster(SPARK_CLUSTER_SPEC).execution_time_s(2_000_000)
        # Paper: 5.5x and 13.2x less time; cluster 2.5x less than local.
        assert single / local == pytest.approx(5.5, rel=0.25)
        assert single / cluster == pytest.approx(13.2, rel=0.25)
        assert local / cluster == pytest.approx(2.5, rel=0.25)

    def test_throughput_plateaus_after_1m(self):
        cluster = SimulatedCluster(SPARK_CLUSTER_SPEC)
        t1m = cluster.throughput(1_000_000)
        t2m = cluster.throughput(2_000_000)
        t250k = cluster.throughput(250_000)
        assert (t2m - t1m) / t1m < 0.10  # plateau
        assert (t1m - t250k) / t250k > 0.15  # still climbing before 1M

    def test_execution_time_linear_in_workload(self):
        moa = SimulatedCluster(MOA_SPEC)
        t1 = moa.execution_time_s(500_000)
        t2 = moa.execution_time_s(1_000_000)
        assert t2 / t1 == pytest.approx(2.0, rel=0.02)

    def test_firehose_needs_3_machines(self):
        assert machines_needed_for_firehose() == 3


class TestSimulationApi:
    def test_zero_tweets(self):
        assert SimulatedCluster(MOA_SPEC).execution_time_s(0) == 0.0

    def test_unmeasured_throughput_is_nan_not_zero(self):
        # Zero elapsed time means "no measurement", not "zero rate":
        # a 0.0 here would drag averages down silently (PR 4 convention).
        assert math.isnan(SimulatedCluster(MOA_SPEC).throughput(0))
        result = SimulatedCluster(SPARK_LOCAL_SPEC).simulate(0)
        assert math.isnan(result.throughput)
        assert result.execution_time_s == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedCluster(MOA_SPEC).execution_time_s(-1)

    def test_simulate_record(self):
        result = SimulatedCluster(SPARK_LOCAL_SPEC).simulate(25_000)
        assert isinstance(result, SimulationResult)
        assert result.n_batches == 3
        assert result.spec_name == "SparkLocal"

    def test_moa_has_no_batches(self):
        assert SimulatedCluster(MOA_SPEC).simulate(10_000).n_batches == 0

    def test_sweep_grid(self):
        results = sweep(PAPER_SPECS, [100_000, 200_000])
        assert set(results) == {s.name for s in PAPER_SPECS}
        assert all(len(v) == 2 for v in results.values())

    def test_custom_calibration_preserves_shape(self):
        model = CostModel.calibrated(measured_throughput=3000.0)
        local = SimulatedCluster(SPARK_LOCAL_SPEC, model)
        single = SimulatedCluster(SPARK_SINGLE_SPEC, model)
        # Shape: local is still several times faster than single.
        ratio = single.execution_time_s(10 ** 6) / local.execution_time_s(10 ** 6)
        assert ratio > 4.0
