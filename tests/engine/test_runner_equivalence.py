"""Runner equivalence and failure attribution.

The partition tasks are deterministic and the runners preserve input
order, so the serial, thread-pool, and process-pool runners must
produce *identical* cumulative metrics on the same seeded stream — the
execution backend is a pure throughput knob, never a results knob.
"""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.runners import (
    PartitionError,
    ProcessPoolRunner,
    SerialRunner,
    ThreadPoolRunner,
    make_runner,
)


def _run_metrics(small_stream, runner):
    engine = MicroBatchEngine(
        PipelineConfig(n_classes=2),
        n_partitions=3,
        batch_size=500,
        runner=runner,
    )
    result = engine.run(small_stream[:1500])
    return result.metrics


class TestRunnerEquivalence:
    def test_all_runners_identical_metrics(self, small_stream):
        serial = _run_metrics(small_stream, SerialRunner())
        with ThreadPoolRunner(n_threads=3) as threads:
            threaded = _run_metrics(small_stream, threads)
        with ProcessPoolRunner(n_processes=2) as processes:
            multiproc = _run_metrics(small_stream, processes)
        assert threaded == pytest.approx(serial)
        assert multiproc == pytest.approx(serial)

    def test_string_spec_matches_injected_runner(self, small_stream):
        injected = _run_metrics(small_stream, SerialRunner())
        with MicroBatchEngine(
            PipelineConfig(n_classes=2),
            n_partitions=3,
            batch_size=500,
            runner="threads",
        ) as engine:
            spec_based = engine.run(small_stream[:1500]).metrics
        assert spec_based == pytest.approx(injected)


class TestMakeRunner:
    def test_kinds(self):
        assert isinstance(make_runner("serial"), SerialRunner)
        threads = make_runner("threads", n_workers=2)
        assert isinstance(threads, ThreadPoolRunner)
        assert threads.n_threads == 2
        processes = make_runner("processes", n_workers=3)
        assert isinstance(processes, ProcessPoolRunner)
        assert processes.n_processes == 3

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_runner("gpu")


class TestRunnerOwnership:
    def test_engine_closes_owned_pool(self, small_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2),
            n_partitions=2,
            batch_size=500,
            runner="threads",
            n_workers=2,
        )
        engine.run(small_stream[:500])
        assert engine.runner._pool is not None
        engine.close()
        assert engine.runner._pool is None

    def test_engine_leaves_injected_runner_open(self, small_stream):
        with ThreadPoolRunner(n_threads=2) as runner:
            with MicroBatchEngine(
                PipelineConfig(n_classes=2),
                n_partitions=2,
                batch_size=500,
                runner=runner,
            ) as engine:
                engine.run(small_stream[:500])
            # The engine exited; the caller-owned pool must survive.
            assert runner._pool is not None
            assert runner.run([lambda: 1, lambda: 2]) == [1, 2]


class _Boom:
    def __call__(self):
        raise RuntimeError("kaput")


class TestPartitionFailure:
    def test_serial_runner_attributes_partition(self):
        runner = SerialRunner()
        with pytest.raises(PartitionError) as excinfo:
            runner.run([lambda: 1, _Boom(), lambda: 3])
        assert excinfo.value.partition_index == 1
        assert "kaput" in str(excinfo.value)

    def test_process_runner_attributes_partition(self):
        with ProcessPoolRunner(n_processes=2) as runner:
            with pytest.raises(PartitionError) as excinfo:
                runner.run([_ok, _boom, _ok])
        assert excinfo.value.partition_index == 1
        assert "RuntimeError" in excinfo.value.message

    def test_failed_batch_leaves_engine_unmutated(self, small_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=2, batch_size=500
        )
        # A non-Tweet element fails feature extraction inside partition 0.
        poisoned = list(small_stream[:4]) + [object()]
        with pytest.raises(PartitionError) as excinfo:
            engine.process_batch(poisoned)
        assert excinfo.value.partition_index == 0
        assert engine.n_processed == 0
        assert engine.normalizer.observed == 0
        assert engine.model.instances_seen == 0
        assert engine.batches == []
        # The engine stays usable after a failed batch.
        result = engine.process_batch(small_stream[:500])
        assert result.n_processed == 500


def _ok():
    return 1


def _boom():
    raise RuntimeError("kaput")
