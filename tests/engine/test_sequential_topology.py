"""Tests for the sequential engine and the operator topology (Fig. 3)."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.engine.sequential import SequentialEngine
from repro.engine.topology import Operator, Topology


class TestSequentialEngine:
    def test_run_reports_throughput(self, small_stream):
        engine = SequentialEngine(PipelineConfig(n_classes=2))
        result = engine.run(small_stream)
        assert result.pipeline_result.n_processed == len(small_stream)
        assert result.throughput > 0
        assert result.metrics["f1"] > 0.5

    def test_measure_throughput_after_warmup(self, small_stream):
        engine = SequentialEngine(PipelineConfig(n_classes=2))
        throughput = engine.measure_throughput(small_stream, warmup=200)
        assert throughput > 0


class TestOperator:
    def test_round_robin_routing(self):
        op = Operator(name="op", process=lambda r, t: r, parallelism=3)
        tasks = [op.route(i) for i in range(6)]
        assert tasks == [0, 1, 2, 0, 1, 2]

    def test_hash_routing_deterministic(self):
        op = Operator(
            name="op", process=lambda r, t: r, parallelism=4, grouping="hash"
        )
        assert op.route("abc") == op.route("abc")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Operator(name="x", process=lambda r, t: r, parallelism=0)
        with pytest.raises(ValueError):
            Operator(name="x", process=lambda r, t: r, grouping="random")


class TestTopology:
    def _linear(self):
        topo = Topology()
        topo.add_operator(Operator("double", lambda r, t: r * 2, parallelism=2))
        topo.add_operator(
            Operator("positive", lambda r, t: r if r > 0 else None)
        )
        topo.connect("source", "double")
        topo.connect("double", "positive")
        return topo

    def test_records_flow_through(self):
        topo = self._linear()
        seen = []
        topo.add_operator(Operator("sink", lambda r, t: seen.append(r)))
        topo.connect("positive", "sink")
        topo.push_many([1, -2, 3])
        assert seen == [2, 6]

    def test_filter_drops(self):
        topo = self._linear()
        topo.push_many([-1, -2])
        stats = topo.stats()
        assert sum(stats["double"]) == 2
        assert sum(stats["positive"]) == 2  # processed, all dropped

    def test_parallelism_balances_tasks(self):
        topo = self._linear()
        topo.push_many(range(10))
        per_task = topo.stats()["double"]
        assert per_task == [5, 5]

    def test_duplicate_name_rejected(self):
        topo = Topology()
        topo.add_operator(Operator("a", lambda r, t: r))
        with pytest.raises(ValueError):
            topo.add_operator(Operator("a", lambda r, t: r))

    def test_unknown_edge_endpoints(self):
        topo = Topology()
        with pytest.raises(ValueError):
            topo.connect("source", "ghost")

    def test_cycle_rejected(self):
        topo = Topology()
        topo.add_operator(Operator("a", lambda r, t: r))
        topo.add_operator(Operator("b", lambda r, t: r))
        topo.connect("source", "a")
        topo.connect("a", "b")
        with pytest.raises(ValueError):
            topo.connect("b", "a")

    def test_branching(self):
        topo = Topology()
        left, right = [], []
        topo.add_operator(Operator("l", lambda r, t: left.append(r)))
        topo.add_operator(Operator("r", lambda r, t: right.append(r)))
        topo.connect("source", "l")
        topo.connect("source", "r")
        topo.push(7)
        assert left == [7]
        assert right == [7]

    def test_pipeline_shaped_topology(self, small_stream):
        """Build the Fig. 3 DAG over real pipeline stages."""
        from repro.core.features import FeatureExtractor, LabelEncoder

        extractor = FeatureExtractor(encoder=LabelEncoder(2))
        extracted = []
        topo = Topology()
        topo.add_operator(
            Operator("extract", lambda t, task: extractor.extract(t),
                     parallelism=4)
        )
        topo.add_operator(
            Operator("filter", lambda i, task: i if i.is_labeled else None)
        )
        topo.add_operator(
            Operator("collect", lambda i, task: extracted.append(i))
        )
        topo.connect("source", "extract")
        topo.connect("extract", "filter")
        topo.connect("filter", "collect")
        topo.push_many(small_stream[:50])
        assert len(extracted) == 50
