"""Tests for stream replay and latency measurement."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline
from repro.engine.replay import StreamReplayer


def _noop(tweet):
    return None


class TestQueueingModel:
    def test_invalid_rate(self, small_stream):
        replayer = StreamReplayer(_noop, service_time_s=0.001)
        with pytest.raises(ValueError):
            replayer.replay(small_stream[:10], arrival_rate=0.0)

    def test_empty_stream(self):
        replayer = StreamReplayer(_noop, service_time_s=0.001)
        with pytest.raises(ValueError):
            replayer.replay([], arrival_rate=100.0)

    def test_underload_latency_equals_service_time(self, small_stream):
        # Offered 100/s, capacity 1000/s: no queueing, latency = 1ms.
        replayer = StreamReplayer(_noop, service_time_s=0.001)
        report = replayer.replay(small_stream[:200], arrival_rate=100.0)
        assert report.is_real_time
        assert report.mean_latency_s == pytest.approx(0.001)
        assert report.max_queue_depth <= 2

    def test_overload_latency_grows(self, small_stream):
        # Offered 2000/s, capacity 1000/s: the queue diverges.
        replayer = StreamReplayer(_noop, service_time_s=0.001)
        report = replayer.replay(small_stream[:1000], arrival_rate=2000.0)
        assert not report.is_real_time
        assert report.utilization == pytest.approx(2.0)
        # Latency of the last tweets ~ n * (1/1000 - 1/2000).
        assert report.max_latency_s > 0.4
        assert report.p99_latency_s > report.p50_latency_s

    def test_latency_monotone_in_rate(self, small_stream):
        replayer = StreamReplayer(_noop, service_time_s=0.002)
        slow = replayer.replay(small_stream[:300], arrival_rate=100.0)
        fast = replayer.replay(small_stream[:300], arrival_rate=450.0)
        assert fast.p95_latency_s >= slow.p95_latency_s

    def test_find_max_stable_rate(self, small_stream):
        replayer = StreamReplayer(_noop, service_time_s=0.001)
        best = replayer.find_max_stable_rate(
            small_stream[:500],
            rates=[200.0, 500.0, 900.0, 2000.0],
            latency_budget_s=0.05,
        )
        assert best == 900.0

    def test_no_rate_fits(self, small_stream):
        replayer = StreamReplayer(_noop, service_time_s=0.01)
        best = replayer.find_max_stable_rate(
            small_stream[:500], rates=[500.0], latency_budget_s=0.001
        )
        assert best is None


class TestRealPipelineReplay:
    def test_measured_service_rate_positive(self, small_stream):
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        replayer = StreamReplayer(pipeline.process)  # measured timing
        report = replayer.replay(small_stream[:300], arrival_rate=50.0)
        assert report.service_rate > 100  # this pipeline does >100 tweets/s
        assert report.n_tweets == 300
