"""Tests for stream replay and latency measurement."""

from __future__ import annotations

import math

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline
from repro.data.firehose import ArrivalSchedule
from repro.engine.replay import (
    StepClock,
    StreamReplayer,
    replay_closed_loop,
)
from repro.reliability.overload import BoundedIngestQueue, OverloadController


def _noop(tweet):
    return None


class TestQueueingModel:
    def test_invalid_rate(self, small_stream):
        replayer = StreamReplayer(_noop, service_time_s=0.001)
        with pytest.raises(ValueError):
            replayer.replay(small_stream[:10], arrival_rate=0.0)

    def test_empty_stream(self):
        replayer = StreamReplayer(_noop, service_time_s=0.001)
        with pytest.raises(ValueError):
            replayer.replay([], arrival_rate=100.0)

    def test_underload_latency_equals_service_time(self, small_stream):
        # Offered 100/s, capacity 1000/s: no queueing, latency = 1ms.
        replayer = StreamReplayer(_noop, service_time_s=0.001)
        report = replayer.replay(small_stream[:200], arrival_rate=100.0)
        assert report.is_real_time
        assert report.mean_latency_s == pytest.approx(0.001)
        assert report.max_queue_depth <= 2

    def test_overload_latency_grows(self, small_stream):
        # Offered 2000/s, capacity 1000/s: the queue diverges.
        replayer = StreamReplayer(_noop, service_time_s=0.001)
        report = replayer.replay(small_stream[:1000], arrival_rate=2000.0)
        assert not report.is_real_time
        assert report.utilization == pytest.approx(2.0)
        # Latency of the last tweets ~ n * (1/1000 - 1/2000).
        assert report.max_latency_s > 0.4
        assert report.p99_latency_s > report.p50_latency_s

    def test_latency_monotone_in_rate(self, small_stream):
        replayer = StreamReplayer(_noop, service_time_s=0.002)
        slow = replayer.replay(small_stream[:300], arrival_rate=100.0)
        fast = replayer.replay(small_stream[:300], arrival_rate=450.0)
        assert fast.p95_latency_s >= slow.p95_latency_s

    def test_find_max_stable_rate(self, small_stream):
        replayer = StreamReplayer(_noop, service_time_s=0.001)
        best = replayer.find_max_stable_rate(
            small_stream[:500],
            rates=[200.0, 500.0, 900.0, 2000.0],
            latency_budget_s=0.05,
        )
        assert best == 900.0

    def test_no_rate_fits(self, small_stream):
        replayer = StreamReplayer(_noop, service_time_s=0.01)
        best = replayer.find_max_stable_rate(
            small_stream[:500], rates=[500.0], latency_budget_s=0.001
        )
        assert best is None


class TestRealPipelineReplay:
    def test_measured_service_rate_positive(self, small_stream):
        pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        replayer = StreamReplayer(pipeline.process)  # measured timing
        report = replayer.replay(small_stream[:300], arrival_rate=50.0)
        assert report.service_rate > 100  # this pipeline does >100 tweets/s
        assert report.n_tweets == 300


class TestStepClock:
    def test_advances_fixed_step_per_read(self):
        clock = StepClock(step_s=0.5)
        assert clock() == pytest.approx(0.5)
        assert clock() == pytest.approx(1.0)
        assert clock.n_reads == 2

    def test_rejects_nonpositive_step(self):
        with pytest.raises(ValueError):
            StepClock(step_s=0.0)

    def test_measured_service_equals_step(self, small_stream):
        # A (start, stop) pair around each tweet yields exactly step_s.
        replayer = StreamReplayer(_noop, clock=StepClock(step_s=0.002))
        report = replayer.replay(small_stream[:50], arrival_rate=10.0)
        assert report.service_rate == pytest.approx(500.0)


class TestUnmeasuredReports:
    def test_zero_service_time_gives_nan_not_zero(self, small_stream):
        # An un-timed replay must not claim to be real-time (or not):
        # utilization is nan, so is_real_time is False, never a lie.
        replayer = StreamReplayer(_noop, service_time_s=0.0)
        report = replayer.replay(small_stream[:20], arrival_rate=100.0)
        assert math.isnan(report.service_rate)
        assert math.isnan(report.utilization)
        assert not report.is_real_time


class TestDeterministicReplay:
    def test_step_clock_replay_is_reproducible(self, small_stream):
        def run():
            replayer = StreamReplayer(_noop, clock=StepClock(step_s=0.001))
            return replayer.replay(small_stream[:200], arrival_rate=500.0)

        assert run() == run()

    def test_find_max_stable_rate_regression(self, small_stream):
        # step 1ms -> service rate exactly 1000/s on any host: rates
        # below capacity meet a 10ms budget, rates above diverge.
        replayer = StreamReplayer(_noop, clock=StepClock(step_s=0.001))
        best = replayer.find_max_stable_rate(
            small_stream[:400],
            rates=[500.0, 900.0, 990.0, 1100.0],
            latency_budget_s=0.01,
        )
        assert best == 990.0


class TestClosedLoopReplay:
    def _unlabeled(self, n):
        from repro.data.loader import strip_labels
        from repro.data.synthetic import AbusiveDatasetGenerator

        generator = AbusiveDatasetGenerator(n_tweets=n, seed=11)
        return list(strip_labels(generator.generate()))

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            replay_closed_loop([], BoundedIngestQueue(), _noop, batch_size=0)

    def test_overload_sheds_but_stays_bounded_and_accounted(self):
        tweets = self._unlabeled(3000)
        schedule = ArrivalSchedule(rate_hz=2000.0, shape="uniform")
        queue = BoundedIngestQueue(capacity=200)
        report = replay_closed_loop(
            schedule.assign(tweets),
            queue,
            lambda batch: None,
            batch_size=100,
            service_time_s=0.001,  # server capacity 1000/s: 2x overload
        )
        assert report.n_offered == 3000
        assert report.n_offered == report.n_processed + report.n_shed
        assert report.n_shed > 0
        assert report.max_queue_depth <= 200
        assert 0.0 < report.shed_fraction < 1.0
        assert report.mean_rate_hz == pytest.approx(1000.0, rel=0.1)
        assert report.as_dict()["queue_counters"]["n_shed"] == report.n_shed

    def test_controller_degrades_under_burst_and_recovers(self):
        # Mean 1000/s against a 1250/s full-tier server, with 3x bursts:
        # each burst drives the tiers down, each quiet phase restores
        # them — ending back at FULL.
        tweets = self._unlabeled(6000)
        schedule = ArrivalSchedule(
            rate_hz=1000.0,
            shape="bursty",
            burst_factor=3.0,
            period_s=2.0,
            burst_duty=0.3,
            seed=5,
        )
        queue = BoundedIngestQueue(capacity=600)
        controller = OverloadController(
            batch_deadline_s=0.12,
            batch_size=200,
            min_batch_size=100,
            queue=queue,
        )
        report = replay_closed_loop(
            schedule.assign(tweets),
            queue,
            lambda batch: None,
            controller=controller,
            service_time_s={0: 0.0008, 1: 0.0005, 2: 0.0003},
        )
        assert report.n_offered == report.n_processed + report.n_shed
        assert controller.n_degrades > 0
        assert controller.n_recovers > 0
        assert report.max_tier_reached == 2
        assert report.final_tier == 0  # recovered by the end
        assert report.n_deadline_misses > 0
