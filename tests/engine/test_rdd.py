"""Tests for the RDD abstraction and runners."""

from __future__ import annotations

import pytest

from repro.engine.rdd import RDD, parallelize
from repro.engine.runners import SerialRunner, ThreadPoolRunner


class TestParallelize:
    def test_round_robin_partitioning(self):
        rdd = parallelize([1, 2, 3, 4, 5], n_partitions=2)
        assert rdd.partitions == [[1, 3, 5], [2, 4]]

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            parallelize([1], n_partitions=0)

    def test_more_partitions_than_items(self):
        rdd = parallelize([1], n_partitions=4)
        assert rdd.n_partitions == 4
        assert rdd.count() == 1

    def test_empty_rdd_rejected(self):
        with pytest.raises(ValueError):
            RDD([])


class TestTransformations:
    def test_map(self):
        rdd = parallelize(range(10), 3)
        assert sorted(rdd.map(lambda x: x * 2).collect()) == list(range(0, 20, 2))

    def test_filter(self):
        rdd = parallelize(range(10), 3)
        assert sorted(rdd.filter(lambda x: x % 2 == 0).collect()) == [0, 2, 4, 6, 8]

    def test_map_partitions(self):
        rdd = parallelize(range(6), 2)
        sums = rdd.map_partitions(lambda p: [sum(p)]).collect()
        assert sum(sums) == 15

    def test_chained(self):
        rdd = parallelize(range(20), 4)
        result = rdd.map(lambda x: x + 1).filter(lambda x: x > 10).count()
        assert result == 10

    def test_runner_propagates(self):
        runner = SerialRunner()
        rdd = parallelize(range(4), 2, runner=runner)
        assert rdd.map(lambda x: x).runner is runner


class TestActions:
    def test_count(self):
        assert parallelize(range(17), 5).count() == 17

    def test_collect_preserves_partition_order(self):
        rdd = RDD([[1, 2], [3], [4, 5]])
        assert rdd.collect() == [1, 2, 3, 4, 5]

    def test_reduce(self):
        assert parallelize(range(5), 2).reduce(lambda a, b: a + b) == 10

    def test_reduce_empty(self):
        rdd = RDD([[]])
        with pytest.raises(ValueError):
            rdd.reduce(lambda a, b: a + b)

    def test_aggregate_sums_per_partition(self):
        rdd = parallelize(range(10), 3)
        total = rdd.aggregate(
            zero=lambda: 0,
            seq_op=lambda acc, item: acc + item,
            comb_op=lambda a, b: a + b,
        )
        assert total == 45

    def test_aggregate_independent_accumulators(self):
        rdd = parallelize(range(6), 3)
        lists = rdd.aggregate(
            zero=list,
            seq_op=lambda acc, item: acc + [item],
            comb_op=lambda a, b: a + b,
        )
        assert sorted(lists) == list(range(6))


class TestThreadPoolExecution:
    def test_same_results_as_serial(self):
        data = list(range(100))
        serial = parallelize(data, 4, runner=SerialRunner())
        with ThreadPoolRunner(n_threads=4) as runner:
            threaded = parallelize(data, 4, runner=runner)
            assert (
                threaded.map(lambda x: x * x).collect()
                == serial.map(lambda x: x * x).collect()
            )

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ThreadPoolRunner(n_threads=0)
