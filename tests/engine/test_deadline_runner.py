"""Deadline-aware runners: outcome classes, speculation, pool recovery.

``Runner.run_with_deadline`` turns "one bad partition poisons the
batch" into per-partition fault domains: every task gets a
:class:`TaskOutcome` (``ok`` / ``failed`` / ``timed_out`` /
``worker_lost``), stragglers past ``speculate_after`` get a duplicate
attempt (first finisher wins), and a dead worker breaks only the
*pool* — completed siblings keep their results and only the unresolved
partitions are re-run against a rebuilt pool. These tests pin that
contract on all three runner kinds, plus the shared-memory hygiene
guarantee: a worker killed mid-batch never strands a broadcast
segment.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.config import PipelineConfig
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.runners import (
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_TIMED_OUT,
    OUTCOME_WORKER_LOST,
    PartitionError,
    ProcessPoolRunner,
    SerialRunner,
    ThreadPoolRunner,
    TransientWorkerError,
    live_segment_names,
)
from repro.reliability.faults import FaultInjectingRunner, FaultInjector
from repro.reliability.supervisor import RetryPolicy


def _shm_names():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-POSIX-shm hosts
        return set()


@pytest.fixture(autouse=True)
def _stale_segments():
    # Delta-assert against the process-global segment registry (other
    # suites may legitimately defer cleanup to the atexit sweep).
    yield set(live_segment_names())


def _new_live(stale):
    return set(live_segment_names()) - stale


class _Return:
    """Picklable task returning a constant."""

    def __init__(self, value):
        self.value = value

    def __call__(self):
        return self.value


class _Sleep:
    """Picklable task that sleeps, then returns."""

    def __init__(self, seconds, value):
        self.seconds = seconds
        self.value = value

    def __call__(self):
        time.sleep(self.seconds)
        return self.value


class _Fail:
    """Picklable task raising a transient or fatal error."""

    def __init__(self, transient=True):
        self.transient = transient

    def __call__(self):
        if self.transient:
            raise TransientWorkerError("injected transient")
        raise ValueError("injected fatal")


class _Kill:
    """Picklable task that kills its worker process, every time."""

    def __call__(self):
        os._exit(17)


class _KillOnce:
    """Kills the worker on the first execution only (marker file)."""

    def __init__(self, marker):
        self.marker = marker

    def __call__(self):
        if not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            os._exit(17)
        return "revived"


class _SlowOnce:
    """Slow on the first execution only — the speculation-win shape.

    The original attempt drops the marker and grinds; a speculative
    duplicate sees the marker and returns immediately, winning the
    race.
    """

    def __init__(self, marker, slow_s, value):
        self.marker = marker
        self.slow_s = slow_s
        self.value = value

    def __call__(self):
        if not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            time.sleep(self.slow_s)
        return self.value


class TestSerialOutcomes:
    def test_all_ok_keeps_order_and_results(self):
        report = SerialRunner().run_with_deadline(
            [_Return(3), _Return(1), _Return(2)]
        )
        assert report.ok
        assert [o.status for o in report.outcomes] == [OUTCOME_OK] * 3
        assert [o.partition_index for o in report.outcomes] == [0, 1, 2]
        assert report.results() == [3, 1, 2]
        assert report.n_speculative_launched == 0
        assert report.n_pool_rebuilds == 0

    def test_failure_is_isolated_and_classified(self):
        report = SerialRunner().run_with_deadline(
            [_Return("a"), _Fail(transient=True), _Fail(transient=False)]
        )
        assert not report.ok
        ok, transient, fatal = report.outcomes
        assert ok.ok and ok.result == "a"
        assert transient.status == OUTCOME_FAILED and transient.retryable
        assert fatal.status == OUTCOME_FAILED and not fatal.retryable
        assert isinstance(transient.error, PartitionError)
        assert transient.error.partition_index == 1
        with pytest.raises(PartitionError):
            report.results()

    def test_rejects_bad_deadline_arguments(self):
        runner = SerialRunner()
        with pytest.raises(ValueError):
            runner.run_with_deadline([_Return(1)], deadline_s=0.0)
        with pytest.raises(ValueError):
            runner.run_with_deadline([_Return(1)], speculate_after=0.5)
        with pytest.raises(ValueError):
            runner.run_with_deadline(
                [_Return(1)], deadline_s=1.0, speculate_after=1.5
            )


class TestThreadDeadline:
    def test_timeout_classifies_straggler_and_keeps_siblings(self):
        with ThreadPoolRunner(n_threads=2) as runner:
            report = runner.run_with_deadline(
                [_Return("fast"), _Sleep(0.6, "slow")], deadline_s=0.15
            )
            fast, slow = report.outcomes
            assert fast.ok and fast.result == "fast"
            assert slow.status == OUTCOME_TIMED_OUT
            assert slow.retryable
            assert slow.error is not None and slow.error.transient
            assert "deadline" in slow.error.message

    def test_no_deadline_behaves_like_run(self):
        with ThreadPoolRunner(n_threads=2) as runner:
            report = runner.run_with_deadline([_Return(1), _Return(2)])
            assert report.ok and report.results() == [1, 2]


class TestProcessDeadline:
    def test_all_ok_under_generous_deadline(self):
        with ProcessPoolRunner(n_processes=2) as runner:
            report = runner.run_with_deadline(
                [_Return(10), _Return(20), _Return(30)], deadline_s=30.0
            )
            assert report.ok
            assert report.results() == [10, 20, 30]
            assert all(o.duration_s >= 0.0 for o in report.outcomes)

    def test_timeout_abandons_hung_worker_and_counts_rebuild(self):
        with ProcessPoolRunner(n_processes=2) as runner:
            report = runner.run_with_deadline(
                [_Return("fast"), _Sleep(10.0, "slow")], deadline_s=0.4
            )
            fast, slow = report.outcomes
            assert fast.ok
            assert slow.status == OUTCOME_TIMED_OUT and slow.retryable
            # The straggler's worker was still grinding: the pool was
            # abandoned (workers terminated) rather than handed over
            # busy, and that counts as a rebuild.
            assert report.n_pool_rebuilds == 1
            assert runner.n_pool_rebuilds == 1
            # The next run builds a fresh pool transparently.
            assert runner.run([_Return(1)]) == [1]

    def test_worker_kill_rebuilds_pool_and_reruns_partition(self, tmp_path):
        marker = str(tmp_path / "killed-once")
        with ProcessPoolRunner(n_processes=2) as runner:
            report = runner.run_with_deadline(
                [_KillOnce(marker), _Return("ok")], deadline_s=30.0
            )
            assert report.ok
            assert report.results() == ["revived", "ok"]
            assert report.n_pool_rebuilds >= 1
            assert runner.n_pool_rebuilds >= 1

    def test_rebuild_budget_exhaustion_reports_worker_lost(self):
        with ProcessPoolRunner(
            n_processes=2, max_rebuilds_per_run=0
        ) as runner:
            report = runner.run_with_deadline([_Kill()], deadline_s=30.0)
            (outcome,) = report.outcomes
            assert outcome.status == OUTCOME_WORKER_LOST
            assert outcome.retryable
            assert outcome.error is not None and outcome.error.transient
            assert "budget" in outcome.error.message
            assert report.n_pool_rebuilds == 0

    def test_speculative_duplicate_wins_for_straggler(self, tmp_path):
        marker = str(tmp_path / "slow-once")
        with ProcessPoolRunner(n_processes=2) as runner:
            report = runner.run_with_deadline(
                [_SlowOnce(marker, 1.2, "spec"), _Return("fast")],
                deadline_s=1.0,
                speculate_after=0.1,
            )
            assert report.ok
            assert report.results() == ["spec", "fast"]
            assert report.n_speculative_launched >= 1
            assert report.n_speculative_wins >= 1
            assert report.outcomes[0].speculative

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolRunner(evict_timeout_s=0.0)
        with pytest.raises(ValueError):
            ProcessPoolRunner(max_rebuilds_per_run=-1)

    def test_evict_timeout_swallows_busy_workers(self):
        # Satellite fix: a busy (or hung) worker must not abort — or
        # indefinitely block — broadcast eviction on the rest of the
        # pool. Both workers are occupied, the eviction tasks queue
        # behind them, and the per-worker timeout bounds the wait.
        with ProcessPoolRunner(n_processes=2, evict_timeout_s=0.05) as runner:
            pool = runner._ensure_pool()
            blockers = [pool.submit(time.sleep, 0.5) for _ in range(2)]
            started = time.perf_counter()
            runner.evict_broadcast("some-key")  # must not raise
            assert time.perf_counter() - started < 0.45
            for blocker in blockers:
                blocker.result(timeout=5.0)


class TestShmHygieneOnWorkerLoss:
    def test_worker_kill_mid_batch_strands_no_segments(
        self, tmp_path, _stale_segments
    ):
        # A worker killed while holding (a view of) the broadcast must
        # not strand the segment: segments are driver-owned, survive
        # the pool rebuild by construction (workers re-attach the same
        # state), and drain to zero at engine close.
        tweets = AbusiveDatasetGenerator(n_tweets=200, seed=21).generate_list()
        before = _shm_names()
        injector = FaultInjector(
            schedule={0: (0,)}, kind="worker_kill", transient=True
        )
        base = ProcessPoolRunner(n_processes=2, max_rebuilds_per_run=1)
        runner = FaultInjectingRunner(base, injector, owns_inner=True)
        policy = RetryPolicy(
            max_retries=3, base_delay_s=0.0, jitter=0.0,
            sleep=lambda _s: None,
        )
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2),
            n_partitions=2,
            batch_size=200,
            runner=runner,
            retry_policy=policy,
            partition_deadline_s=30.0,
        )
        try:
            result = engine.run(tweets)
        finally:
            engine.close()
            runner.close()
        assert result.n_processed == 200
        assert injector.n_injected >= 1
        assert engine.metrics.total("pool_rebuilds_total") >= 1
        assert _new_live(_stale_segments) == set()
        assert _shm_names() - before == set()
