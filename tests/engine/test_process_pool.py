"""Real multi-process execution of the micro-batch engine.

The ProcessPoolRunner is the closest local analog to Spark executors:
partition tasks (with their model copies and feature extractors) are
pickled to worker processes and results shipped back. These tests prove
that the whole partition task graph is picklable and that multi-process
results match serial execution.
"""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.rdd import parallelize
from repro.engine.runners import ProcessPoolRunner


class TestProcessPoolRunner:
    def test_invalid_count(self):
        with pytest.raises(ValueError):
            ProcessPoolRunner(n_processes=0)

    def test_rdd_map_across_processes(self):
        with ProcessPoolRunner(n_processes=2) as runner:
            rdd = parallelize(list(range(100)), 4, runner=runner)
            assert sorted(rdd.map(_square).collect()) == [
                i * i for i in range(100)
            ]

    def test_microbatch_engine_on_processes(self, small_stream):
        with ProcessPoolRunner(n_processes=2) as runner:
            engine = MicroBatchEngine(
                PipelineConfig(n_classes=2),
                n_partitions=2,
                batch_size=500,
                runner=runner,
            )
            result = engine.run(small_stream[:1500])
        assert result.n_processed == 1500
        assert result.metrics["f1"] > 0.5

    def test_process_results_match_serial(self, small_stream):
        def run(runner=None):
            engine = MicroBatchEngine(
                PipelineConfig(n_classes=2),
                n_partitions=2,
                batch_size=500,
                runner=runner,
            )
            return engine.run(small_stream[:1500]).metrics["f1"]

        serial_f1 = run()
        with ProcessPoolRunner(n_processes=2) as runner:
            process_f1 = run(runner)
        # Same partitioning, same deterministic tasks: identical output.
        assert process_f1 == pytest.approx(serial_f1)


def _square(x: int) -> int:
    return x * x
