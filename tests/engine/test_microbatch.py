"""Tests for the micro-batch engine (Fig. 2 dataflow)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline
from repro.data.loader import strip_labels
from repro.engine.microbatch import (
    MicroBatchEngine,
    StageTimings,
    _PartitionOutput,
)
from repro.engine.runners import ThreadPoolRunner


class TestExecution:
    def test_processes_whole_stream(self, small_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=4, batch_size=500
        )
        result = engine.run(small_stream)
        assert result.n_processed == len(small_stream)
        assert result.n_labeled == len(small_stream)
        assert len(result.batches) == 4

    def test_partial_final_batch(self, small_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=2, batch_size=1500
        )
        result = engine.run(small_stream[:1600])
        assert len(result.batches) == 2
        assert result.batches[-1].n_processed == 100

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MicroBatchEngine(n_partitions=0)
        with pytest.raises(ValueError):
            MicroBatchEngine(batch_size=0)

    def test_metrics_close_to_sequential(self, medium_stream):
        """Micro-batch training must track the per-record pipeline.

        The global model only refreshes at batch boundaries, so a small
        gap is expected — but it should stay within a few F1 points.
        """
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=4, batch_size=500
        )
        batch_f1 = engine.run(medium_stream).metrics["f1"]
        sequential = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        seq_f1 = sequential.process_stream(medium_stream).metrics["f1"]
        assert batch_f1 > seq_f1 - 0.06

    def test_partition_count_does_not_change_results_much(self, medium_stream):
        def run(n_partitions):
            engine = MicroBatchEngine(
                PipelineConfig(n_classes=2),
                n_partitions=n_partitions,
                batch_size=1000,
            )
            return engine.run(medium_stream[:4000]).metrics["f1"]

        assert abs(run(1) - run(8)) < 0.08

    def test_throughput_positive(self, small_stream):
        engine = MicroBatchEngine(PipelineConfig(n_classes=2), batch_size=1000)
        result = engine.run(small_stream)
        assert result.throughput > 0

    def test_unlabeled_alerting_and_sampling(self, small_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=2, batch_size=500
        )
        engine.run(small_stream)
        engine.run(list(strip_labels(small_stream[:500])))
        assert engine.n_unlabeled == 500
        assert engine.alert_manager.n_alerts > 0
        assert len(engine.sampler.sample()) > 0


class TestPartitionLocalStatistics:
    """Op #1/#6: stats are computed partition-side and merged, never
    shipped as raw vectors."""

    def test_partition_output_carries_no_raw_vectors(self):
        fields = {f.name for f in dataclasses.fields(_PartitionOutput)}
        assert "raw_vectors" not in fields
        assert "local_normalizer" in fields

    def test_global_normalizer_sees_every_tweet(self, small_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=4, batch_size=500
        )
        engine.run(small_stream)
        assert engine.normalizer.observed == len(small_stream)

    def test_broadcast_normalizer_not_mutated_by_partitions(
        self, small_stream
    ):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=4, batch_size=500
        )
        engine.process_batch(small_stream[:500])
        before = engine.normalizer.observed
        # Partitions deep-copy the broadcast statistics; only the
        # driver-side merge may advance the global normalizer.
        tasks_seen = engine.normalizer
        engine.process_batch(small_stream[500:1000])
        assert engine.normalizer is tasks_seen
        assert engine.normalizer.observed == before + 500

    def test_first_batch_normalization_is_self_inclusive(self, small_stream):
        """Batch 1 must not normalize every feature to 0.0 (stale-stats
        bug). An unobserved MinMax transform maps everything to 0.0, so
        if partitions transformed with only the broadcast (empty)
        statistics the whole first batch would collapse; with
        partition-local observe the batch's own statistics are in
        effect from the first tweet."""
        config = PipelineConfig(n_classes=2, normalization="minmax")
        engine = MicroBatchEngine(config, n_partitions=1, batch_size=500)
        # Unlabeled tweets reach the driver-side sampler with their
        # normalized features attached — inspect those.
        engine.process_batch(list(strip_labels(small_stream[:500])))
        sampled = engine.sampler.sample()
        assert sampled
        nonzero = sum(
            1 for item in sampled if any(v != 0.0 for v in item.instance.x)
        )
        assert nonzero > 0.9 * len(sampled)

    def test_matches_sequential_pipeline_closely(self, medium_stream):
        """Regression pin for the engine-divergence bug: with one
        partition and small batches the only remaining difference from
        the sequential pipeline is model staleness at batch boundaries,
        so the metrics must agree tightly."""
        stream = medium_stream[:4000]
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=1, batch_size=250
        )
        batch_metrics = engine.run(stream).metrics
        sequential = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        seq_metrics = sequential.process_stream(stream).metrics
        assert batch_metrics["f1"] == pytest.approx(
            seq_metrics["f1"], abs=0.03
        )
        assert batch_metrics["accuracy"] == pytest.approx(
            seq_metrics["accuracy"], abs=0.03
        )


class TestStageTimings:
    def test_per_batch_and_per_run_timings(self, small_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=4, batch_size=500
        )
        result = engine.run(small_stream)
        assert len(result.batches) == 4
        for batch in result.batches:
            stages = batch.stage_seconds
            assert stages.partition_execute > 0
            assert all(v >= 0 for v in stages.as_dict().values())
            assert stages.total <= batch.elapsed_seconds + 1e-6
        totals = result.stage_seconds
        assert totals.partition_execute == pytest.approx(
            sum(b.stage_seconds.partition_execute for b in result.batches)
        )
        assert set(totals.as_dict()) == {
            "partition_execute",
            "model_merge",
            "bow_absorb",
            "normalizer_merge",
            "drain",
        }

    def test_driver_side_work_is_small(self, small_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=4, batch_size=1000
        )
        result = engine.run(small_stream)
        stages = result.stage_seconds
        assert stages.driver_seconds < 0.5 * stages.partition_execute

    def test_accumulate(self):
        a = StageTimings(partition_execute=1.0, model_merge=0.5)
        b = StageTimings(partition_execute=2.0, drain=0.25)
        a.accumulate(b)
        assert a.partition_execute == 3.0
        assert a.model_merge == 0.5
        assert a.drain == 0.25
        assert a.total == pytest.approx(3.75)
        assert a.driver_seconds == pytest.approx(0.75)


class TestModelKinds:
    @pytest.mark.parametrize("model", ["ht", "slr", "gnb", "arf", "knn", "ozabag", "ozaboost"])
    def test_all_mergeable_models(self, small_stream, model):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2, model=model),
            n_partitions=3,
            batch_size=500,
        )
        result = engine.run(small_stream)
        majority = sum(
            1 for t in small_stream if t.label == "normal"
        ) / len(small_stream)
        assert result.metrics["accuracy"] > majority - 0.10


class TestAdaptiveBow:
    def test_bow_grows_through_deltas(self, medium_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2, adaptive_bow=True),
            n_partitions=4,
            batch_size=1000,
        )
        engine.run(medium_stream)
        assert len(engine.bag_of_words) > 347


class TestThreadedExecution:
    def test_thread_runner_same_shape(self, small_stream):
        with ThreadPoolRunner(n_threads=4) as runner:
            engine = MicroBatchEngine(
                PipelineConfig(n_classes=2),
                n_partitions=4,
                batch_size=500,
                runner=runner,
            )
            result = engine.run(small_stream)
        assert result.n_processed == len(small_stream)
        assert 0.0 <= result.metrics["f1"] <= 1.0
