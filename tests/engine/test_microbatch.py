"""Tests for the micro-batch engine (Fig. 2 dataflow)."""

from __future__ import annotations

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline
from repro.data.loader import strip_labels
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.runners import ThreadPoolRunner


class TestExecution:
    def test_processes_whole_stream(self, small_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=4, batch_size=500
        )
        result = engine.run(small_stream)
        assert result.n_processed == len(small_stream)
        assert result.n_labeled == len(small_stream)
        assert len(result.batches) == 4

    def test_partial_final_batch(self, small_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=2, batch_size=1500
        )
        result = engine.run(small_stream[:1600])
        assert len(result.batches) == 2
        assert result.batches[-1].n_processed == 100

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MicroBatchEngine(n_partitions=0)
        with pytest.raises(ValueError):
            MicroBatchEngine(batch_size=0)

    def test_metrics_close_to_sequential(self, medium_stream):
        """Micro-batch training must track the per-record pipeline.

        The global model only refreshes at batch boundaries, so a small
        gap is expected — but it should stay within a few F1 points.
        """
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=4, batch_size=500
        )
        batch_f1 = engine.run(medium_stream).metrics["f1"]
        sequential = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
        seq_f1 = sequential.process_stream(medium_stream).metrics["f1"]
        assert batch_f1 > seq_f1 - 0.06

    def test_partition_count_does_not_change_results_much(self, medium_stream):
        def run(n_partitions):
            engine = MicroBatchEngine(
                PipelineConfig(n_classes=2),
                n_partitions=n_partitions,
                batch_size=1000,
            )
            return engine.run(medium_stream[:4000]).metrics["f1"]

        assert abs(run(1) - run(8)) < 0.08

    def test_throughput_positive(self, small_stream):
        engine = MicroBatchEngine(PipelineConfig(n_classes=2), batch_size=1000)
        result = engine.run(small_stream)
        assert result.throughput > 0

    def test_unlabeled_alerting_and_sampling(self, small_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2), n_partitions=2, batch_size=500
        )
        engine.run(small_stream)
        engine.run(list(strip_labels(small_stream[:500])))
        assert engine.n_unlabeled == 500
        assert engine.alert_manager.n_alerts > 0
        assert len(engine.sampler.sample()) > 0


class TestModelKinds:
    @pytest.mark.parametrize("model", ["ht", "slr", "gnb", "arf", "knn", "ozabag", "ozaboost"])
    def test_all_mergeable_models(self, small_stream, model):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2, model=model),
            n_partitions=3,
            batch_size=500,
        )
        result = engine.run(small_stream)
        majority = sum(
            1 for t in small_stream if t.label == "normal"
        ) / len(small_stream)
        assert result.metrics["accuracy"] > majority - 0.10


class TestAdaptiveBow:
    def test_bow_grows_through_deltas(self, medium_stream):
        engine = MicroBatchEngine(
            PipelineConfig(n_classes=2, adaptive_bow=True),
            n_partitions=4,
            batch_size=1000,
        )
        engine.run(medium_stream)
        assert len(engine.bag_of_words) > 347


class TestThreadedExecution:
    def test_thread_runner_same_shape(self, small_stream):
        with ThreadPoolRunner(n_threads=4) as runner:
            engine = MicroBatchEngine(
                PipelineConfig(n_classes=2),
                n_partitions=4,
                batch_size=500,
                runner=runner,
            )
            result = engine.run(small_stream)
        assert result.n_processed == len(small_stream)
        assert 0.0 <= result.metrics["f1"] <= 1.0
