"""Elastic partition actuator: ladder order, persistence, engine adoption.

The overload controller's third actuator resizes the engine's
partition count: degradation exhausts batch size, then degrade tier,
then halves partitions toward ``min_partitions``; recovery unwinds in
reverse — partitions are restored *first*, then the tier, then the
batch size. Straggler pressure (timed-out / worker-lost partitions)
counts as overload on its own and blocks comfort. The whole state
persists in checkpoint v4 and resumes exactly, including mid-recovery.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.core.features import DegradeTier
from repro.data.firehose import ArrivalSchedule, FirehoseWorkload
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.microbatch import MicroBatchEngine
from repro.obs.metrics import MetricsRegistry
from repro.reliability import StreamSupervisor
from repro.reliability.supervisor import SUPERVISOR_CHECKPOINT_VERSION
from repro.reliability.deadletter import StreamHealth
from repro.reliability.overload import (
    BoundedIngestQueue,
    OverloadController,
)

#: Per-tweet service model by degrade tier (model-mode timed runs).
SERVICE_MODEL = {0: 0.0008, 1: 0.0005, 2: 0.0003}


def _labeled(n, seed=3):
    return AbusiveDatasetGenerator(
        n_tweets=n, seed=seed, n_days=1
    ).generate_list()


class _Crash(Exception):
    """Simulated hard driver death mid-stream."""


def _crashing_arrivals(arrivals, at):
    for index, pair in enumerate(arrivals):
        if index >= at:
            raise _Crash(f"driver died at arrival {index}")
        yield pair


def _elastic(**kwargs):
    kwargs.setdefault("batch_deadline_s", 1.0)
    kwargs.setdefault("batch_size", 8)
    kwargs.setdefault("min_batch_size", 2)
    kwargs.setdefault("degrade_after", 1)
    kwargs.setdefault("recover_after", 1)
    kwargs.setdefault("n_partitions", 8)
    kwargs.setdefault("min_partitions", 2)
    return OverloadController(**kwargs)


class TestActuatorLadder:
    def test_rejects_bad_partition_bounds(self):
        with pytest.raises(ValueError):
            OverloadController(
                batch_deadline_s=1.0, batch_size=8, min_partitions=2
            )
        with pytest.raises(ValueError):
            _elastic(n_partitions=4, min_partitions=8)
        with pytest.raises(ValueError):
            _elastic(n_partitions=4, max_partitions=2)
        with pytest.raises(ValueError):
            _elastic(n_partitions=0, min_partitions=0)

    def test_degrade_exhausts_batch_and_tier_before_partitions(self):
        controller = _elastic()
        ladder = []
        for _ in range(7):
            controller.observe_batch(2.0, queue_fraction=0.0)
            ladder.append(
                (
                    controller.batch_size,
                    int(controller.tier),
                    controller.n_partitions,
                )
            )
        assert ladder == [
            (4, 0, 8),  # batch shrinks first
            (2, 0, 8),
            (2, 1, 8),  # then the feature tier degrades
            (2, 2, 8),
            (2, 2, 4),  # partitions are the last rung
            (2, 2, 2),
            (2, 2, 2),  # floor: holds
        ]
        assert controller.n_partition_resizes == 2
        assert controller.degraded

    def test_recovery_restores_partitions_first(self):
        controller = _elastic()
        for _ in range(6):  # drive to the floor
            controller.observe_batch(2.0, queue_fraction=0.0)
        ladder = []
        for _ in range(8):
            controller.observe_batch(0.1, queue_fraction=0.0)
            ladder.append(
                (
                    controller.batch_size,
                    int(controller.tier),
                    controller.n_partitions,
                )
            )
        assert ladder == [
            (2, 2, 4),  # partitions come back first...
            (2, 2, 8),
            (2, 1, 8),  # ...then the tier...
            (2, 0, 8),
            (3, 0, 8),  # ...then batch size grows toward max
            (4, 0, 8),
            (6, 0, 8),
            (8, 0, 8),
        ]
        assert not controller.degraded
        assert controller.n_partition_resizes == 4

    def test_without_partitions_ladder_is_unchanged(self):
        # n_partitions unset: the controller behaves exactly as before
        # the elastic actuator existed (no partition rung either way).
        controller = OverloadController(
            batch_deadline_s=1.0,
            batch_size=8,
            min_batch_size=2,
            degrade_after=1,
            recover_after=1,
        )
        for _ in range(6):
            controller.observe_batch(2.0, queue_fraction=0.0)
        assert controller.n_partitions is None
        assert controller.tier == DegradeTier.TEXT_ONLY
        controller.observe_batch(0.1, queue_fraction=0.0)
        assert controller.tier == DegradeTier.NO_POS  # tier first, as ever


class TestStragglerPressure:
    def test_stragglers_alone_are_pressure(self):
        controller = _elastic()
        controller.observe_batch(0.1, queue_fraction=0.0, n_stragglers=1)
        assert controller.batch_size == 4  # fast batch, yet degraded
        assert controller.n_deadline_misses == 0
        assert controller.n_stragglers_seen == 1

    def test_stragglers_block_comfort(self):
        controller = _elastic()
        for _ in range(2):
            controller.observe_batch(2.0, queue_fraction=0.0)
        degraded_size = controller.batch_size
        # Fast batches that still lose partitions must never recover.
        for _ in range(5):
            controller.observe_batch(0.1, queue_fraction=0.0, n_stragglers=2)
        assert controller.batch_size <= degraded_size
        assert controller.n_stragglers_seen == 10


class TestSerialization:
    def test_round_trip_preserves_elastic_state(self):
        controller = _elastic()
        for _ in range(5):
            controller.observe_batch(2.0, queue_fraction=0.0)
        controller.observe_batch(0.1, queue_fraction=0.0)  # mid-recovery
        payload = json.loads(json.dumps(controller.to_dict()))
        assert payload["n_partitions"] == controller.n_partitions
        restored = OverloadController.from_dict(payload)
        assert restored.to_dict() == controller.to_dict()
        # Continued observations make identical decisions.
        for seconds, stragglers in ((0.1, 0), (0.1, 1), (2.0, 0), (0.1, 0)):
            controller.observe_batch(
                seconds, queue_fraction=0.0, n_stragglers=stragglers
            )
            restored.observe_batch(
                seconds, queue_fraction=0.0, n_stragglers=stragglers
            )
        assert restored.to_dict() == controller.to_dict()

    def test_v3_payload_without_partition_keys_still_loads(self):
        controller = OverloadController(
            batch_deadline_s=1.0, batch_size=8, min_batch_size=2
        )
        payload = controller.to_dict()
        for key in (
            "n_partitions",
            "min_partitions",
            "max_partitions",
            "n_partition_resizes",
            "n_stragglers_seen",
        ):
            payload.pop(key)
        restored = OverloadController.from_dict(payload)
        assert restored.n_partitions is None
        assert restored.n_partition_resizes == 0
        assert restored.batch_size == controller.batch_size

    def test_publishes_partition_gauge(self):
        registry = MetricsRegistry()
        controller = _elastic(metrics=registry)
        assert registry.gauge_value("controller_n_partitions") == 8
        for _ in range(5):
            controller.observe_batch(2.0, queue_fraction=0.0)
        assert registry.gauge_value("controller_n_partitions") == 4


class TestEngineAdoption:
    def test_engine_adopts_resized_partition_count(self):
        engine = MicroBatchEngine(n_partitions=4, batch_size=8)
        controller = OverloadController(
            batch_deadline_s=1e-9,  # every batch misses
            batch_size=8,
            min_batch_size=2,
            degrade_after=1,
            metrics=engine.metrics,
            n_partitions=4,
            min_partitions=2,
        )
        engine.controller = controller
        tweets = _labeled(48)
        for start in range(0, 48, 8):
            engine.process_batch(tweets[start : start + 8])
        # Ladder: batch 8->4->2, tier 0->1->2, partitions 4->2.
        assert controller.n_partitions == 2
        assert engine.n_partitions == 2
        assert engine.batch_size == 2

    def test_engine_starts_from_controller_partitions(self):
        controller = OverloadController(
            batch_deadline_s=1.0,
            batch_size=8,
            n_partitions=2,
            min_partitions=1,
            max_partitions=8,
        )
        engine = MicroBatchEngine(
            n_partitions=8, batch_size=8, controller=controller
        )
        assert engine.n_partitions == 2


class TestStreamHealthCounters:
    def test_from_registry_reads_partition_counters(self):
        registry = MetricsRegistry()
        registry.counter(
            "partition_timeouts_total", engine="microbatch"
        ).inc(3)
        registry.counter(
            "speculative_wins_total", engine="microbatch"
        ).inc(2)
        health = StreamHealth.from_registry(registry)
        assert health.n_partition_timeouts == 3
        assert health.n_speculative_wins == 2
        as_dict = health.as_dict()
        assert as_dict["n_partition_timeouts"] == 3
        assert as_dict["n_speculative_wins"] == 2


class TestCrashResumeElastic:
    @pytest.mark.chaos
    def test_crash_resume_mid_elastic_recovery_is_exact(self, tmp_path):
        # Mirrors the v3 crash-resume equivalence test, with the
        # elastic actuator armed: the v4 checkpoint must capture the
        # resized partition count mid-episode and the resumed run must
        # match the uncrashed baseline bit-for-bit.
        def build(tmp_dir):
            engine = MicroBatchEngine(n_partitions=4, batch_size=100)
            queue = BoundedIngestQueue(
                capacity=300, metrics=engine.metrics
            )
            controller = OverloadController(
                batch_deadline_s=0.06,
                batch_size=100,
                min_batch_size=25,
                queue=queue,
                metrics=engine.metrics,
                n_partitions=4,
                min_partitions=1,
                max_partitions=4,
            )
            engine.controller = controller
            supervisor = StreamSupervisor(
                engine,
                checkpoint_dir=tmp_dir,
                checkpoint_every=2,
                chunk_size=100,
                ingest_queue=queue,
            )
            return supervisor, engine

        workload = FirehoseWorkload(n_unlabeled=2400, n_labeled=300, seed=17)
        schedule = ArrivalSchedule(
            rate_hz=2000.0,
            shape="bursty",
            burst_factor=3.0,
            period_s=0.5,
            burst_duty=0.2,
            seed=5,
        )
        arrivals = list(
            itertools.islice(workload.timed_stream(schedule), 2400)
        )

        baseline_sup, baseline_engine = build(tmp_path / "base")
        baseline = baseline_sup.run_timed(arrivals, SERVICE_MODEL)

        crashed, _ = build(tmp_path / "crash")
        with pytest.raises(_Crash):
            crashed.run_timed(
                _crashing_arrivals(arrivals, at=1600), SERVICE_MODEL
            )
        assert crashed.n_checkpoints >= 1
        payload = json.loads(crashed.checkpoint_path.read_text())
        assert payload["supervisor_version"] == SUPERVISOR_CHECKPOINT_VERSION
        assert payload["overload"]["controller"]["max_partitions"] == 4

        resumed = StreamSupervisor.resume(
            tmp_path / "crash", checkpoint_every=2
        )
        rerun = resumed.run_timed(arrivals, SERVICE_MODEL)

        assert rerun.result.metrics == baseline.result.metrics
        assert (
            resumed.controller.to_dict() == baseline_sup.controller.to_dict()
        )
        assert (
            resumed.ingest_queue.as_counters()
            == baseline_sup.ingest_queue.as_counters()
        )
        assert resumed.engine.n_partitions == baseline_engine.n_partitions
        assert (
            resumed.engine.alert_manager.alerts
            == baseline_engine.alert_manager.alerts
        )
