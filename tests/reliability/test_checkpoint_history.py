"""Checkpoint history: bounded retention and corrupt-file fallback."""

from __future__ import annotations

import json

import pytest

from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.sequential import SequentialEngine
from repro.reliability.supervisor import (
    CHECKPOINT_HISTORY_PREFIX,
    StreamSupervisor,
)
from repro.streamml.serialize import SerializationError


def _tweets(n=1000, seed=31):
    return AbusiveDatasetGenerator(n_tweets=n, seed=seed).generate_list()


def _history(directory):
    return sorted(
        p.name
        for p in directory.glob(f"{CHECKPOINT_HISTORY_PREFIX}*.json")
    )


class TestRetention:
    def test_history_bounded_to_keep_checkpoints(self, tmp_path):
        supervisor = StreamSupervisor(
            SequentialEngine(),
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            chunk_size=100,
            keep_checkpoints=3,
        )
        supervisor.run(_tweets(1000))
        names = _history(tmp_path)
        assert len(names) == 3
        # The newest chunk stamps survive (chunk 10 twice: periodic
        # write + final write share the stamp, so 8, 9, 10 remain).
        assert names == [
            "checkpoint-00000008.json",
            "checkpoint-00000009.json",
            "checkpoint-00000010.json",
        ]
        assert (tmp_path / "checkpoint.json").exists()

    def test_keep_checkpoints_validation(self):
        with pytest.raises(ValueError, match="keep_checkpoints"):
            StreamSupervisor(
                SequentialEngine(), keep_checkpoints=0
            )


class TestCorruptFallback:
    def _run(self, tmp_path, keep=3):
        supervisor = StreamSupervisor(
            SequentialEngine(),
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            chunk_size=100,
            keep_checkpoints=keep,
        )
        supervisor.run(_tweets(600))
        return supervisor

    def test_truncated_rolling_file_falls_back_to_history(self, tmp_path):
        # Spy on the module logger directly: CLI tests may have set
        # propagate=False on the repro tree, which blinds caplog.
        from unittest import mock

        from repro.reliability import supervisor as supervisor_mod

        self._run(tmp_path)
        rolling = tmp_path / "checkpoint.json"
        rolling.write_text(rolling.read_text()[:200])
        with mock.patch.object(
            supervisor_mod.logger, "warning"
        ) as warning:
            resumed = StreamSupervisor.resume(tmp_path)
        assert resumed._cursor == 600
        assert (
            resumed.metrics.counter("checkpoint_corrupt_total").value
            == 1.0
        )
        assert warning.call_count == 1
        assert "corrupt checkpoint" in warning.call_args[0][0]

    def test_falls_back_over_multiple_corrupt_files(self, tmp_path):
        self._run(tmp_path)
        (tmp_path / "checkpoint.json").write_text("{")
        names = _history(tmp_path)
        (tmp_path / names[-1]).write_text("also broken")
        resumed = StreamSupervisor.resume(tmp_path)
        # Landed on an older-but-valid cut: strictly earlier progress.
        assert 0 < resumed._cursor < 600
        assert (
            resumed.metrics.counter("checkpoint_corrupt_total").value
            == 2.0
        )

    def test_fallback_resume_still_completes_the_stream(self, tmp_path):
        tweets = _tweets(600)
        baseline = StreamSupervisor(
            SequentialEngine(), chunk_size=100
        ).run(tweets)
        self._run(tmp_path)
        (tmp_path / "checkpoint.json").write_bytes(b"\x00" * 64)
        resumed = StreamSupervisor.resume(tmp_path)
        final = resumed.run(tweets)
        assert final.result.metrics == baseline.result.metrics

    def test_all_corrupt_raises_serialization_error(self, tmp_path):
        self._run(tmp_path)
        for path in tmp_path.glob("*.json"):
            path.write_text("garbage")
        with pytest.raises(
            SerializationError, match="no verifiable checkpoint"
        ):
            StreamSupervisor.resume(tmp_path)

    def test_missing_directory_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            StreamSupervisor.resume(tmp_path / "never-written")

    def test_corrupt_event_reaches_telemetry(self, tmp_path):
        events = []

        class Sink:
            def event(self, name, **fields):
                events.append((name, fields))

            def snapshot(self, *args, **kwargs):
                pass

        self._run(tmp_path)
        (tmp_path / "checkpoint.json").write_text("~")
        StreamSupervisor.resume(tmp_path, telemetry=Sink())
        corrupt = [e for e in events if e[0] == "checkpoint_corrupt"]
        assert len(corrupt) == 1
        assert corrupt[0][1]["skipped"] == ["checkpoint.json"]
