"""Deterministic fault injection: corrupting streams and failing runners."""

import math

import pytest

from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.runners import (
    PartitionError,
    SerialRunner,
    TransientWorkerError,
    is_transient_error,
)
from repro.reliability import (
    CORRUPTION_KINDS,
    FaultInjectingRunner,
    FaultInjector,
    corrupt_tweet,
    corrupting_stream,
)


def _tweets(n, seed=11):
    return AbusiveDatasetGenerator(
        n_tweets=n, n_days=1, seed=seed
    ).generate_list()


class TestCorruptTweet:
    def test_none_text(self):
        bad = corrupt_tweet(_tweets(1)[0], "none_text")
        assert bad.text is None

    def test_nan_counts(self):
        bad = corrupt_tweet(_tweets(1)[0], "nan_counts")
        assert math.isnan(bad.user.followers_count)
        assert math.isnan(bad.user.statuses_count)

    def test_absurd_timestamp(self):
        bad = corrupt_tweet(_tweets(1)[0], "absurd_timestamp")
        assert bad.created_at > 1e15

    def test_original_untouched(self):
        tweet = _tweets(1)[0]
        corrupt_tweet(tweet, "nan_counts")
        assert not math.isnan(tweet.user.followers_count)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            corrupt_tweet(_tweets(1)[0], "gamma_rays")


class TestCorruptingStream:
    def test_deterministic_for_seed(self):
        tweets = _tweets(200)
        first = [t.text for t in corrupting_stream(tweets, rate=0.1, seed=7)]
        second = [t.text for t in corrupting_stream(tweets, rate=0.1, seed=7)]
        assert first == second

    def test_rate_zero_is_identity(self):
        tweets = _tweets(50)
        out = list(corrupting_stream(tweets, rate=0.0, seed=7))
        assert out == tweets

    def test_approximate_rate_and_kind_cycling(self):
        tweets = _tweets(2000)
        out = list(corrupting_stream(tweets, rate=0.05, seed=3))
        corrupted = [pair for pair in zip(out, tweets) if pair[0] != pair[1]]
        assert 0.02 * len(tweets) < len(corrupted) < 0.08 * len(tweets)
        # All three corruption kinds appear in a long enough stream.
        assert any(t.text is None for t, _ in corrupted)
        assert any(
            isinstance(t.text, str) and math.isnan(t.user.followers_count)
            for t, _ in corrupted
        )
        assert any(t.created_at > 1e15 for t, _ in corrupted)
        assert set(CORRUPTION_KINDS) == {
            "none_text", "nan_counts", "absurd_timestamp"
        }


class _Task:
    """Picklable no-op partition task."""

    def __init__(self, value):
        self.value = value

    def __call__(self):
        return self.value


class TestFaultInjector:
    def test_schedule_fails_exact_partition_and_call(self):
        injector = FaultInjector(schedule={0: [1], 2: [0]})
        assert injector.should_fail(0, 1)
        assert injector.should_fail(2, 0)
        assert not injector.should_fail(0, 0)
        assert not injector.should_fail(1, 1)

    def test_rate_draws_are_seeded(self):
        a = FaultInjector(rate=0.5, seed=21)
        b = FaultInjector(rate=0.5, seed=21)
        draws_a = [a.should_fail(i, 0) for i in range(50)]
        draws_b = [b.should_fail(i, 0) for i in range(50)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_build_error_transient_flag(self):
        transient = FaultInjector(schedule={0: [0]}, transient=True)
        fatal = FaultInjector(schedule={0: [0]}, transient=False)
        assert isinstance(transient.build_error(0, 0), TransientWorkerError)
        assert not is_transient_error(fatal.build_error(0, 0))


class TestFaultInjectingRunner:
    def test_passes_through_when_no_fault(self):
        runner = FaultInjectingRunner(SerialRunner(), FaultInjector())
        assert runner.run([_Task(1), _Task(2)]) == [1, 2]
        assert runner.n_calls == 1

    def test_injects_on_scheduled_call(self):
        injector = FaultInjector(schedule={1: [0]})  # second run(), part 0
        runner = FaultInjectingRunner(SerialRunner(), injector)
        assert runner.run([_Task(1)]) == [1]
        with pytest.raises(PartitionError) as excinfo:
            runner.run([_Task(1)])
        assert excinfo.value.transient
        assert excinfo.value.partition_index == 0
        # Third call succeeds again: the fault was transient.
        assert runner.run([_Task(1)]) == [1]

    def test_close_propagates_to_inner(self):
        class Closeable(SerialRunner):
            closed = False

            def close(self):
                self.closed = True

        inner = Closeable()
        FaultInjectingRunner(inner, FaultInjector()).close()
        assert inner.closed
