"""Dead-letter queue, circuit breaker, and tweet validation."""

import math

import pytest

from repro.data.synthetic import AbusiveDatasetGenerator
from repro.reliability import (
    CircuitBreaker,
    CircuitOpenError,
    DeadLetterQueue,
    PoisonTweetError,
    StreamHealth,
    corrupt_tweet,
    validate_tweet,
)


def _tweet():
    return AbusiveDatasetGenerator(
        n_tweets=1, n_days=1, seed=9
    ).generate_list()[0]


class TestDeadLetterQueue:
    def test_records_failure_with_context(self):
        queue = DeadLetterQueue()
        try:
            raise ValueError("boom")
        except ValueError as exc:
            queue.add_failure("t1", "extract", exc, batch_index=3)
        (record,) = queue.records
        assert record.tweet_id == "t1"
        assert record.stage == "extract"
        assert "boom" in record.error
        assert "ValueError" in record.traceback
        assert record.batch_index == 3
        assert record.as_dict()["stage"] == "extract"

    def test_bounded_capacity_drops_oldest(self):
        queue = DeadLetterQueue(capacity=2)
        for i in range(5):
            queue.add_failure(f"t{i}", "validate", ValueError(str(i)))
        assert queue.n_total == 5
        assert queue.n_dropped == 3
        assert [r.tweet_id for r in queue.records] == ["t3", "t4"]

    def test_capacity_drops_increment_metric(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        queue = DeadLetterQueue(capacity=2, metrics=registry)
        for i in range(5):
            queue.add_failure(f"t{i}", "validate", ValueError(str(i)))
        assert registry.counter_value("deadletter_dropped_total") == 3
        assert queue.n_dropped == 3

    def test_capacity_drop_warns_exactly_once(self):
        # Spy on the module logger directly: CLI tests may have set
        # propagate=False on the repro tree, which blinds caplog.
        from unittest import mock

        from repro.reliability import deadletter

        queue = DeadLetterQueue(capacity=1)
        with mock.patch.object(deadletter.logger, "warning") as warning:
            for i in range(4):
                queue.add_failure(f"t{i}", "validate", ValueError(str(i)))
        assert warning.call_count == 1
        assert "dead-letter queue full" in warning.call_args[0][0]

    def test_by_stage_histogram(self):
        queue = DeadLetterQueue()
        queue.add_failure("a", "validate", ValueError())
        queue.add_failure("b", "validate", ValueError())
        queue.add_failure("c", "predict", RuntimeError())
        assert queue.by_stage() == {"validate": 2, "predict": 1}


class TestCircuitBreaker:
    def test_stays_closed_below_min_events(self):
        breaker = CircuitBreaker(max_failure_rate=0.01, min_events=100)
        for _ in range(50):
            breaker.record(True)
        assert not breaker.is_open
        breaker.check()  # no raise

    def test_opens_past_rate_threshold(self):
        breaker = CircuitBreaker(max_failure_rate=0.05, min_events=10)
        breaker.record_batch(n_ok=90, n_failed=10)
        assert breaker.failure_rate == pytest.approx(0.10)
        assert breaker.is_open
        with pytest.raises(CircuitOpenError):
            breaker.check()

    def test_tolerates_rate_at_threshold(self):
        breaker = CircuitBreaker(max_failure_rate=0.10, min_events=10)
        breaker.record_batch(n_ok=90, n_failed=10)
        assert not breaker.is_open

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            CircuitBreaker(max_failure_rate=1.5)
        with pytest.raises(ValueError):
            CircuitBreaker(min_events=0)

    def test_total_failure_below_min_events_stays_closed(self):
        # Even a 100% failure rate is not actionable evidence until the
        # min_events window fills.
        breaker = CircuitBreaker(max_failure_rate=0.05, min_events=10)
        breaker.record_batch(n_ok=0, n_failed=9)
        assert breaker.failure_rate == 1.0
        assert not breaker.is_open
        breaker.check()  # no raise
        breaker.record(True)  # 10th event crosses the window
        assert breaker.is_open

    def test_rate_exactly_at_threshold_stays_closed(self):
        # The trip condition is strictly greater-than: a stream running
        # exactly at the configured budget is healthy.
        breaker = CircuitBreaker(max_failure_rate=0.05, min_events=100)
        breaker.record_batch(n_ok=95, n_failed=5)
        assert breaker.failure_rate == pytest.approx(0.05)
        assert not breaker.is_open
        breaker.record(True)  # one more failure tips it over
        assert breaker.is_open

    def test_empty_record_batch_is_noop(self):
        breaker = CircuitBreaker(max_failure_rate=0.0, min_events=1)
        breaker.record_batch(n_ok=0, n_failed=0)
        assert breaker.n_events == 0
        assert breaker.failure_rate == 0.0
        assert not breaker.is_open

    def test_record_batch_matches_single_records(self):
        batched = CircuitBreaker(max_failure_rate=0.1, min_events=5)
        singles = CircuitBreaker(max_failure_rate=0.1, min_events=5)
        batched.record_batch(n_ok=7, n_failed=3)
        for failed in [False] * 7 + [True] * 3:
            singles.record(failed)
        assert (batched.n_ok, batched.n_failed) == (
            singles.n_ok,
            singles.n_failed,
        )
        assert batched.is_open == singles.is_open


class TestValidateTweet:
    def test_accepts_well_formed_tweet(self):
        validate_tweet(_tweet())

    def test_rejects_none_text(self):
        with pytest.raises(PoisonTweetError):
            validate_tweet(corrupt_tweet(_tweet(), "none_text"))

    def test_rejects_nan_counts(self):
        with pytest.raises(PoisonTweetError):
            validate_tweet(corrupt_tweet(_tweet(), "nan_counts"))

    def test_rejects_absurd_timestamp(self):
        with pytest.raises(PoisonTweetError):
            validate_tweet(corrupt_tweet(_tweet(), "absurd_timestamp"))

    def test_error_names_the_defect(self):
        bad = corrupt_tweet(_tweet(), "none_text")
        with pytest.raises(PoisonTweetError, match="text"):
            validate_tweet(bad)


class TestStreamHealth:
    def test_poison_rate(self):
        health = StreamHealth(n_consumed=200, n_processed=190, n_quarantined=10)
        assert health.poison_rate == pytest.approx(0.05)
        # Nothing consumed -> no rate to report (nan, not a clean 0.0).
        assert math.isnan(StreamHealth().poison_rate)

    def test_as_dict_round_trips_counters(self):
        health = StreamHealth(
            n_consumed=10,
            n_processed=9,
            n_quarantined=1,
            n_retries=2,
            n_shed=4,
            n_checkpoints=3,
            last_checkpoint_batch=6,
            breaker_open=False,
            dead_letters_by_stage={"validate": 1},
        )
        payload = health.as_dict()
        assert payload["n_quarantined"] == 1
        assert payload["n_shed"] == 4
        assert payload["dead_letters_by_stage"] == {"validate": 1}
        assert not math.isnan(payload["poison_rate"])
