"""Retry/backoff behaviour of the micro-batch engine."""

import random

import pytest

from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.runners import PartitionError, SerialRunner
from repro.reliability import FaultInjectingRunner, FaultInjector, RetryPolicy


def _tweets(n=150, seed=13):
    return AbusiveDatasetGenerator(n_tweets=n, seed=seed).generate_list()


def _no_sleep_policy(**kwargs):
    kwargs.setdefault("max_retries", 3)
    kwargs.setdefault("base_delay_s", 0.0)
    return RetryPolicy(sleep=lambda _s: None, **kwargs)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.backoff_delay(a, rng) for a in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.2)
        first = [
            policy.backoff_delay(a, random.Random(policy.seed))
            for a in range(3)
        ]
        second = [
            policy.backoff_delay(a, random.Random(policy.seed))
            for a in range(3)
        ]
        assert first == second
        assert all(0.8 <= d <= 1.2 for d in first)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestEngineRetry:
    def test_transient_failure_recovers_and_matches_fault_free_run(self):
        tweets = _tweets()
        clean = MicroBatchEngine(n_partitions=3, batch_size=50)
        clean_result = clean.run(tweets)

        # Partition 1 fails on the first attempt of the first batch and
        # again on the retry; the third attempt succeeds.
        injector = FaultInjector(schedule={0: [1], 1: [1]})
        runner = FaultInjectingRunner(SerialRunner(), injector)
        engine = MicroBatchEngine(
            n_partitions=3,
            batch_size=50,
            runner=runner,
            retry_policy=_no_sleep_policy(),
        )
        result = engine.run(tweets)
        assert engine.n_retries == 2
        assert result.n_retries == 2
        assert injector.n_injected == 2
        # Retried batches leave no trace: metrics identical to fault-free.
        assert result.metrics == clean_result.metrics
        assert result.n_processed == clean_result.n_processed
        assert engine.alert_manager.alerts == clean.alert_manager.alerts

    def test_fatal_failure_is_not_retried(self):
        injector = FaultInjector(schedule={0: [0]}, transient=False)
        runner = FaultInjectingRunner(SerialRunner(), injector)
        engine = MicroBatchEngine(
            n_partitions=2,
            batch_size=50,
            runner=runner,
            retry_policy=_no_sleep_policy(),
        )
        with pytest.raises(PartitionError) as excinfo:
            engine.run(_tweets(60))
        assert not excinfo.value.transient
        assert runner.n_calls == 1  # no second attempt

    def test_retries_exhausted_raises(self):
        injector = FaultInjector(schedule={i: [0] for i in range(10)})
        runner = FaultInjectingRunner(SerialRunner(), injector)
        engine = MicroBatchEngine(
            n_partitions=2,
            batch_size=50,
            runner=runner,
            retry_policy=_no_sleep_policy(max_retries=2),
        )
        with pytest.raises(PartitionError) as excinfo:
            engine.run(_tweets(60))
        assert excinfo.value.transient
        assert runner.n_calls == 3  # initial attempt + 2 retries

    def test_no_policy_means_no_retry(self):
        injector = FaultInjector(schedule={0: [0]})
        runner = FaultInjectingRunner(SerialRunner(), injector)
        engine = MicroBatchEngine(n_partitions=2, batch_size=50, runner=runner)
        with pytest.raises(PartitionError):
            engine.run(_tweets(60))
        assert runner.n_calls == 1

    def test_backoff_sleeps_between_attempts(self):
        slept = []
        policy = RetryPolicy(
            max_retries=3,
            base_delay_s=0.1,
            multiplier=2.0,
            jitter=0.0,
            sleep=slept.append,
        )
        injector = FaultInjector(schedule={0: [0], 1: [0]})
        runner = FaultInjectingRunner(SerialRunner(), injector)
        engine = MicroBatchEngine(
            n_partitions=2, batch_size=50, runner=runner, retry_policy=policy
        )
        engine.run(_tweets(60))
        assert slept == pytest.approx([0.1, 0.2])


class TestEngineLifecycle:
    def test_close_is_idempotent(self):
        engine = MicroBatchEngine(n_partitions=2, batch_size=50)
        engine.run(_tweets(60))
        engine.close()
        engine.close()  # second close must be a no-op, not an error

    def test_run_closes_owned_runner_on_failure(self):
        closes = []

        class TrackingRunner(SerialRunner):
            def close(self):
                closes.append(True)

        engine = MicroBatchEngine(n_partitions=2, batch_size=50)
        # Swap the runner in the engine-owned slot so ownership holds.
        injector = FaultInjector(schedule={0: [0]}, transient=False)
        engine.runner = FaultInjectingRunner(TrackingRunner(), injector)
        assert engine._owns_runner
        with pytest.raises(PartitionError):
            engine.run(_tweets(60))
        assert closes  # the failing run() released the runner

    def test_injected_runner_not_closed_by_engine(self):
        closes = []

        class TrackingRunner(SerialRunner):
            def close(self):
                closes.append(True)

        runner = TrackingRunner()
        engine = MicroBatchEngine(n_partitions=2, batch_size=50, runner=runner)
        engine.run(_tweets(60))
        engine.close()
        assert not closes  # caller owns injected runners
