"""Chaos recovery: seeded worker kills/hangs heal to bit-exact state.

:func:`repro.engine.replay.run_chaos_scenario` drives a micro-batch
run through a deterministic partition-fault storm (every N-th runner
call misbehaves). The self-healing contract under test: partition
deadlines catch hangs, pool rebuilds replace killed workers,
per-partition retries re-run only the affected slices, and — because
engine-level retries advance the injector past the faulty call — the
run completes with *exactly* the model state and metrics a fault-free
run produces (speculation off, retries within budget), with nothing
quarantined and no shared-memory segments leaked.
"""

from __future__ import annotations

import os

import pytest

from repro.engine.replay import run_chaos_scenario
from repro.engine.runners import live_segment_names

pytestmark = pytest.mark.chaos


def _shm_names():
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-POSIX-shm hosts
        return set()


@pytest.fixture(scope="module")
def chaos_tweets(request):
    return request.getfixturevalue("small_stream")[:1500]


@pytest.fixture(scope="module")
def baseline(chaos_tweets):
    """Fault-free run (no injector attached): the equivalence anchor."""
    return run_chaos_scenario(chaos_tweets, every_n_calls=0)


class TestWorkerHang:
    def test_hang_heals_bit_exact_within_wall_time_bound(
        self, chaos_tweets, baseline
    ):
        report = run_chaos_scenario(
            chaos_tweets,
            fault_kind="worker_hang",
            every_n_calls=3,
            partition_deadline_s=1.0,
            hang_s=8.0,
        )
        assert report.n_injected >= 1
        # The hang was caught by the partition deadline, the grinding
        # worker's pool was abandoned (a rebuild), and the partition
        # retried clean — nothing quarantined, nothing lost.
        assert report.n_partition_timeouts >= 1
        assert report.n_pool_rebuilds >= 1
        assert report.n_retries >= 1
        assert report.n_quarantined == 0
        # Bit-exact equivalence with the fault-free run.
        assert report.model_digest == baseline.model_digest
        assert report.final_f1 == baseline.final_f1
        assert report.n_batches == baseline.n_batches
        # Self-healing must be cheap: the faulted run stays within
        # 1.5x the fault-free wall time plus fixed recovery overhead
        # (one deadline wait + pool re-fork).
        assert report.elapsed_s <= 1.5 * baseline.elapsed_s + 3.0

    def test_no_segment_leaks_across_chaos_runs(self, chaos_tweets):
        stale = set(live_segment_names())
        before = _shm_names()
        run_chaos_scenario(
            chaos_tweets[:600],
            fault_kind="worker_hang",
            every_n_calls=2,
            batch_size=300,
            partition_deadline_s=0.8,
            hang_s=8.0,
        )
        assert set(live_segment_names()) - stale == set()
        assert _shm_names() - before == set()


class TestWorkerKill:
    def test_kill_rebuilds_pool_and_heals_bit_exact(
        self, chaos_tweets, baseline
    ):
        report = run_chaos_scenario(
            chaos_tweets,
            fault_kind="worker_kill",
            every_n_calls=3,
            max_rebuilds_per_run=1,
        )
        assert report.n_injected >= 1
        assert report.n_pool_rebuilds >= 1
        assert report.n_retries >= 1
        assert report.n_quarantined == 0
        assert report.model_digest == baseline.model_digest
        assert report.final_f1 == baseline.final_f1

    def test_kill_on_serial_runner_downgrades_to_transient(
        self, chaos_tweets
    ):
        # On the serial runner the injected kill shares the driver's
        # PID, so it downgrades to a retryable error instead of taking
        # the test process down; equivalence still holds.
        tweets = chaos_tweets[:600]
        clean = run_chaos_scenario(
            tweets, every_n_calls=0, runner="serial", batch_size=300
        )
        faulted = run_chaos_scenario(
            tweets,
            fault_kind="worker_kill",
            every_n_calls=2,
            runner="serial",
            batch_size=300,
        )
        assert faulted.n_injected >= 1
        assert faulted.n_retries >= 1
        assert faulted.n_pool_rebuilds == 0
        assert faulted.n_quarantined == 0
        assert faulted.model_digest == clean.model_digest


class TestSlowPartition:
    def test_slow_partition_finishes_within_deadline_unharmed(
        self, chaos_tweets
    ):
        # A straggler that merely runs late (well inside the deadline)
        # needs no recovery at all: no retries, no rebuilds, same state.
        tweets = chaos_tweets[:600]
        clean = run_chaos_scenario(
            tweets, every_n_calls=0, runner="serial", batch_size=300
        )
        faulted = run_chaos_scenario(
            tweets,
            fault_kind="slow_partition",
            every_n_calls=2,
            runner="serial",
            batch_size=300,
            slow_s=0.05,
        )
        assert faulted.n_injected >= 1
        assert faulted.n_retries == 0
        assert faulted.n_partition_timeouts == 0
        assert faulted.n_quarantined == 0
        assert faulted.model_digest == clean.model_digest


class TestScenarioValidation:
    def test_every_n_calls_of_one_is_rejected(self, chaos_tweets):
        with pytest.raises(ValueError):
            run_chaos_scenario(chaos_tweets[:10], every_n_calls=1)
