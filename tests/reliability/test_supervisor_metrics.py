"""Registry-backed supervision: crash-resume metric equivalence.

The observability acceptance bar: a supervised run that crashes and
resumes from its checkpoint must end with the *same* data-flow metrics
as one that never crashed — otherwise dashboards built on the exported
telemetry silently lie after every recovery. Wall-clock families
(``*_seconds`` histograms) legitimately differ between the two runs,
and ``checkpoints_total`` counts only the checkpoints the surviving
process wrote, so both are excluded from the comparison.
"""

from __future__ import annotations

import json

import pytest

from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.sequential import SequentialEngine
from repro.obs.export import TelemetrySink
from repro.reliability import StreamSupervisor


def _tweets(n=600, seed=3):
    return AbusiveDatasetGenerator(n_tweets=n, seed=seed).generate_list()


class _Crash(Exception):
    """Simulated hard driver death mid-stream."""


def _crashing(tweets, at):
    for index, tweet in enumerate(tweets):
        if index >= at:
            raise _Crash(f"driver died at tweet {index}")
        yield tweet


def _deterministic_view(registry):
    """Counters and gauges that must match run-for-run.

    Timing histograms and the checkpoint counter are process-local by
    nature; everything else in the registry is a pure function of the
    input stream and must survive crash-resume bit-exactly.
    """
    snap = registry.snapshot()
    counters = {
        key: value
        for key, value in snap.counters.items()
        if key[0] != "checkpoints_total"
    }
    return counters, dict(snap.gauges)


class TestCrashResumeMetricEquivalence:
    @pytest.mark.parametrize("engine_kind", ["microbatch", "sequential"])
    def test_resumed_registry_matches_uninterrupted(
        self, tmp_path, engine_kind
    ):
        tweets = _tweets()

        def build():
            if engine_kind == "microbatch":
                return MicroBatchEngine(n_partitions=4, batch_size=50)
            return SequentialEngine()

        baseline = StreamSupervisor(
            build(),
            checkpoint_dir=tmp_path / "base",
            checkpoint_every=2,
            chunk_size=50,
        )
        baseline.run(tweets)

        crashed = StreamSupervisor(
            build(),
            checkpoint_dir=tmp_path / "crash",
            checkpoint_every=2,
            chunk_size=50,
        )
        with pytest.raises(_Crash):
            crashed.run(_crashing(tweets, at=330))
        assert crashed.n_checkpoints >= 3

        resumed = StreamSupervisor.resume(
            tmp_path / "crash", checkpoint_every=2
        )
        resumed.run(tweets)

        base_counters, base_gauges = _deterministic_view(baseline.metrics)
        res_counters, res_gauges = _deterministic_view(resumed.metrics)
        assert res_counters == base_counters
        assert res_gauges == base_gauges
        # The interesting families really are in the comparison.
        names = {name for name, _ in base_counters}
        assert "tweets_consumed_total" in names
        assert "tweets_ingested_total" in names
        assert "tweets_processed_total" in names

    def test_health_is_a_registry_view(self, tmp_path):
        supervisor = StreamSupervisor(
            SequentialEngine(),
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
            chunk_size=50,
        )
        run = supervisor.run(_tweets(300))
        health = run.health
        registry = supervisor.metrics
        assert health.n_consumed == registry.total("tweets_consumed_total")
        assert health.n_processed == registry.total("tweets_processed_total")
        assert health.n_checkpoints == supervisor.n_checkpoints > 0


class TestSupervisedTelemetry:
    def test_run_emits_snapshots_and_run_end(self, tmp_path):
        sink_path = tmp_path / "events.jsonl"
        with TelemetrySink(sink_path) as sink:
            supervisor = StreamSupervisor(
                SequentialEngine(),
                chunk_size=50,
                telemetry=sink,
                metrics_every=2,
            )
            supervisor.run(_tweets(300))
        events = [
            json.loads(line) for line in sink_path.read_text().splitlines()
        ]
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "run_end"
        assert kinds.count("snapshot") >= 2
        final = [e for e in events if e["event"] == "snapshot"][-1]
        names = {c["name"] for c in final["metrics"]["counters"]}
        assert "tweets_consumed_total" in names

    def test_checkpoint_event_written_per_checkpoint(self, tmp_path):
        sink_path = tmp_path / "events.jsonl"
        with TelemetrySink(sink_path) as sink:
            supervisor = StreamSupervisor(
                SequentialEngine(),
                checkpoint_dir=tmp_path / "ckpt",
                checkpoint_every=2,
                chunk_size=50,
                telemetry=sink,
            )
            supervisor.run(_tweets(300))
        events = [
            json.loads(line) for line in sink_path.read_text().splitlines()
        ]
        checkpoints = [e for e in events if e["event"] == "checkpoint"]
        assert len(checkpoints) == supervisor.n_checkpoints > 0
