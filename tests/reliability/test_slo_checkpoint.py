"""Checkpoint v5: SLO burn windows and alert state survive a crash.

The supervisor embeds the full :class:`SLOTracker` state in its
checkpoint; a resumed run must continue the same rolling windows and
firing set bit-exactly — not restart the burn math blind — and older
(v4 and earlier) checkpoints without the section must still resume,
just without a tracker.
"""

from __future__ import annotations

import json

import pytest

from repro.core.checkpoint import atomic_write_json
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.microbatch import MicroBatchEngine
from repro.obs.slo import SLO, SLOTracker, default_slos
from repro.reliability.supervisor import StreamSupervisor
from repro.reliability.faults import corrupting_stream


def _tweets(n=600, seed=3):
    return AbusiveDatasetGenerator(n_tweets=n, seed=seed).generate_list()


class _Crash(Exception):
    """Simulated hard driver death mid-stream."""


def _crashing(tweets, at):
    for index, tweet in enumerate(tweets):
        if index >= at:
            raise _Crash(f"driver died at tweet {index}")
        yield tweet


def _engine():
    return MicroBatchEngine(n_partitions=4, batch_size=50)


def _tight_quarantine_slo():
    # Budget far below the injected corruption rate: fires fast and
    # deterministically (windows are counted in chunks, not seconds).
    return SLO(
        name="quarantine_rate",
        kind="ratio",
        budget=0.001,
        bad=[("tweets_quarantined_total", {})],
        total=[("tweets_consumed_total", {})],
    )


class TestCheckpointV5:
    def test_checkpoint_embeds_full_tracker_state(self, tmp_path):
        supervisor = StreamSupervisor(
            _engine(),
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            chunk_size=100,
            slos=SLOTracker(default_slos()),
        )
        supervisor.run(_tweets())
        payload = json.loads((tmp_path / "checkpoint.json").read_text())
        assert payload["supervisor_version"] == 5
        assert payload["slo"] == supervisor.slo_tracker.to_dict()
        # The section is self-describing: definitions ride along, so
        # resume needs no out-of-band SLO list.
        names = {slo["name"] for slo in payload["slo"]["slos"]}
        assert "shed_fraction" in names

    def test_crash_resume_restores_windows_and_firing_bit_exactly(
        self, tmp_path
    ):
        tweets = list(
            corrupting_stream(_tweets(), rate=0.2, seed=7)
        )
        crashed = StreamSupervisor(
            _engine(),
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
            chunk_size=50,
            slos=SLOTracker([_tight_quarantine_slo()]),
        )
        with pytest.raises(_Crash):
            crashed.run(_crashing(tweets, at=330))
        assert crashed.n_checkpoints >= 2
        # The storm was burning budget well past threshold pre-crash.
        assert crashed.slo_tracker.firing() == ["quarantine_rate"]
        payload = json.loads((tmp_path / "checkpoint.json").read_text())

        resumed = StreamSupervisor.resume(tmp_path, checkpoint_every=2)
        assert resumed.slo_tracker is not None
        assert resumed.slo_tracker.to_dict() == payload["slo"]
        assert resumed.slo_tracker.firing() == ["quarantine_rate"]
        fired_before = resumed.slo_tracker.alerts_fired
        (slo_state,) = payload["slo"]["slos"]
        samples_before = len(slo_state["samples"])

        # The resumed run keeps sampling the same windows: the alert
        # stays in its firing state (no duplicate fire event) and the
        # rings keep growing from the restored cut.
        outcome = resumed.run(tweets)
        assert outcome.health.n_processed > 0
        (end_state,) = resumed.slo_tracker.to_dict()["slos"]
        assert len(end_state["samples"]) >= samples_before
        assert resumed.slo_tracker.firing() == ["quarantine_rate"]
        assert resumed.slo_tracker.alerts_fired == fired_before

    def test_v4_checkpoint_without_slo_section_resumes(self, tmp_path):
        tweets = _tweets()
        supervisor = StreamSupervisor(
            _engine(),
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
            chunk_size=50,
        )
        with pytest.raises(_Crash):
            supervisor.run(_crashing(tweets, at=330))
        path = tmp_path / "checkpoint.json"
        payload = json.loads(path.read_text())
        assert "slo" not in payload  # no tracker -> no section
        payload["supervisor_version"] = 4
        atomic_write_json(path, payload)

        resumed = StreamSupervisor.resume(tmp_path, checkpoint_every=2)
        assert resumed.slo_tracker is None
        outcome = resumed.run(tweets)
        assert (
            outcome.health.n_processed
            == StreamSupervisor(_engine(), chunk_size=50)
            .run(tweets)
            .health.n_processed
        )
