"""Overload robustness: bounded ingest, shedding, adaptive degradation."""

import itertools
import json
import math

import pytest

from repro.core.features import DegradeTier
from repro.core.pipeline import AggressionDetectionPipeline
from repro.data.firehose import ArrivalSchedule, FirehoseWorkload
from repro.data.loader import strip_labels
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.sequential import SequentialEngine
from repro.obs.metrics import MetricsRegistry
from repro.reliability import StreamSupervisor
from repro.reliability.supervisor import SUPERVISOR_CHECKPOINT_VERSION
from repro.reliability.overload import (
    SHED_POLICY_REGISTRY,
    BoundedIngestQueue,
    OverloadController,
    register_shed_policy,
)

#: Per-tweet service model by degrade tier: cheaper features run faster.
SERVICE_MODEL = {0: 0.0008, 1: 0.0005, 2: 0.0003}


def _labeled(n, seed=3):
    generator = AbusiveDatasetGenerator(n_tweets=n, seed=seed, n_days=1)
    return generator.generate_list()


def _unlabeled(n, seed=11):
    generator = AbusiveDatasetGenerator(n_tweets=n, seed=seed, n_days=1)
    return list(strip_labels(generator.generate()))


class _Crash(Exception):
    """Simulated hard driver death mid-stream."""


def _crashing_arrivals(arrivals, at):
    for index, pair in enumerate(arrivals):
        if index >= at:
            raise _Crash(f"driver died at arrival {index}")
        yield pair


class TestBoundedIngestQueue:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            BoundedIngestQueue(capacity=0)
        with pytest.raises(ValueError):
            BoundedIngestQueue(policy="no-such-policy")
        with pytest.raises(ValueError):
            BoundedIngestQueue(high_watermark=1.5)
        with pytest.raises(ValueError):
            BoundedIngestQueue(high_watermark=0.5, low_watermark=0.8)
        with pytest.raises(ValueError):
            BoundedIngestQueue(sample_keep=2.0)

    def test_drain_preserves_arrival_order_across_label_classes(self):
        # Labeled and unlabeled live in separate deques internally;
        # the merge by sequence number must restore offer order.
        labeled = _labeled(5)
        unlabeled = _unlabeled(5)
        mixed = [t for pair in zip(labeled, unlabeled) for t in pair]
        queue = BoundedIngestQueue(capacity=20)
        for tweet in mixed:
            assert queue.offer(tweet)
        drained = queue.drain(20)
        assert [t.tweet_id for t in drained] == [t.tweet_id for t in mixed]

    def test_drop_oldest_evicts_oldest_unlabeled(self):
        tweets = _unlabeled(4)
        queue = BoundedIngestQueue(capacity=3, policy="drop-oldest")
        for tweet in tweets[:3]:
            queue.offer(tweet)
        assert queue.offer(tweets[3])  # arrival admitted, oldest shed
        assert queue.n_shed == 1
        assert [t.tweet_id for t in queue.drain(3)] == [
            t.tweet_id for t in tweets[1:]
        ]

    def test_drop_newest_sheds_the_arrival(self):
        tweets = _unlabeled(4)
        queue = BoundedIngestQueue(capacity=3, policy="drop-newest")
        for tweet in tweets[:3]:
            queue.offer(tweet)
        assert not queue.offer(tweets[3])
        assert queue.n_shed == 1
        assert [t.tweet_id for t in queue.drain(3)] == [
            t.tweet_id for t in tweets[:3]
        ]

    def test_sample_policy_is_deterministic(self):
        tweets = _unlabeled(200)

        def run():
            queue = BoundedIngestQueue(
                capacity=20, policy="sample", sample_keep=0.3, seed=29
            )
            for tweet in tweets:
                queue.offer(tweet)
            return [t.tweet_id for t in queue.drain(20)], queue.n_shed

        assert run() == run()

    def test_labeled_tweets_survive_any_burst(self):
        labeled = _labeled(30)
        unlabeled = _unlabeled(300)
        mixed = list(
            itertools.chain(
                *itertools.zip_longest(unlabeled, labeled)
            )
        )
        queue = BoundedIngestQueue(capacity=50)
        survivors = []
        for index, tweet in enumerate(t for t in mixed if t is not None):
            queue.offer(tweet)
            if index % 100 == 99:  # server far slower than the burst
                survivors.extend(queue.drain(20))
        survivors.extend(queue.drain(len(queue)))
        kept_labeled = [t for t in survivors if t.is_labeled]
        assert len(kept_labeled) == len(labeled)
        assert queue.n_shed > 0

    def test_all_labeled_queue_soft_admits_and_counts(self):
        tweets = _labeled(4)
        queue = BoundedIngestQueue(capacity=2)
        for tweet in tweets:
            assert queue.offer(tweet)
        assert len(queue) == 4  # labeled are never shed
        assert queue.n_over_capacity == 2
        assert queue.n_shed == 0

    def test_watermark_signals(self):
        queue = BoundedIngestQueue(
            capacity=10, high_watermark=0.8, low_watermark=0.5
        )
        for tweet in _unlabeled(6):
            queue.offer(tweet)
        assert not queue.backpressure and not queue.has_headroom
        for tweet in _unlabeled(2, seed=12):
            queue.offer(tweet)
        assert queue.backpressure
        queue.drain(4)
        assert queue.has_headroom

    @pytest.mark.parametrize("policy", ["drop-oldest", "drop-newest", "sample"])
    def test_accounting_invariant(self, policy):
        # Every offered tweet is either drained or shed — exactly once.
        queue = BoundedIngestQueue(capacity=40, policy=policy)
        drained = 0
        for index, tweet in enumerate(_unlabeled(500)):
            queue.offer(tweet)
            if index % 90 == 0:
                drained += len(queue.drain(25))
        drained += len(queue.drain(len(queue)))
        assert queue.n_offered == 500
        assert drained + queue.n_shed == 500
        assert queue.n_drained == drained

    def test_shed_metric_matches_counter(self):
        registry = MetricsRegistry()
        queue = BoundedIngestQueue(capacity=5, metrics=registry)
        for tweet in _unlabeled(20):
            queue.offer(tweet)
        assert queue.n_shed == 15
        assert registry.counter_value(
            "overload_shed_total", policy="drop-oldest"
        ) == 15
        assert registry.gauge_value("ingest_queue_depth") == 5

    def test_serialization_round_trip_continues_exactly(self):
        # A restored queue must behave bit-for-bit like the original —
        # same pending backlog, same counters, same shed-RNG state.
        stream = _unlabeled(120)
        queue = BoundedIngestQueue(
            capacity=15, policy="sample", sample_keep=0.4, seed=17
        )
        for tweet in stream[:60]:
            queue.offer(tweet)
        payload = json.loads(json.dumps(queue.to_dict()))
        restored = BoundedIngestQueue.from_dict(payload)
        assert restored.as_counters() == queue.as_counters()
        for tweet in stream[60:]:
            assert queue.offer(tweet) == restored.offer(tweet)
        assert [t.tweet_id for t in queue.drain(15)] == [
            t.tweet_id for t in restored.drain(15)
        ]

    def test_custom_policy_registration(self):
        def shed_everything(queue, entry):
            return entry

        register_shed_policy("refuse-all", shed_everything)
        try:
            queue = BoundedIngestQueue(capacity=2, policy="refuse-all")
            tweets = _unlabeled(5)
            for tweet in tweets:
                queue.offer(tweet)
            assert queue.n_shed == 3
            assert [t.tweet_id for t in queue.drain(2)] == [
                t.tweet_id for t in tweets[:2]
            ]
        finally:
            SHED_POLICY_REGISTRY.pop("refuse-all")
        with pytest.raises(ValueError):
            register_shed_policy("", shed_everything)


class TestOverloadController:
    def _controller(self, **kwargs):
        kwargs.setdefault("batch_deadline_s", 1.0)
        kwargs.setdefault("batch_size", 8)
        kwargs.setdefault("min_batch_size", 2)
        return OverloadController(**kwargs)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            OverloadController(batch_deadline_s=0.0, batch_size=8)
        with pytest.raises(ValueError):
            OverloadController(
                batch_deadline_s=1.0, batch_size=8, min_batch_size=9
            )
        with pytest.raises(ValueError):
            self._controller(degrade_after=0)
        with pytest.raises(ValueError):
            self._controller(shrink_factor=1.0)
        with pytest.raises(ValueError):
            self._controller(grow_factor=1.0)

    def test_hysteresis_requires_consecutive_pressure(self):
        controller = self._controller(degrade_after=2)
        controller.observe_batch(2.0, queue_fraction=0.0)  # miss
        controller.observe_batch(0.9, queue_fraction=0.0)  # neutral: resets
        controller.observe_batch(2.0, queue_fraction=0.0)  # miss again
        assert controller.batch_size == 8 and not controller.degraded
        controller.observe_batch(2.0, queue_fraction=0.0)  # 2nd consecutive
        assert controller.batch_size == 4

    def test_degrade_shrinks_batch_before_switching_tier(self):
        controller = self._controller(degrade_after=1)
        sizes, tiers = [], []
        for _ in range(5):
            controller.observe_batch(2.0, queue_fraction=0.0)
            sizes.append(controller.batch_size)
            tiers.append(controller.tier)
        assert sizes == [4, 2, 2, 2, 2]
        assert tiers == [
            DegradeTier.FULL,
            DegradeTier.FULL,
            DegradeTier.NO_POS,
            DegradeTier.TEXT_ONLY,
            DegradeTier.TEXT_ONLY,  # already at the floor: holds
        ]
        assert controller.max_tier_reached == DegradeTier.TEXT_ONLY
        assert controller.n_degrades == 2
        assert controller.n_resizes == 2

    def test_recovery_restores_tier_before_growing_batch(self):
        controller = self._controller(degrade_after=1, recover_after=1)
        for _ in range(4):  # down to min batch + TEXT_ONLY
            controller.observe_batch(2.0, queue_fraction=0.0)
        tiers, sizes = [], []
        for _ in range(5):
            controller.observe_batch(0.1, queue_fraction=0.0)
            tiers.append(controller.tier)
            sizes.append(controller.batch_size)
        assert tiers[:2] == [DegradeTier.NO_POS, DegradeTier.FULL]
        assert sizes[2:] == [3, 4, 6]  # grow_factor 1.5 toward max
        assert controller.n_recovers == 2

    def test_backpressure_alone_is_pressure(self):
        queue = BoundedIngestQueue(capacity=10, high_watermark=0.8)
        controller = self._controller(degrade_after=1, queue=queue)
        for tweet in _unlabeled(9):
            queue.offer(tweet)
        controller.observe_batch(0.1)  # fast batch, but queue at 90%
        assert controller.batch_size == 4
        assert controller.n_deadline_misses == 0

    def test_deadline_misses_counted_and_published(self):
        registry = MetricsRegistry()
        controller = self._controller(metrics=registry, engine_label="seq")
        controller.observe_batch(2.0, queue_fraction=0.0)
        controller.observe_batch(0.5, queue_fraction=0.0)
        assert controller.n_deadline_misses == 1
        assert registry.counter_value(
            "batch_deadline_miss_total", engine="seq"
        ) == 1
        # One miss then a comfortable batch: hysteresis holds the size.
        assert registry.gauge_value("controller_batch_size") == 8
        assert registry.gauge_value("degrade_level") == 0

    def test_poll_reads_batch_seconds_deltas(self):
        registry = MetricsRegistry()
        controller = self._controller(
            metrics=registry, engine_label="microbatch", degrade_after=1
        )
        assert not controller.poll(queue_fraction=0.0)  # nothing yet
        hist = registry.histogram("batch_seconds", engine="microbatch")
        hist.observe(3.0)
        hist.observe(5.0)
        assert controller.poll(queue_fraction=0.0)  # mean 4.0 > deadline
        assert controller.n_batches == 1
        assert controller.n_deadline_misses == 1
        assert not controller.poll(queue_fraction=0.0)  # no new batches
        with pytest.raises(RuntimeError):
            self._controller().poll()

    def test_serialization_round_trip_mid_episode(self):
        controller = self._controller(degrade_after=2, recover_after=2)
        for seconds in (2.0, 2.0, 2.0, 2.0, 2.0, 0.1):
            controller.observe_batch(seconds, queue_fraction=0.0)
        restored = OverloadController.from_dict(
            json.loads(json.dumps(controller.to_dict()))
        )
        assert restored.to_dict() == controller.to_dict()
        # Continued observations make identical decisions.
        for seconds in (0.1, 0.1, 2.0, 0.1):
            controller.observe_batch(seconds, queue_fraction=0.0)
            restored.observe_batch(seconds, queue_fraction=0.0)
        assert restored.to_dict() == controller.to_dict()


class TestEngineControllerIntegration:
    def test_microbatch_engine_degrades_under_impossible_deadline(self):
        engine = MicroBatchEngine(n_partitions=2, batch_size=8)
        controller = OverloadController(
            batch_deadline_s=1e-9,  # every batch misses
            batch_size=8,
            min_batch_size=2,
            degrade_after=1,
            metrics=engine.metrics,
        )
        engine.controller = controller
        tweets = _labeled(40)
        for start in range(0, 40, 8):
            engine.process_batch(tweets[start : start + 8])
        assert engine.batch_size == 2
        assert engine.degrade_tier == DegradeTier.TEXT_ONLY
        # Each result records the tier its batch *ran* at; a degrade
        # decision only affects the following batch.
        assert [b.degrade_tier for b in engine.batches] == [0, 0, 0, 1, 2]

    def test_sequential_engine_drives_controller(self):
        engine = SequentialEngine()
        controller = OverloadController(
            batch_deadline_s=1e-9,
            batch_size=8,
            min_batch_size=2,
            degrade_after=1,
            metrics=engine.metrics,
            engine_label="sequential",
        )
        engine.controller = controller
        engine.process_many(_labeled(8))
        engine.process_many(_labeled(8, seed=5))
        engine.process_many(_labeled(8, seed=6))
        assert controller.n_deadline_misses == 3
        assert controller.batch_size == 2
        assert engine.pipeline.degrade_tier == DegradeTier.NO_POS


class TestSupervisedOverload:
    def _build(self, tmp_dir, engine_kind, batch=100, capacity=300):
        if engine_kind == "microbatch":
            engine = MicroBatchEngine(n_partitions=2, batch_size=batch)
        else:
            engine = SequentialEngine()
        queue = BoundedIngestQueue(capacity=capacity, metrics=engine.metrics)
        controller = OverloadController(
            batch_deadline_s=0.06,
            batch_size=batch,
            min_batch_size=batch // 4,
            queue=queue,
            metrics=engine.metrics,
            engine_label=engine_kind,
        )
        engine.controller = controller
        supervisor = StreamSupervisor(
            engine,
            checkpoint_dir=tmp_dir,
            checkpoint_every=2,
            chunk_size=batch,
            ingest_queue=queue,
        )
        return supervisor, engine

    def _arrivals(self, n=2400):
        workload = FirehoseWorkload(
            n_unlabeled=n, n_labeled=n // 8, seed=17
        )
        schedule = ArrivalSchedule(
            rate_hz=2000.0,  # tier-0 capacity is 1250/s: sustained overload
            shape="bursty",
            burst_factor=3.0,
            period_s=0.5,
            burst_duty=0.2,
            seed=5,
        )
        return list(
            itertools.islice(workload.timed_stream(schedule), n)
        )

    def test_open_loop_queue_is_transparent_when_not_overloaded(self):
        # run() drains the queue every chunk_size tweets, so with
        # capacity > chunk the bound never binds: results must match a
        # queue-less supervised run exactly.
        tweets = _labeled(400)
        engine = MicroBatchEngine(n_partitions=2, batch_size=50)
        queue = BoundedIngestQueue(capacity=200, metrics=engine.metrics)
        with_queue = StreamSupervisor(
            engine, chunk_size=50, ingest_queue=queue
        ).run(tweets)
        without = StreamSupervisor(
            MicroBatchEngine(n_partitions=2, batch_size=50), chunk_size=50
        ).run(tweets)
        assert queue.n_shed == 0
        assert with_queue.result.metrics == without.result.metrics
        assert with_queue.health.n_processed == without.health.n_processed

    @pytest.mark.parametrize("engine_kind", ["microbatch", "sequential"])
    def test_closed_loop_burst_sheds_bounded_and_accounted(
        self, tmp_path, engine_kind
    ):
        supervisor, engine = self._build(tmp_path, engine_kind)
        queue = supervisor.ingest_queue
        run = supervisor.run_timed(self._arrivals(), SERVICE_MODEL)
        counters = queue.as_counters()
        # Bounded: unlabeled traffic never pushes past capacity plus
        # the (small) labeled soft-admit allowance.
        assert counters["max_depth"] <= queue.capacity + counters[
            "n_over_capacity"
        ]
        assert counters["n_shed"] > 0
        assert run.health.n_shed == counters["n_shed"]
        # Exact accounting: everything offered was processed or shed.
        assert counters["n_offered"] == counters["n_drained"] + counters[
            "n_shed"
        ]
        assert run.health.n_processed == counters["n_drained"]
        # Sustained 1.6x overload drove the controller to degrade.
        controller = supervisor.controller
        assert controller.n_deadline_misses + controller.n_resizes > 0

    def test_model_mode_is_deterministic(self, tmp_path):
        arrivals = self._arrivals(1200)

        def run(sub):
            supervisor, engine = self._build(tmp_path / sub, "microbatch")
            result = supervisor.run_timed(arrivals, SERVICE_MODEL)
            return (
                result.result.metrics,
                supervisor.ingest_queue.as_counters(),
                supervisor.controller.to_dict(),
                list(engine.alert_manager.alerts),
            )

        assert run("a") == run("b")

    @pytest.mark.parametrize("engine_kind", ["microbatch", "sequential"])
    def test_crash_resume_mid_overload_is_exact(self, tmp_path, engine_kind):
        arrivals = self._arrivals()

        baseline_sup, baseline_engine = self._build(
            tmp_path / "base", engine_kind
        )
        baseline = baseline_sup.run_timed(arrivals, SERVICE_MODEL)

        crashed, _ = self._build(tmp_path / "crash", engine_kind)
        with pytest.raises(_Crash):
            crashed.run_timed(
                _crashing_arrivals(arrivals, at=1600), SERVICE_MODEL
            )
        assert crashed.n_checkpoints >= 1
        # The checkpoint captured the overload machinery mid-episode,
        # pending backlog included.
        payload = json.loads(crashed.checkpoint_path.read_text())
        assert payload["supervisor_version"] == SUPERVISOR_CHECKPOINT_VERSION
        assert payload["overload"]["queue"]["entries"]
        assert payload["overload"]["controller"]["n_batches"] > 0

        resumed = StreamSupervisor.resume(
            tmp_path / "crash", checkpoint_every=2
        )
        rerun = resumed.run_timed(arrivals, SERVICE_MODEL)

        assert rerun.result.metrics == baseline.result.metrics
        assert (
            resumed.ingest_queue.as_counters()
            == baseline_sup.ingest_queue.as_counters()
        )
        assert (
            resumed.controller.to_dict()
            == baseline_sup.controller.to_dict()
        )
        if engine_kind == "microbatch":
            resumed_alerts = resumed.engine.alert_manager.alerts
            baseline_alerts = baseline_engine.alert_manager.alerts
        else:
            resumed_alerts = resumed.engine.pipeline.alert_manager.alerts
            baseline_alerts = baseline_engine.pipeline.alert_manager.alerts
        assert resumed_alerts == baseline_alerts

    def test_resume_reads_version2_checkpoints(self, tmp_path):
        # Pre-overload checkpoints (v2) must stay loadable: the
        # overload section is optional, not assumed.
        tweets = _labeled(300)
        supervisor = StreamSupervisor(
            SequentialEngine(),
            checkpoint_dir=tmp_path / "crash",
            checkpoint_every=1,
            chunk_size=50,
        )

        def crashing(stream, at):
            for index, tweet in enumerate(stream):
                if index >= at:
                    raise _Crash("died")
                yield tweet

        with pytest.raises(_Crash):
            supervisor.run(crashing(tweets, 150))
        path = supervisor.checkpoint_path
        payload = json.loads(path.read_text())
        payload["supervisor_version"] = 2
        payload.pop("overload", None)
        path.write_text(json.dumps(payload))

        baseline = StreamSupervisor(
            SequentialEngine(), chunk_size=50
        ).run(tweets)
        rerun = StreamSupervisor.resume(tmp_path / "crash").run(tweets)
        assert rerun.result.metrics == baseline.result.metrics


class TestDegradedAccuracy:
    def test_degraded_tiers_stay_within_five_f1_points(self, medium_stream):
        # The degraded extractors impute the skipped features, so the
        # vector stays 17-wide and the model keeps working; the price
        # of shedding POS/sentiment under overload must be small.
        def run(tier):
            pipeline = AggressionDetectionPipeline()
            pipeline.set_degrade_tier(tier)
            return pipeline.process_stream(medium_stream).metrics["f1"]

        full = run(DegradeTier.FULL)
        assert full > 0.75
        for tier in (DegradeTier.NO_POS, DegradeTier.TEXT_ONLY):
            degraded = run(tier)
            assert degraded >= full - 0.05, (
                f"{tier.name} f1 {degraded:.4f} vs FULL {full:.4f}"
            )


class TestNanThroughput:
    def test_untimed_result_reports_nan_not_zero(self):
        from repro.engine.microbatch import EngineResult

        result = EngineResult(
            n_processed=100,
            n_labeled=100,
            n_unlabeled=0,
            metrics={},
            batches=[],
            elapsed_seconds=0.0,
            n_alerts=0,
        )
        assert math.isnan(result.throughput)
        result.elapsed_seconds = 2.0
        assert result.throughput == pytest.approx(50.0)
