"""Stream supervision: quarantine, checkpoint-resume, chaos equivalence."""

import json

import pytest

from repro.core.checkpoint import atomic_write_json
from repro.core.pipeline import AggressionDetectionPipeline
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.runners import SerialRunner
from repro.engine.sequential import SequentialEngine
from repro.reliability import (
    CircuitOpenError,
    DeadLetterQueue,
    FaultInjectingRunner,
    FaultInjector,
    RetryPolicy,
    StreamSupervisor,
    corrupting_stream,
    corruption_mask,
)


def _tweets(n=600, seed=3):
    return AbusiveDatasetGenerator(n_tweets=n, seed=seed).generate_list()


class _Crash(Exception):
    """Simulated hard driver death mid-stream."""


def _crashing(tweets, at):
    for index, tweet in enumerate(tweets):
        if index >= at:
            raise _Crash(f"driver died at tweet {index}")
        yield tweet


def _no_sleep_policy(**kwargs):
    kwargs.setdefault("base_delay_s", 0.0)
    return RetryPolicy(sleep=lambda _s: None, **kwargs)


class TestPipelineQuarantine:
    def test_poison_tweets_are_skipped_and_counted(self):
        queue = DeadLetterQueue()
        pipeline = AggressionDetectionPipeline(dead_letters=queue)
        tweets = list(corrupting_stream(_tweets(200), rate=0.1, seed=7))
        result = pipeline.process_stream(tweets)
        assert result.n_quarantined == queue.n_total > 0
        assert result.n_processed == len(tweets) - result.n_quarantined
        assert set(queue.by_stage()) == {"validate"}

    def test_without_queue_poison_raises(self):
        pipeline = AggressionDetectionPipeline()
        poisoned = list(corrupting_stream(_tweets(100), rate=1.0, seed=7))
        with pytest.raises(Exception):
            pipeline.process_stream(poisoned)

    def test_circuit_breaker_trips_on_poison_storm(self):
        pipeline = AggressionDetectionPipeline(max_poison_rate=0.05)
        storm = corrupting_stream(_tweets(500), rate=0.5, seed=7)
        with pytest.raises(CircuitOpenError):
            pipeline.process_stream(storm)


class TestAtomicWrite:
    def test_writes_json_and_removes_tmp(self, tmp_path):
        target = tmp_path / "state.json"
        size = atomic_write_json(target, {"a": 1})
        assert size == target.stat().st_size
        assert json.loads(target.read_text()) == {"a": 1}
        assert list(tmp_path.iterdir()) == [target]

    def test_failed_write_leaves_previous_file_intact(self, tmp_path):
        target = tmp_path / "state.json"
        atomic_write_json(target, {"good": True})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"good": True}


class TestCheckpointResume:
    @pytest.mark.parametrize("engine_kind", ["microbatch", "sequential"])
    def test_crash_and_resume_equals_uninterrupted(self, tmp_path, engine_kind):
        tweets = _tweets()

        def build():
            if engine_kind == "microbatch":
                return MicroBatchEngine(n_partitions=4, batch_size=50)
            return SequentialEngine()

        baseline_engine = build()
        supervisor = StreamSupervisor(
            baseline_engine,
            checkpoint_dir=tmp_path / "base",
            checkpoint_every=2,
            chunk_size=50,
        )
        baseline = supervisor.run(tweets)

        # Process 3+ chunks, checkpoint, then die mid-stream.
        crashed = StreamSupervisor(
            build(),
            checkpoint_dir=tmp_path / "crash",
            checkpoint_every=2,
            chunk_size=50,
        )
        with pytest.raises(_Crash):
            crashed.run(_crashing(tweets, at=330))
        assert crashed.n_checkpoints >= 3

        resumed = StreamSupervisor.resume(
            tmp_path / "crash", checkpoint_every=2
        )
        rerun = resumed.run(tweets)
        assert rerun.result.metrics == baseline.result.metrics
        assert rerun.health.n_processed == baseline.health.n_processed
        if engine_kind == "microbatch":
            assert (
                resumed.engine.alert_manager.alerts
                == baseline_engine.alert_manager.alerts
            )
            assert len(resumed.engine.batches) == len(baseline_engine.batches)
        else:
            assert (
                resumed.engine.pipeline.alert_manager.alerts
                == baseline_engine.pipeline.alert_manager.alerts
            )

    def test_resume_of_finished_run_is_noop(self, tmp_path):
        tweets = _tweets(200)
        supervisor = StreamSupervisor(
            SequentialEngine(),
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
            chunk_size=50,
        )
        first = supervisor.run(tweets)
        resumed = StreamSupervisor.resume(tmp_path)
        second = resumed.run(tweets)
        assert second.result.metrics == first.result.metrics
        assert second.health.n_processed == first.health.n_processed

    def test_resume_rejects_unknown_version(self, tmp_path):
        atomic_write_json(
            tmp_path / "checkpoint.json", {"supervisor_version": 999}
        )
        with pytest.raises(Exception, match="version"):
            StreamSupervisor.resume(tmp_path)


class TestSupervisorQuarantine:
    def test_validation_happens_before_batching(self):
        # Corrupt tweets must not occupy batch slots: the supervised
        # run over the dirty stream sees the same batches as a plain
        # run over the clean subset.
        tweets = _tweets(400)
        mask = corruption_mask(len(tweets), rate=0.1, seed=7)
        clean = [t for t, bad in zip(tweets, mask) if not bad]
        dirty = list(corrupting_stream(tweets, rate=0.1, seed=7))

        reference = MicroBatchEngine(n_partitions=3, batch_size=50)
        ref_result = reference.run(clean)

        engine = MicroBatchEngine(n_partitions=3, batch_size=50)
        supervisor = StreamSupervisor(engine, chunk_size=50)
        run = supervisor.run(dirty)

        assert run.result.metrics == ref_result.metrics
        assert run.health.n_quarantined == sum(mask)
        assert run.health.n_consumed == len(tweets)
        assert engine.alert_manager.alerts == reference.alert_manager.alerts

    def test_breaker_aborts_poison_storm(self):
        supervisor = StreamSupervisor(
            SequentialEngine(), chunk_size=50, max_poison_rate=0.05
        )
        storm = corrupting_stream(_tweets(500), rate=0.5, seed=7)
        with pytest.raises(CircuitOpenError):
            supervisor.run(storm)
        assert supervisor.health().breaker_open


@pytest.mark.chaos
class TestChaosEquivalence:
    """ISSUE acceptance: seeded faults leave metrics bit-identical."""

    def test_transient_failures_plus_corruption_match_clean_run(self):
        tweets = _tweets(600)
        rate = 0.01
        mask = corruption_mask(len(tweets), rate=rate, seed=7)
        clean = [t for t, bad in zip(tweets, mask) if not bad]
        dirty = list(corrupting_stream(tweets, rate=rate, seed=7))

        reference = MicroBatchEngine(n_partitions=4, batch_size=50)
        ref_result = reference.run(clean)

        # Two transient partition failures at different points in the
        # stream; each recovers on retry.
        injector = FaultInjector(schedule={1: [2], 5: [0]})
        runner = FaultInjectingRunner(SerialRunner(), injector)
        engine = MicroBatchEngine(
            n_partitions=4,
            batch_size=50,
            runner=runner,
            retry_policy=_no_sleep_policy(max_retries=3),
        )
        supervisor = StreamSupervisor(engine, chunk_size=50)
        run = supervisor.run(dirty)

        assert injector.n_injected == 2
        assert run.health.n_retries == 2
        assert run.health.n_quarantined == sum(mask)
        assert run.result.metrics == ref_result.metrics
        assert engine.alert_manager.alerts == reference.alert_manager.alerts

    def test_kill_resume_under_faults_matches_uninterrupted(self, tmp_path):
        tweets = _tweets(600)
        dirty = list(corrupting_stream(tweets, rate=0.01, seed=7))

        def build(schedule):
            injector = FaultInjector(schedule=schedule)
            return MicroBatchEngine(
                n_partitions=4,
                batch_size=50,
                runner=FaultInjectingRunner(SerialRunner(), injector),
                retry_policy=_no_sleep_policy(max_retries=3),
            )

        baseline_engine = build({1: [2]})
        baseline = StreamSupervisor(baseline_engine, chunk_size=50).run(dirty)

        crashed = StreamSupervisor(
            build({1: [2]}),
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
            chunk_size=50,
        )
        with pytest.raises(_Crash):
            crashed.run(_crashing(dirty, at=320))

        resumed = StreamSupervisor.resume(
            tmp_path,
            checkpoint_every=2,
            runner=FaultInjectingRunner(SerialRunner(), FaultInjector()),
            retry_policy=_no_sleep_policy(max_retries=3),
        )
        rerun = resumed.run(dirty)
        assert rerun.result.metrics == baseline.result.metrics
        assert (
            resumed.engine.alert_manager.alerts
            == baseline_engine.alert_manager.alerts
        )


class TestShmBroadcastCrashResume:
    """Shared-memory broadcast segments survive crash-resume cleanly.

    A driver crash mid-stream leaves the last broadcast segment live;
    closing the dead engine must unlink it, and the resumed supervisor
    must recreate segments from the restored state and still match the
    uninterrupted run — proof the zero-copy path round-trips through a
    checkpoint.
    """

    def test_segments_recreated_cleanly_after_resume(self, tmp_path):
        from repro.engine import runners as broadcast_runners

        def shm_names():
            import os

            try:
                return {
                    f
                    for f in os.listdir("/dev/shm")
                    if f.startswith("psm_")
                }
            except FileNotFoundError:
                return set()

        tweets = _tweets(400)
        before = shm_names()
        # The live-segment registry is process-global: engines from
        # earlier tests that rely on the atexit sweep may still hold
        # segments, so every check below is a delta against this.
        stale = set(broadcast_runners.live_segment_names())

        def new_live():
            return set(broadcast_runners.live_segment_names()) - stale

        def build():
            return MicroBatchEngine(
                n_partitions=2,
                batch_size=50,
                runner="processes",
                n_workers=2,
            )

        baseline_engine = build()
        baseline = StreamSupervisor(
            baseline_engine,
            checkpoint_dir=tmp_path / "base",
            checkpoint_every=2,
            chunk_size=100,
        ).run(tweets)
        baseline_engine.close()
        assert new_live() == set()

        crashed = StreamSupervisor(
            build(),
            checkpoint_dir=tmp_path / "crash",
            checkpoint_every=1,
            chunk_size=100,
        )
        with pytest.raises(_Crash):
            crashed.run(_crashing(tweets, at=250))
        crashed.engine.close()
        # The crash left a live segment; close() must have unlinked it.
        assert new_live() == set()

        resumed = StreamSupervisor.resume(
            tmp_path / "crash",
            checkpoint_every=1,
            runner="processes",
            n_workers=2,
        )
        rerun = resumed.run(tweets)
        resumed.engine.close()
        assert rerun.result.metrics == baseline.result.metrics
        assert rerun.health.n_processed == baseline.health.n_processed
        assert new_live() == set()
        assert shm_names() - before == set()
