"""Fig. 8: effect of normalization on SLR (dramatic, per the paper).

The paper reports enabling normalization lifts SLR's F1 by over 42%
(and smooths the curve) for both class setups.
"""

from __future__ import annotations

import bench_util


def _run_all():
    results = {}
    for c in (2, 3):
        for norm in ("minmax_no_outliers", "none"):
            key = f"SLR, n={'ON' if norm != 'none' else 'OFF'}, c={c}"
            results[key] = bench_util.run_config(
                n_classes=c, model="slr", normalization=norm
            )
    return results


def test_fig08_normalization_slr(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    curves = {k: r.curve("window_f1") for k, r in results.items()}
    bench_util.report(
        "fig08_normalization_slr",
        "Fig. 8 — F1 vs tweets: normalization ON/OFF (SLR, p=ON, ad=ON)",
        ["tweets"] + list(curves),
        bench_util.curve_rows(curves, step=2),
        notes=["final F1: " + ", ".join(
            f"{k}={r.metrics['f1']:.3f}" for k, r in results.items()
        ), "paper: normalization improves SLR's F1 by >42%"],
    )
    f1 = {k: r.metrics["f1"] for k, r in results.items()}
    # Normalization must improve SLR dramatically for both setups.
    assert f1["SLR, n=ON, c=2"] > f1["SLR, n=OFF, c=2"] + 0.10
    assert f1["SLR, n=ON, c=3"] > f1["SLR, n=OFF, c=3"] + 0.10
