"""Fig. 7: effect of normalization on HT (marginal, per the paper)."""

from __future__ import annotations

import bench_util


def _run_all():
    results = {}
    for c in (2, 3):
        for norm in ("minmax_no_outliers", "none"):
            key = f"HT, n={'ON' if norm != 'none' else 'OFF'}, c={c}"
            results[key] = bench_util.run_config(
                n_classes=c, model="ht", normalization=norm
            )
    return results


def test_fig07_normalization_ht(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    curves = {k: r.curve("window_f1") for k, r in results.items()}
    bench_util.report(
        "fig07_normalization_ht",
        "Fig. 7 — F1 vs tweets: normalization ON/OFF (HT, p=ON, ad=ON)",
        ["tweets"] + list(curves),
        bench_util.curve_rows(curves, step=2),
        notes=["final F1: " + ", ".join(
            f"{k}={r.metrics['f1']:.3f}" for k, r in results.items()
        )],
    )
    f1 = {k: r.metrics["f1"] for k, r in results.items()}
    # Paper: normalization has only a marginal effect on HT.
    assert abs(f1["HT, n=ON, c=2"] - f1["HT, n=OFF, c=2"]) < 0.03
    assert abs(f1["HT, n=ON, c=3"] - f1["HT, n=OFF, c=3"]) < 0.03
