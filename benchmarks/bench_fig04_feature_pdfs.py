"""Fig. 4: per-class feature distributions (PDFs).

The paper plots probability densities of six features per class and
reports their means; this bench recomputes the per-class mean (and std)
of every Fig. 4 feature on the synthetic dataset and compares against
the paper's published statistics.
"""

from __future__ import annotations

import statistics
from typing import Dict, List

import bench_util
from repro.core.features import FEATURE_NAMES, FeatureExtractor, LabelEncoder

#: (feature, class) -> mean reported in the paper (§IV-B / Fig. 4).
PAPER_MEANS = {
    ("accountAge", "normal"): 1487.74,
    ("accountAge", "abusive"): 1291.97,
    ("accountAge", "hateful"): 1379.95,
    ("numUpperCases", "normal"): 0.96,
    ("numUpperCases", "abusive"): 1.84,
    ("numUpperCases", "hateful"): 1.57,
    ("wordsPerSentence", "normal"): 16.66,
    ("wordsPerSentence", "abusive"): 12.66,
    ("wordsPerSentence", "hateful"): 15.93,
    ("cntSwearWords", "normal"): 0.10,
    ("cntSwearWords", "abusive"): 2.54,
    ("cntSwearWords", "hateful"): 1.84,
}

FIG4_FEATURES = (
    "accountAge",
    "numUpperCases",
    "cntAdjective",
    "wordsPerSentence",
    "sentimentScoreNeg",
    "cntSwearWords",
)


def _per_class_values() -> Dict[str, Dict[str, List[float]]]:
    extractor = FeatureExtractor(encoder=LabelEncoder(3))
    values: Dict[str, Dict[str, List[float]]] = {
        f: {"normal": [], "abusive": [], "hateful": []} for f in FIG4_FEATURES
    }
    for tweet in bench_util.abusive_stream():
        instance = extractor.extract(tweet, update_bow=False)
        for feature in FIG4_FEATURES:
            values[feature][tweet.label].append(
                instance.x[FEATURE_NAMES.index(feature)]
            )
    return values


def test_fig04_feature_pdfs(benchmark):
    values = benchmark.pedantic(_per_class_values, rounds=1, iterations=1)
    rows = []
    for feature in FIG4_FEATURES:
        for label in ("normal", "abusive", "hateful"):
            sample = values[feature][label]
            mean = statistics.mean(sample)
            std = statistics.pstdev(sample)
            paper = PAPER_MEANS.get((feature, label))
            rows.append(
                [feature, label, mean, std,
                 "-" if paper is None else paper]
            )
    bench_util.report(
        "fig04_feature_pdfs",
        "Fig. 4 — per-class feature distributions (mean/std vs paper mean)",
        ["feature", "class", "mean", "std", "paper"],
        rows,
        notes=[
            "orderings to check: swears abusive>hateful>>normal; "
            "account age normal>hateful>abusive; wps normal>hateful>abusive",
        ],
    )
    # Shape assertions: the paper's orderings must hold.
    def mean(feature, label):
        return statistics.mean(values[feature][label])

    assert mean("cntSwearWords", "abusive") > mean("cntSwearWords", "hateful")
    assert mean("cntSwearWords", "hateful") > mean("cntSwearWords", "normal")
    assert mean("accountAge", "normal") > mean("accountAge", "abusive")
    assert mean("wordsPerSentence", "normal") > mean("wordsPerSentence", "abusive")
    assert mean("sentimentScoreNeg", "abusive") < mean("sentimentScoreNeg", "normal")
    assert mean("cntAdjective", "normal") > mean("cntAdjective", "abusive")
