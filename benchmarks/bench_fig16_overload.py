"""Fig. 16 (overload companion): max stable rate with/without degradation.

The paper's Fig. 16 asks what sustained rate each configuration
survives. This companion asks the overload question the paper's
open-loop harness cannot: when the firehose *exceeds* capacity, how
much higher can the sustainable rate go if the pipeline is allowed to
degrade (shrink batches, drop to cheaper feature tiers) instead of
shedding? The closed-loop replay is fully simulated (per-tier service
model, seeded Poisson arrivals), so the sweep is deterministic and
host-independent.
"""

from __future__ import annotations

import bench_util
from repro.data.firehose import ArrivalSchedule
from repro.data.loader import strip_labels
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.replay import replay_closed_loop
from repro.reliability.overload import BoundedIngestQueue, OverloadController

#: Per-tweet service seconds by degrade tier (FULL / NO_POS /
#: TEXT_ONLY), calibrated to the measured extractor cost split.
SERVICE_MODEL = {0: 0.0008, 1: 0.0005, 2: 0.0003}
RATES_HZ = (800, 1000, 1200, 1500, 1800, 2200, 2600, 3000, 3400)
QUEUE_CAPACITY = 2000
BATCH_SIZE = 500
BATCH_DEADLINE_S = 0.3
#: A rate is "stable" when sustained shedding stays below 1%.
STABLE_SHED_FRACTION = 0.01


def _replay(tweets, rate_hz, degradation):
    schedule = ArrivalSchedule(rate_hz=float(rate_hz), seed=13)
    queue = BoundedIngestQueue(capacity=QUEUE_CAPACITY)
    controller = None
    if degradation:
        controller = OverloadController(
            batch_deadline_s=BATCH_DEADLINE_S,
            batch_size=BATCH_SIZE,
            min_batch_size=BATCH_SIZE // 4,
            queue=queue,
        )
    return replay_closed_loop(
        schedule.assign(tweets),
        queue,
        lambda batch: None,
        controller=controller,
        batch_size=BATCH_SIZE,
        service_time_s=SERVICE_MODEL if degradation else SERVICE_MODEL[0],
    )


def _max_stable(by_rate):
    stable = [
        rate
        for rate, report in by_rate.items()
        if report.shed_fraction < STABLE_SHED_FRACTION
    ]
    return max(stable) if stable else None


def test_fig16_overload_degradation(benchmark):
    # Fixed size regardless of REPRO_BENCH_TWEETS: the sweep is a pure
    # simulation (noop processor + service model), already fast, and a
    # pinned workload keeps the reported stable rates reproducible.
    n_tweets = 12_000
    generator = AbusiveDatasetGenerator(n_tweets=n_tweets, seed=11)
    tweets = list(strip_labels(generator.generate()))

    def sweep():
        fixed = {r: _replay(tweets, r, degradation=False) for r in RATES_HZ}
        adaptive = {r: _replay(tweets, r, degradation=True) for r in RATES_HZ}
        return fixed, adaptive

    fixed, adaptive = benchmark.pedantic(sweep, rounds=1, iterations=1)
    max_fixed = _max_stable(fixed)
    max_adaptive = _max_stable(adaptive)
    rows = [
        [
            rate,
            f"{fixed[rate].shed_fraction:.1%}",
            f"{adaptive[rate].shed_fraction:.1%}",
            adaptive[rate].max_tier_reached,
            adaptive[rate].n_deadline_misses,
        ]
        for rate in RATES_HZ
    ]
    bench_util.report(
        "fig16_overload",
        "Fig. 16 (overload companion) — shed fraction vs offered rate, "
        "degradation off/on",
        ["rate (tweets/s)", "shed (fixed)", "shed (adaptive)",
         "worst tier", "deadline misses"],
        rows,
        notes=[
            f"{n_tweets} unlabeled tweets, Poisson arrivals, per-tier "
            f"service model {SERVICE_MODEL} s/tweet, queue capacity "
            f"{QUEUE_CAPACITY}, batch {BATCH_SIZE}",
            f"max stable rate (<{STABLE_SHED_FRACTION:.0%} shed): "
            f"fixed {max_fixed} tweets/s, adaptive {max_adaptive} tweets/s",
        ],
        summary={
            "rates_hz": list(RATES_HZ),
            "shed_fraction_fixed": [
                fixed[r].shed_fraction for r in RATES_HZ
            ],
            "shed_fraction_adaptive": [
                adaptive[r].shed_fraction for r in RATES_HZ
            ],
            "max_stable_rate_fixed_hz": max_fixed,
            "max_stable_rate_adaptive_hz": max_adaptive,
            "service_model_s": SERVICE_MODEL,
        },
    )
    # Full-tier capacity is 1/0.0008 = 1250/s; the 2000-deep queue
    # absorbs a finite run's transient up to 1500/s, then shedding is
    # unavoidable for the fixed pipeline.
    assert max_fixed == 1500
    assert fixed[2600].shed_fraction > 0.3
    # Degradation buys real headroom: a higher stable rate, and far
    # less shedding at every overloaded rate.
    assert max_adaptive > max_fixed
    for rate in RATES_HZ:
        if rate > max_fixed:
            assert (
                adaptive[rate].shed_fraction
                < 0.5 * fixed[rate].shed_fraction
            )
    # Both modes keep exact accounting at every rate.
    for by_rate in (fixed, adaptive):
        for report in by_rate.values():
            assert report.n_offered == report.n_processed + report.n_shed
            assert report.max_queue_depth <= QUEUE_CAPACITY
