"""Fig. 12: F1 over time for HT / ARF / SLR, 2-class problem.

Paper shape: all methods above 89-91% F1; HT up to 4 points better than
its 3-class self; HT/SLR reach full potential after ~5k tweets.
"""

from __future__ import annotations

import bench_util


def _run_all():
    results = {
        model.upper(): bench_util.run_config(n_classes=2, model=model)
        for model in ("ht", "arf", "slr")
    }
    results["HT (3-class)"] = bench_util.run_config(n_classes=3, model="ht")
    return results


def test_fig12_streaming_2class(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    curves = {
        k: r.curve("f1") for k, r in results.items() if "3-class" not in k
    }
    bench_util.report(
        "fig12_streaming_2class",
        "Fig. 12 — cumulative F1 vs tweets, 2-class (p=ON, n=ON, ad=ON)",
        ["tweets"] + list(curves),
        bench_util.curve_rows(curves, step=2),
        notes=["final F1: " + ", ".join(
            f"{k}={r.metrics['f1']:.3f}" for k, r in results.items()
        )],
    )
    f1 = {k: r.metrics["f1"] for k, r in results.items()}
    # Paper: 2-class reaches >= ~0.89 for every method.
    assert all(
        value > 0.85 for k, value in f1.items() if "3-class" not in k
    )
    # HT gains a few points over the 3-class problem (paper: up to 4%).
    assert f1["HT"] > f1["HT (3-class)"] + 0.01
