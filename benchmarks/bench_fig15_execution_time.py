"""Fig. 15: execution time per streaming system vs workload size.

Reproduced with the calibrated cluster cost model (we have one machine,
not a 3-node Spark cluster — see DESIGN.md). Additionally measures the
real single-thread throughput of this Python pipeline so the model's
per-tweet cost can be cross-checked against actual execution.
"""

from __future__ import annotations

import bench_util
from repro.core.config import PipelineConfig
from repro.engine.cluster import PAPER_SPECS, SimulatedCluster
from repro.engine.sequential import SequentialEngine

WORKLOADS = (250_000, 500_000, 1_000_000, 1_500_000, 2_000_000)


def _simulate():
    grid = {}
    for spec in PAPER_SPECS:
        cluster = SimulatedCluster(spec)
        grid[spec.name] = [cluster.execution_time_s(n) for n in WORKLOADS]
    return grid


def _measure_real_throughput() -> float:
    engine = SequentialEngine(PipelineConfig(n_classes=3))
    return engine.measure_throughput(
        bench_util.abusive_stream(4000), warmup=500
    )


def test_fig15_execution_time(benchmark):
    grid = benchmark.pedantic(_simulate, rounds=1, iterations=1)
    real_throughput = _measure_real_throughput()
    rows = [
        [f"{n // 1000}k"] + [grid[spec.name][i] for spec in PAPER_SPECS]
        for i, n in enumerate(WORKLOADS)
    ]
    bench_util.report(
        "fig15_execution_time",
        "Fig. 15 — execution time (s) per streaming system (cost model)",
        ["tweets"] + [spec.name for spec in PAPER_SPECS],
        rows,
        notes=[
            f"measured single-thread throughput of THIS pipeline: "
            f"{real_throughput:,.0f} tweets/s",
            "paper @2M tweets: SparkLocal 5.5x and SparkCluster 13.2x "
            "faster than SparkSingle",
        ],
        summary={
            "workloads": list(WORKLOADS),
            "execution_time_s": {
                spec.name: grid[spec.name] for spec in PAPER_SPECS
            },
            "measured_single_thread_tweets_per_s": real_throughput,
        },
    )
    times = {spec.name: dict(zip(WORKLOADS, grid[spec.name]))
             for spec in PAPER_SPECS}
    # Linear growth for the sequential engines.
    assert times["MOA"][2_000_000] / times["MOA"][1_000_000] < 2.1
    # Ratio shape at 2M tweets.
    single = times["SparkSingle"][2_000_000]
    assert single / times["SparkLocal"][2_000_000] > 4.0
    assert single / times["SparkCluster"][2_000_000] > 10.0
    # MOA faster than SparkSingle but within the 7-17% band.
    assert 1.05 < single / times["MOA"][2_000_000] < 1.20


def test_fig15_real_microbatch_speed(benchmark):
    """Real (not simulated) micro-batch engine run, with stage timings."""
    from repro.engine.microbatch import MicroBatchEngine

    tweets = bench_util.abusive_stream(4000)

    def run():
        with MicroBatchEngine(
            PipelineConfig(n_classes=3), n_partitions=4, batch_size=1000
        ) as engine:
            return engine.run(tweets)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stages = result.stage_seconds
    bench_util.report(
        "fig15_microbatch_stages",
        "Fig. 15 (companion) — real micro-batch engine per-stage timings",
        ["stage", "seconds", "share"],
        [
            [name, seconds, f"{seconds / max(stages.total, 1e-9):.1%}"]
            for name, seconds in stages.as_dict().items()
        ],
        notes=[
            f"4 partitions x 1000-tweet batches over {len(tweets)} tweets",
            f"throughput: {result.throughput:,.0f} tweets/s; driver-side "
            f"merge/drain: {stages.driver_seconds:.3f} s",
        ],
        summary={
            "n_tweets": len(tweets),
            "throughput_tweets_per_s": result.throughput,
            "stage_seconds": stages.as_dict(),
            "driver_seconds": stages.driver_seconds,
        },
    )
    assert result.n_processed == 4000
    assert stages.partition_execute > 0
    # Driver work is O(partitions): merging models/BoW/normalizers must
    # stay a small fraction of the partition compute.
    assert stages.driver_seconds < 0.5 * stages.partition_execute
