"""Fig. 17: streaming HT on the Sarcasm and Offensive datasets.

Paper: on Sarcasm the streaming HT starts around 86% accuracy, crosses
90% by ~19k tweets, and converges toward the originally reported 93%;
on Offensive it starts around 58% F1 and climbs to ~73% over the 16k
stream (original batch result: 74%).
"""

from __future__ import annotations

import bench_util
from repro.core.evaluation import PrequentialEvaluator
from repro.data.offensive import (
    OffensiveDatasetGenerator,
    OffensiveFeatureExtractor,
)
from repro.data.sarcasm import SarcasmDatasetGenerator, SarcasmFeatureExtractor
from repro.streamml import HoeffdingTree

SARCASM_REPORTED_ACCURACY = 0.93
OFFENSIVE_REPORTED_F1 = 0.74


def _prequential(instances, n_classes, record_every):
    model = HoeffdingTree(n_classes=n_classes)
    evaluator = PrequentialEvaluator(
        n_classes=n_classes, record_every=record_every
    )
    for instance in instances:
        evaluator.add_labeled(instance.y, model.predict_one(instance.x))
        model.learn_one(instance)
    return evaluator


def _run_both():
    sarcasm_n = 61_000 if bench_util.FULL_SCALE else 20_000
    extractor = SarcasmFeatureExtractor()
    sarcasm = _prequential(
        (extractor.extract(i)
         for i in SarcasmDatasetGenerator(n_tweets=sarcasm_n).generate()),
        n_classes=2,
        record_every=max(sarcasm_n // 12, 1),
    )
    off_extractor = OffensiveFeatureExtractor()
    offensive = _prequential(
        (off_extractor.extract(t)
         for t in OffensiveDatasetGenerator().generate()),
        n_classes=3,
        record_every=1_500,
    )
    return sarcasm, offensive


def test_fig17_related_behaviors(benchmark):
    sarcasm, offensive = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    rows = []
    for point in sarcasm.history:
        rows.append(["Sarcasm", point.n_seen, "accuracy", point.accuracy,
                     SARCASM_REPORTED_ACCURACY])
    for point in offensive.history:
        rows.append(["Offensive", point.n_seen, "f1", point.f1,
                     OFFENSIVE_REPORTED_F1])
    bench_util.report(
        "fig17_related_behaviors",
        "Fig. 17 — streaming HT vs originally reported (batch) results",
        ["dataset", "tweets", "metric", "streaming HT", "original"],
        rows,
        notes=[
            "paper: sarcasm converges toward 93% accuracy; offensive "
            "climbs to ~73% F1 over 16k tweets",
        ],
    )
    # Sarcasm: converges to the original's ballpark (>= 90%, near 93%).
    final_accuracy = sarcasm.summary()["accuracy"]
    assert final_accuracy > 0.90
    assert abs(final_accuracy - SARCASM_REPORTED_ACCURACY) < 0.035
    # Offensive: climbs toward the original 74% F1 (within ~4 points).
    final_f1 = offensive.summary()["f1"]
    assert abs(final_f1 - OFFENSIVE_REPORTED_F1) < 0.04
    # Performance improves over the stream for both datasets.
    assert sarcasm.history[-1].accuracy >= sarcasm.history[0].accuracy
    assert offensive.history[-1].f1 >= offensive.history[0].f1 - 0.01
