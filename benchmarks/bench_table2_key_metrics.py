"""Table II: accuracy / precision / recall / F1 for HT, ARF, SLR.

All three toggles enabled (p=ON, n=ON, ad=ON), both class setups.
Paper values: 3-class HT .89/.85/.89/.87, ARF .85/.80/.85/.83,
SLR .89/.85/.89/.87; 2-class HT .93/.92/.90/.91, ARF .92/.85/.93/.89,
SLR .93/.91/.91/.91.
"""

from __future__ import annotations

import bench_util

PAPER = {
    (3, "ht"): (0.89, 0.85, 0.89, 0.87),
    (3, "arf"): (0.85, 0.80, 0.85, 0.83),
    (3, "slr"): (0.89, 0.85, 0.89, 0.87),
    (2, "ht"): (0.93, 0.92, 0.90, 0.91),
    (2, "arf"): (0.92, 0.85, 0.93, 0.89),
    (2, "slr"): (0.93, 0.91, 0.91, 0.91),
}


def _run_all():
    return {
        (c, model): bench_util.run_config(n_classes=c, model=model)
        for c in (2, 3)
        for model in ("ht", "arf", "slr")
    }


def test_table2_key_metrics(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    for (c, model), result in sorted(results.items()):
        m = result.metrics
        paper = PAPER[(c, model)]
        rows.append([
            f"{c}-class", model.upper(),
            m["accuracy"], m["precision"], m["recall"], m["f1"],
            f"{paper[0]}/{paper[1]}/{paper[2]}/{paper[3]}",
        ])
    bench_util.report(
        "table2_key_metrics",
        "Table II — key metrics (ours vs paper acc/prec/rec/F1)",
        ["setup", "model", "accuracy", "precision", "recall", "f1", "paper"],
        rows,
    )
    metrics = {k: r.metrics for k, r in results.items()}
    for (c, model), m in metrics.items():
        paper_f1 = PAPER[(c, model)][3]
        # Every model lands within ~6 F1 points of the paper's value.
        assert abs(m["f1"] - paper_f1) < 0.06, (c, model, m["f1"])
    # Shape: 2-class beats 3-class for every model.
    for model in ("ht", "arf", "slr"):
        assert metrics[(2, model)]["f1"] > metrics[(3, model)]["f1"]
    # Shape: HT and ARF stay close. (The paper's ARF lags HT by ~4%; our
    # from-scratch ARF does not reproduce that streamDM-specific gap —
    # recorded as a deviation in EXPERIMENTS.md.)
    assert abs(metrics[(3, "ht")]["f1"] - metrics[(3, "arf")]["f1"]) < 0.05
