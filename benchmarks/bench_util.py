"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper. Results
are printed and also written to ``benchmarks/results/<name>.txt`` so
they survive pytest's output capture. Benches that pass a ``summary``
dict additionally persist a machine-readable ``BENCH_<name>.json`` at
the repo root, so CI and regression tooling can diff headline numbers
(throughput, stage shares) without parsing the text tables.

Scale control: experiments default to a reduced stream
(``REPRO_BENCH_TWEETS``, default 12,000 tweets) so the whole suite runs
in minutes; set ``REPRO_BENCH_FULL=1`` to run at the paper's full 86k
scale. Pipeline runs are cached per configuration within a session, so
benches that share runs (e.g. Table II and Figs. 11/12) pay once.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline, PipelineResult
from repro.data.synthetic import AbusiveDatasetGenerator

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "") == "1"
DEFAULT_TWEETS = int(os.environ.get("REPRO_BENCH_TWEETS", "12000"))


def bench_tweets() -> Optional[int]:
    """Stream size for the accuracy experiments (None = paper scale)."""
    return None if FULL_SCALE else DEFAULT_TWEETS


@lru_cache(maxsize=4)
def abusive_stream(n_tweets: Optional[int] = None, seed: int = 42):
    """Cached synthetic stream (defaults to the bench scale)."""
    if n_tweets is None:
        n_tweets = bench_tweets()
    return AbusiveDatasetGenerator(n_tweets=n_tweets, seed=seed).generate_list()


@lru_cache(maxsize=64)
def run_config(
    n_classes: int = 3,
    model: str = "ht",
    preprocessing: bool = True,
    normalization: str = "minmax_no_outliers",
    adaptive_bow: bool = True,
    n_tweets: Optional[int] = None,
    seed: int = 42,
    model_params: Tuple[Tuple[str, object], ...] = (),
) -> PipelineResult:
    """Run (and cache) one pipeline configuration over the bench stream."""
    config = PipelineConfig(
        n_classes=n_classes,
        model=model,
        preprocessing=preprocessing,
        normalization=normalization,
        adaptive_bow=adaptive_bow,
        model_params=dict(model_params),
        seed=seed,
    )
    pipeline = AggressionDetectionPipeline(config)
    return pipeline.process_stream(abusive_stream(n_tweets, seed))


def report(
    name: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: Sequence[str] = (),
    summary: Optional[Dict[str, object]] = None,
) -> str:
    """Format, print, and persist one experiment's result table.

    ``summary`` (optional) is the experiment's headline numbers; when
    given, it is written as ``BENCH_<name>.json`` at the repo root via
    :func:`write_bench_summary`.
    """
    widths = [
        max(len(str(headers[col])), *(len(_fmt(row[col])) for row in rows))
        for col in range(len(headers))
    ]
    lines = [title, "=" * len(title), ""]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths))
        )
    if notes:
        lines.append("")
        lines.extend(f"note: {note}" for note in notes)
    scale = "paper scale (86k)" if FULL_SCALE else f"{DEFAULT_TWEETS} tweets"
    lines.append("")
    lines.append(f"[workload: {scale}]")
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    if summary is not None:
        write_bench_summary(name, title, summary)
    print("\n" + text)
    return text


def write_bench_summary(
    name: str, title: str, summary: Dict[str, object]
) -> Path:
    """Persist one bench's headline numbers as ``BENCH_<name>.json``.

    The file lands at the repo root (next to ``CHANGES.md``) so CI and
    regression tooling can pick every ``BENCH_*.json`` up with one glob
    and diff runs without parsing the human-readable tables. Values
    must be JSON-serializable; non-finite floats are stringified.
    """
    payload = {
        "bench": name,
        "title": title,
        "workload": {
            "full_scale": FULL_SCALE,
            "n_tweets": None if FULL_SCALE else DEFAULT_TWEETS,
        },
        "summary": summary,
    }
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return path


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def curve_rows(
    curves: Dict[str, List[Tuple[int, float]]], step: int = 1
) -> List[List[object]]:
    """Align several (n_seen, value) curves into table rows."""
    names = list(curves)
    xs = sorted({x for curve in curves.values() for x, _ in curve})[::step]
    lookup = {name: dict(curve) for name, curve in curves.items()}
    rows: List[List[object]] = []
    for x in xs:
        row: List[object] = [x]
        for name in names:
            value = lookup[name].get(x)
            row.append("-" if value is None else value)
        rows.append(row)
    return rows
