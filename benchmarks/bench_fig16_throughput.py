"""Fig. 16: throughput per streaming system vs workload size.

Paper headline numbers: MOA and SparkSingle constant around ~1,100 and
~950 tweets/s; SparkLocal ~6k tweets/s; SparkCluster up to ~14.5k
tweets/s, both plateauing after ~1M tweets — comfortably above the
reported Twitter Firehose rate of ~9k tweets/s with 3 machines.
"""

from __future__ import annotations

import os

import bench_util
from repro.core.config import PipelineConfig
from repro.engine.cluster import (
    PAPER_SPECS,
    SimulatedCluster,
    machines_needed_for_firehose,
)
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.sequential import SequentialEngine

WORKLOADS = (250_000, 500_000, 1_000_000, 1_500_000, 2_000_000)
FIREHOSE_RATE = 9_000.0


def _simulate():
    grid = {}
    for spec in PAPER_SPECS:
        cluster = SimulatedCluster(spec)
        grid[spec.name] = [cluster.throughput(n) for n in WORKLOADS]
    return grid


def test_fig16_throughput(benchmark):
    grid = benchmark.pedantic(_simulate, rounds=1, iterations=1)
    rows = [
        [f"{n // 1000}k"]
        + [round(grid[spec.name][i]) for spec in PAPER_SPECS]
        for i, n in enumerate(WORKLOADS)
    ]
    machines = machines_needed_for_firehose()
    bench_util.report(
        "fig16_throughput",
        "Fig. 16 — throughput (tweets/s) per streaming system (cost model)",
        ["tweets"] + [spec.name for spec in PAPER_SPECS],
        rows,
        notes=[
            f"reported Twitter Firehose: ~{FIREHOSE_RATE:,.0f} tweets/s",
            f"machines needed to sustain the Firehose (with headroom): "
            f"{machines}",
        ],
        summary={
            "workloads": list(WORKLOADS),
            "throughput_tweets_per_s": {
                spec.name: grid[spec.name] for spec in PAPER_SPECS
            },
            "firehose_rate_tweets_per_s": FIREHOSE_RATE,
            "machines_for_firehose": machines,
        },
    )
    throughput = {spec.name: dict(zip(WORKLOADS, grid[spec.name]))
                  for spec in PAPER_SPECS}
    # Paper-calibrated plateaus.
    assert abs(throughput["MOA"][2_000_000] - 1100) < 50
    assert abs(throughput["SparkLocal"][2_000_000] - 6000) < 600
    assert abs(throughput["SparkCluster"][2_000_000] - 14_500) < 1500
    # Plateau after ~1M tweets for the parallel setups.
    for name in ("SparkLocal", "SparkCluster"):
        t1m = throughput[name][1_000_000]
        t2m = throughput[name][2_000_000]
        assert (t2m - t1m) / t1m < 0.10
    # The cluster comfortably covers the Firehose; 3 machines suffice.
    assert throughput["SparkCluster"][2_000_000] > FIREHOSE_RATE
    assert machines == 3


def test_fig16_real_engine_throughput(benchmark):
    """Real engine runs (not the cost model): throughput + stage timings.

    Compares the single-thread sequential baseline against the
    micro-batch engine on the serial and multi-process runners, and
    reports the driver's per-stage timing breakdown — the evidence that
    per-batch driver work is merging O(partitions) aggregates, not
    looping over O(tweets) records.
    """
    tweets = bench_util.abusive_stream()
    config = PipelineConfig(n_classes=3)
    n_workers = min(4, os.cpu_count() or 1)

    def run_all():
        sequential = SequentialEngine(config).run(tweets)
        with MicroBatchEngine(
            config, n_partitions=4, batch_size=2000
        ) as engine:
            serial_mb = engine.run(tweets)
        with MicroBatchEngine(
            config,
            n_partitions=4,
            batch_size=2000,
            runner="processes",
            n_workers=n_workers,
        ) as engine:
            process_mb = engine.run(tweets)
        return sequential, serial_mb, process_mb

    sequential, serial_mb, process_mb = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    stage_cols = list(serial_mb.stage_seconds.as_dict())
    rows = [
        ["sequential", round(sequential.throughput)] + ["-"] * len(stage_cols),
        ["microbatch/serial", round(serial_mb.throughput)]
        + [serial_mb.stage_seconds.as_dict()[s] for s in stage_cols],
        [f"microbatch/{n_workers}proc", round(process_mb.throughput)]
        + [process_mb.stage_seconds.as_dict()[s] for s in stage_cols],
    ]
    bench_util.report(
        "fig16_real_engine_throughput",
        "Fig. 16 (companion) — real engine throughput and stage timings (s)",
        ["engine", "tweets/s"] + stage_cols,
        rows,
        notes=[
            f"{len(tweets)} tweets, 4 partitions x 2000-tweet batches, "
            f"{n_workers} worker processes ({os.cpu_count()} cores visible)",
            f"driver-side merge/drain per engine: serial "
            f"{serial_mb.stage_seconds.driver_seconds:.3f} s, multi-process "
            f"{process_mb.stage_seconds.driver_seconds:.3f} s",
        ],
        summary={
            "n_tweets": len(tweets),
            "n_workers": n_workers,
            "n_cpus": os.cpu_count() or 1,
            "speedup_processes_vs_sequential": (
                process_mb.throughput / sequential.throughput
            ),
            "throughput_tweets_per_s": {
                "sequential": sequential.throughput,
                "microbatch_serial": serial_mb.throughput,
                "microbatch_processes": process_mb.throughput,
            },
            "sequential_stage_seconds": sequential.stage_seconds,
            "microbatch_serial_stage_seconds": serial_mb.stage_seconds.as_dict(),
            "microbatch_processes_stage_seconds": (
                process_mb.stage_seconds.as_dict()
            ),
        },
    )
    for result in (serial_mb, process_mb):
        stages = result.stage_seconds
        assert result.n_processed == len(tweets)
        assert stages.partition_execute > 0
        assert all(v >= 0 for v in stages.as_dict().values())
        # Driver per-batch work is O(partitions), not O(tweets).
        assert stages.driver_seconds < 0.5 * stages.partition_execute
    if (os.cpu_count() or 1) >= 2:
        # With real cores available, multi-process partition execution
        # must at least keep up with the single-thread baseline.
        assert process_mb.throughput >= sequential.throughput
