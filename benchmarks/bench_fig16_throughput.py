"""Fig. 16: throughput per streaming system vs workload size.

Paper headline numbers: MOA and SparkSingle constant around ~1,100 and
~950 tweets/s; SparkLocal ~6k tweets/s; SparkCluster up to ~14.5k
tweets/s, both plateauing after ~1M tweets — comfortably above the
reported Twitter Firehose rate of ~9k tweets/s with 3 machines.
"""

from __future__ import annotations

import os

import bench_util
from repro.core.config import PipelineConfig
from repro.engine.cluster import (
    PAPER_SPECS,
    SimulatedCluster,
    machines_needed_for_firehose,
)
from repro.engine.microbatch import MicroBatchEngine
from repro.engine.sequential import SequentialEngine

WORKLOADS = (250_000, 500_000, 1_000_000, 1_500_000, 2_000_000)
FIREHOSE_RATE = 9_000.0


def _simulate():
    grid = {}
    for spec in PAPER_SPECS:
        cluster = SimulatedCluster(spec)
        grid[spec.name] = [cluster.throughput(n) for n in WORKLOADS]
    return grid


def test_fig16_throughput(benchmark):
    grid = benchmark.pedantic(_simulate, rounds=1, iterations=1)
    rows = [
        [f"{n // 1000}k"]
        + [round(grid[spec.name][i]) for spec in PAPER_SPECS]
        for i, n in enumerate(WORKLOADS)
    ]
    machines = machines_needed_for_firehose()
    bench_util.report(
        "fig16_throughput",
        "Fig. 16 — throughput (tweets/s) per streaming system (cost model)",
        ["tweets"] + [spec.name for spec in PAPER_SPECS],
        rows,
        notes=[
            f"reported Twitter Firehose: ~{FIREHOSE_RATE:,.0f} tweets/s",
            f"machines needed to sustain the Firehose (with headroom): "
            f"{machines}",
        ],
        summary={
            "workloads": list(WORKLOADS),
            "n_workers": {
                spec.name: spec.total_cores for spec in PAPER_SPECS
            },
            "n_partitions": {
                spec.name: spec.total_cores for spec in PAPER_SPECS
            },
            "throughput_tweets_per_s": {
                spec.name: grid[spec.name] for spec in PAPER_SPECS
            },
            "firehose_rate_tweets_per_s": FIREHOSE_RATE,
            "machines_for_firehose": machines,
        },
    )
    throughput = {spec.name: dict(zip(WORKLOADS, grid[spec.name]))
                  for spec in PAPER_SPECS}
    # Paper-calibrated plateaus.
    assert abs(throughput["MOA"][2_000_000] - 1100) < 50
    assert abs(throughput["SparkLocal"][2_000_000] - 6000) < 600
    assert abs(throughput["SparkCluster"][2_000_000] - 14_500) < 1500
    # Plateau after ~1M tweets for the parallel setups.
    for name in ("SparkLocal", "SparkCluster"):
        t1m = throughput[name][1_000_000]
        t2m = throughput[name][2_000_000]
        assert (t2m - t1m) / t1m < 0.10
    # The cluster comfortably covers the Firehose; 3 machines suffice.
    assert throughput["SparkCluster"][2_000_000] > FIREHOSE_RATE
    assert machines == 3


def _env_int(name: str) -> "int | None":
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else None


def _visible_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine; a core-pinned runner (CI
    shards, cgroup limits) sees fewer. The affinity mask is the honest
    number for "how much parallel speedup is physically possible".
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _worker_sweep(n_workers: int) -> "list[int]":
    """1, 2, 4, ... doubling up to (and always including) n_workers."""
    counts = {n_workers}
    w = 1
    while w < n_workers:
        counts.add(w)
        w *= 2
    return sorted(counts)


def test_fig16_real_engine_throughput(benchmark):
    """Real engine runs (not the cost model): throughput + stage timings.

    Compares the single-thread sequential baseline against the
    micro-batch engine on the serial and multi-process runners — the
    latter swept across 1..N workers, with and without the numpy
    ``fast_math`` kernels — and reports the driver's per-stage timing
    breakdown: the evidence that per-batch driver work is merging
    O(partitions) aggregates, not looping over O(tweets) records.

    Worker/partition counts scale with the visible cores; override with
    ``FIG16_WORKERS`` / ``FIG16_PARTITIONS``.
    """
    tweets = bench_util.abusive_stream()
    config = PipelineConfig(n_classes=3)
    fast_config = PipelineConfig(n_classes=3, fast_math=True)
    n_cpus = _visible_cpus()
    n_workers = _env_int("FIG16_WORKERS") or n_cpus
    n_partitions = _env_int("FIG16_PARTITIONS") or max(4, n_workers)
    sweep_counts = _worker_sweep(n_workers)

    def run_microbatch(
        cfg, runner=None, workers=None, telemetry=True, pipelined=False
    ):
        with MicroBatchEngine(
            cfg,
            n_partitions=n_partitions,
            batch_size=2000,
            runner=runner,
            n_workers=workers,
            worker_telemetry=telemetry,
            pipelined=pipelined,
        ) as engine:
            result = engine.run(tweets)
            return result, engine.metrics, engine.last_trace

    def run_all():
        sequential = SequentialEngine(config).run(tweets)
        serial_mb, _, _ = run_microbatch(config)
        scalar_mb, scalar_reg, scalar_trace = run_microbatch(
            config, "processes", n_workers
        )
        # Same configuration with worker telemetry stripped: the delta
        # is the cross-process tracing overhead (console/profiling off).
        # This is the *raw* engine throughput; the telemetry-on runs are
        # the *instrumented* throughput (what the scorecard reports).
        dark_mb, _, _ = run_microbatch(
            config, "processes", n_workers, telemetry=False
        )
        # Pipelined double-buffering (same scalar config, telemetry on
        # and off): merge/drain of batch k overlaps batch k+1's compute.
        pipe_mb, pipe_reg, _ = run_microbatch(
            config, "processes", n_workers, pipelined=True
        )
        pipe_dark, _, _ = run_microbatch(
            config, "processes", n_workers, telemetry=False, pipelined=True
        )
        # Partition-scaling sweep: pipelined + fast_math is the
        # headline configuration (Fig. 16's SparkLocal analogue).
        sweep = {
            w: run_microbatch(
                fast_config, "processes", w, pipelined=True
            )[0]
            for w in sweep_counts
        }
        return (
            sequential, serial_mb, scalar_mb, scalar_reg, scalar_trace,
            dark_mb, pipe_mb, pipe_reg, pipe_dark, sweep,
        )

    (
        sequential, serial_mb, scalar_mb, scalar_reg, scalar_trace,
        dark_mb, pipe_mb, pipe_reg, pipe_dark, sweep,
    ) = benchmark.pedantic(run_all, rounds=1, iterations=1)
    process_mb = sweep[n_workers]
    # Worker-side spans ship inside partition outputs and are stitched
    # driver-side; their "partition" root spans must account for (at
    # least) the driver-observed partition_execute wall time.
    worker_partition_s = scalar_mb.worker_stage_seconds.get("partition", 0.0)
    driver_partition_s = scalar_mb.stage_seconds.partition_execute
    trace_cover = (
        worker_partition_s / driver_partition_s
        if driver_partition_s > 0
        else float("nan")
    )
    telemetry_overhead = (
        dark_mb.throughput / scalar_mb.throughput - 1.0
        if scalar_mb.throughput > 0
        else float("nan")
    )
    from repro.obs.slo import Scorecard

    scorecard = Scorecard.from_registry(
        scalar_reg,
        f1=scalar_mb.metrics.get("f1", float("nan")),
        throughput=scalar_mb.throughput,
    )
    stage_cols = list(serial_mb.stage_seconds.as_dict())

    def stage_row(label, result):
        return [label, round(result.throughput)] + [
            result.stage_seconds.as_dict()[s] for s in stage_cols
        ]

    rows = [
        ["sequential", round(sequential.throughput)] + ["-"] * len(stage_cols),
        stage_row("microbatch/serial", serial_mb),
        stage_row(f"microbatch/{n_workers}proc", scalar_mb),
        stage_row(f"microbatch/{n_workers}proc+pipe", pipe_mb),
    ] + [
        stage_row(f"microbatch/{w}proc+pipe+fast", sweep[w])
        for w in sweep_counts
    ]
    bench_util.report(
        "fig16_real_engine_throughput",
        "Fig. 16 (companion) — real engine throughput and stage timings (s)",
        ["engine", "tweets/s"] + stage_cols,
        rows,
        notes=[
            f"{len(tweets)} tweets, {n_partitions} partitions x 2000-tweet "
            f"batches, up to {n_workers} worker processes "
            f"({n_cpus} cores visible)",
            "fast rows use the numpy fast_math kernels; "
            "scalar rows are the bit-exact default",
            f"driver-side merge/drain per engine: serial "
            f"{serial_mb.stage_seconds.driver_seconds:.3f} s, multi-process "
            f"{process_mb.stage_seconds.driver_seconds:.3f} s",
            "worker stage seconds (processes, scalar): "
            + ", ".join(
                f"{stage}={seconds:.3f}s"
                for stage, seconds in sorted(
                    scalar_mb.worker_stage_seconds.items()
                )
            ),
            f"stitched-trace coverage: worker partition spans sum to "
            f"{trace_cover:.2f}x the driver's partition_execute wall",
            f"worker-telemetry overhead: {telemetry_overhead:+.1%} "
            f"throughput (telemetry-off vs on, console/profiling off)",
            f"raw engine throughput (telemetry off): "
            f"{dark_mb.throughput:,.0f} t/s sync, "
            f"{pipe_dark.throughput:,.0f} t/s pipelined; instrumented "
            f"(scorecard-comparable): {scalar_mb.throughput:,.0f} t/s "
            f"sync, {pipe_mb.throughput:,.0f} t/s pipelined",
            f"n_cpus is the affinity mask ({n_cpus} runnable), "
            f"not os.cpu_count() ({os.cpu_count()})",
        ],
        summary={
            "n_tweets": len(tweets),
            "n_workers": n_workers,
            "n_partitions": n_partitions,
            "n_cpus": n_cpus,
            "n_cpus_machine": os.cpu_count(),
            "fast_math": True,
            "pipelined": True,
            "speedup_processes_vs_sequential": (
                process_mb.throughput / sequential.throughput
            ),
            "speedup_scalar_processes_vs_sequential": (
                scalar_mb.throughput / sequential.throughput
            ),
            "speedup_pipelined_vs_sync_processes": (
                pipe_mb.throughput / scalar_mb.throughput
            ),
            "partition_sweep_tweets_per_s": {
                str(w): sweep[w].throughput for w in sweep_counts
            },
            "throughput_tweets_per_s": {
                "sequential": sequential.throughput,
                "microbatch_serial": serial_mb.throughput,
                "microbatch_processes_scalar": scalar_mb.throughput,
                "microbatch_processes_pipelined": pipe_mb.throughput,
                "microbatch_processes": process_mb.throughput,
            },
            # Raw = worker telemetry off (no per-tweet stage histograms
            # shipped); instrumented = default telemetry, the number the
            # Scorecard reports. The two are NOT comparable.
            "throughput_raw_tweets_per_s": {
                "microbatch_processes": dark_mb.throughput,
                "microbatch_processes_pipelined": pipe_dark.throughput,
            },
            "throughput_instrumented_tweets_per_s": {
                "microbatch_processes": scalar_mb.throughput,
                "microbatch_processes_pipelined": pipe_mb.throughput,
            },
            "transport_bytes_total": {
                "tweets": pipe_reg.counter_value(
                    "transport_bytes_total",
                    engine="microbatch", channel="tweets",
                ),
                "broadcast": pipe_reg.counter_value(
                    "transport_bytes_total",
                    engine="microbatch", channel="broadcast",
                ),
            },
            "tweet_block_encode_seconds_sum": pipe_reg.histogram_sum(
                "tweet_block_encode_seconds", engine="microbatch"
            ),
            "driver_idle_seconds_sum": pipe_reg.histogram_sum(
                "driver_idle_seconds", engine="microbatch"
            ),
            "worker_idle_seconds_sum": pipe_reg.histogram_sum(
                "worker_idle_seconds", engine="microbatch"
            ),
            "sequential_stage_seconds": sequential.stage_seconds,
            "microbatch_serial_stage_seconds": serial_mb.stage_seconds.as_dict(),
            "microbatch_processes_stage_seconds": (
                process_mb.stage_seconds.as_dict()
            ),
            "worker_stage_seconds": dict(scalar_mb.worker_stage_seconds),
            "trace_coverage_worker_vs_driver": trace_cover,
            "telemetry_overhead_fraction": telemetry_overhead,
            "broadcast_encode_seconds_sum": scalar_reg.histogram_sum(
                "broadcast_encode_seconds", engine="microbatch"
            ),
            "broadcast_decode_seconds_sum": scalar_reg.histogram_sum(
                "broadcast_decode_seconds"
            ),
            "broadcast_decode_total": scalar_reg.total(
                "broadcast_decode_total"
            ),
            "scorecard": scorecard.as_dict(),
        },
    )
    for result in (serial_mb, scalar_mb, *sweep.values()):
        stages = result.stage_seconds
        assert result.n_processed == len(tweets)
        assert stages.partition_execute > 0
        assert all(v >= 0 for v in stages.as_dict().values())
        # Driver per-batch work is O(partitions), not O(tweets).
        assert stages.driver_seconds < 0.5 * stages.partition_execute
    # The stitched trace of the last processes batch must carry real
    # per-partition worker subtrees (pid + spans under one root).
    assert scalar_trace is not None
    traced = [p for p in scalar_trace["partitions"] if p.get("spans")]
    assert traced, "no worker telemetry reached the driver"
    for node in traced:
        assert node["spans"][0]["name"] == "partition"
        assert node["pid"] > 0
    if n_cpus >= 2:
        # With real cores available the pipelined multi-process path
        # must beat the single-thread baseline outright.
        assert process_mb.throughput > sequential.throughput
        # Partition scaling: more workers must not lose throughput
        # (small tolerance for scheduler noise), and the full pool must
        # beat one worker.
        ordered = [sweep[w].throughput for w in sweep_counts]
        for slower, faster in zip(ordered, ordered[1:]):
            assert faster >= 0.9 * slower
        if len(ordered) > 1:
            assert ordered[-1] > ordered[0]
        # Worker-observed partition time must account for >= 90% of the
        # driver-observed partition_execute wall (under parallelism the
        # per-worker sum normally exceeds the driver wall).
        assert trace_cover >= 0.9
