"""Fig. 16: throughput per streaming system vs workload size.

Paper headline numbers: MOA and SparkSingle constant around ~1,100 and
~950 tweets/s; SparkLocal ~6k tweets/s; SparkCluster up to ~14.5k
tweets/s, both plateauing after ~1M tweets — comfortably above the
reported Twitter Firehose rate of ~9k tweets/s with 3 machines.
"""

from __future__ import annotations

import bench_util
from repro.engine.cluster import (
    PAPER_SPECS,
    SimulatedCluster,
    machines_needed_for_firehose,
)

WORKLOADS = (250_000, 500_000, 1_000_000, 1_500_000, 2_000_000)
FIREHOSE_RATE = 9_000.0


def _simulate():
    grid = {}
    for spec in PAPER_SPECS:
        cluster = SimulatedCluster(spec)
        grid[spec.name] = [cluster.throughput(n) for n in WORKLOADS]
    return grid


def test_fig16_throughput(benchmark):
    grid = benchmark.pedantic(_simulate, rounds=1, iterations=1)
    rows = [
        [f"{n // 1000}k"]
        + [round(grid[spec.name][i]) for spec in PAPER_SPECS]
        for i, n in enumerate(WORKLOADS)
    ]
    machines = machines_needed_for_firehose()
    bench_util.report(
        "fig16_throughput",
        "Fig. 16 — throughput (tweets/s) per streaming system (cost model)",
        ["tweets"] + [spec.name for spec in PAPER_SPECS],
        rows,
        notes=[
            f"reported Twitter Firehose: ~{FIREHOSE_RATE:,.0f} tweets/s",
            f"machines needed to sustain the Firehose (with headroom): "
            f"{machines}",
        ],
    )
    throughput = {spec.name: dict(zip(WORKLOADS, grid[spec.name]))
                  for spec in PAPER_SPECS}
    # Paper-calibrated plateaus.
    assert abs(throughput["MOA"][2_000_000] - 1100) < 50
    assert abs(throughput["SparkLocal"][2_000_000] - 6000) < 600
    assert abs(throughput["SparkCluster"][2_000_000] - 14_500) < 1500
    # Plateau after ~1M tweets for the parallel setups.
    for name in ("SparkLocal", "SparkCluster"):
        t1m = throughput[name][1_000_000]
        t2m = throughput[name][2_000_000]
        assert (t2m - t1m) / t1m < 0.10
    # The cluster comfortably covers the Firehose; 3 machines suffice.
    assert throughput["SparkCluster"][2_000_000] > FIREHOSE_RATE
    assert machines == 3
