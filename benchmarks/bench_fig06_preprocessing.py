"""Fig. 6: effect of preprocessing on HT (2- and 3-class).

The paper finds preprocessing helps and stabilizes the classifier, and
that the 2-class problem scores ~4% higher F1 than the 3-class one.
"""

from __future__ import annotations

import bench_util


def _run_all():
    results = {}
    for c in (2, 3):
        for p in (True, False):
            key = f"HT, p={'ON' if p else 'OFF'}, c={c}"
            results[key] = bench_util.run_config(
                n_classes=c, model="ht", preprocessing=p
            )
    return results


def test_fig06_preprocessing(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    curves = {k: r.curve("window_f1") for k, r in results.items()}
    rows = bench_util.curve_rows(curves, step=2)
    bench_util.report(
        "fig06_preprocessing",
        "Fig. 6 — F1 vs tweets: preprocessing ON/OFF (HT, n=ON, ad=ON)",
        ["tweets"] + list(curves),
        rows,
        notes=["final F1: " + ", ".join(
            f"{k}={r.metrics['f1']:.3f}" for k, r in results.items()
        )],
    )
    f1 = {k: r.metrics["f1"] for k, r in results.items()}
    # Preprocessing ON >= OFF for both class setups (paper: ON helps).
    assert f1["HT, p=ON, c=2"] >= f1["HT, p=OFF, c=2"] - 0.005
    assert f1["HT, p=ON, c=3"] >= f1["HT, p=OFF, c=3"] - 0.005
    # 2-class outperforms 3-class by a few points (paper: ~4%).
    assert f1["HT, p=ON, c=2"] > f1["HT, p=ON, c=3"] + 0.01
