"""Benchmark-suite configuration."""

from __future__ import annotations

import sys
from pathlib import Path

# Make `bench_util` importable regardless of the pytest rootdir.
sys.path.insert(0, str(Path(__file__).parent))
