"""Figs. 13/14: streaming HT vs batch decision tree, both class setups.

Two batch regimes over the 10 collection days:
* train-first-day / test-all-others — the stale model, which slowly
  degrades as vocabulary drifts (paper: ~2% F1 loss by day 10);
* train-one-day / test-next-day — the daily-retrained pseudo-stream.

The streaming HT must perform at least as well as both regimes
(3-class), and within a point of them (2-class).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

import bench_util
from repro.batchml.decision_tree import BatchDecisionTree, instances_to_arrays
from repro.core.config import PipelineConfig
from repro.core.evaluation import ConfusionMatrix
from repro.core.pipeline import AggressionDetectionPipeline
from repro.data.synthetic import AbusiveDatasetGenerator


@lru_cache(maxsize=2)
def _experiment(n_classes: int) -> Dict[str, List[float]]:
    generator = AbusiveDatasetGenerator(
        n_tweets=bench_util.bench_tweets() or 85_984, seed=42
    )
    days = generator.generate_days()

    # Extract per-day feature matrices once (fixed BoW, like WEKA would).
    from repro.core.features import FeatureExtractor, LabelEncoder

    extractor = FeatureExtractor(encoder=LabelEncoder(n_classes))
    day_instances = [
        [extractor.extract(t, update_bow=False) for t in day] for day in days
    ]
    day_arrays = [instances_to_arrays(insts) for insts in day_instances]

    def batch_f1(train_days: List[int], test_day: int) -> float:
        import numpy as np

        X = np.vstack([day_arrays[d][0] for d in train_days])
        y = np.concatenate([day_arrays[d][1] for d in train_days])
        tree = BatchDecisionTree(n_classes=n_classes).fit(X, y)
        matrix = ConfusionMatrix(n_classes)
        Xt, yt = day_arrays[test_day]
        for true, pred in zip(yt, tree.predict(Xt)):
            matrix.add(int(true), int(pred))
        return matrix.weighted_f1

    stale = [batch_f1([0], d) for d in range(1, len(days))]
    retrained = [batch_f1([d - 1], d) for d in range(1, len(days))]

    # Streaming HT with per-day F1 (adaptive BoW on, as in the paper).
    pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=n_classes))
    per_day: List[float] = []
    for day in days:
        matrix = ConfusionMatrix(n_classes)
        for tweet in day:
            classified = pipeline.process(tweet)
            assert classified.instance.y is not None
            matrix.add(classified.instance.y, classified.predicted)
        per_day.append(matrix.weighted_f1)
    return {
        "ht_daily": per_day,
        "dt_stale": stale,
        "dt_retrained": retrained,
    }


def _report(n_classes: int, fig: str) -> Dict[str, List[float]]:
    data = _experiment(n_classes)
    rows = []
    for day in range(1, len(data["ht_daily"])):
        rows.append([
            day + 1,
            data["ht_daily"][day],
            data["dt_stale"][day - 1],
            data["dt_retrained"][day - 1],
        ])
    bench_util.report(
        f"{fig}_stream_vs_batch_{n_classes}class",
        f"Fig. {13 if n_classes == 3 else 14} — per-day F1: streaming HT "
        f"vs batch DT regimes ({n_classes}-class)",
        ["day", "HT (streaming)", "DT train-first-day", "DT train-prev-day"],
        rows,
        notes=[
            "paper: HT >= both batch regimes; the stale DT degrades "
            "slowly (~2%) as vocabulary drifts",
        ],
    )
    return data


def test_fig13_stream_vs_batch_3class(benchmark):
    data = benchmark.pedantic(
        lambda: _report(3, "fig13"), rounds=1, iterations=1
    )
    ht_late = sum(data["ht_daily"][-3:]) / 3
    stale_late = sum(data["dt_stale"][-3:]) / 3
    retrained_late = sum(data["dt_retrained"][-3:]) / 3
    # Stale batch model degrades relative to its own start.
    assert data["dt_stale"][-1] < data["dt_stale"][0]
    # HT at least matches both batch regimes late in the stream.
    assert ht_late >= stale_late - 0.01
    assert ht_late >= retrained_late - 0.01


def test_fig14_stream_vs_batch_2class(benchmark):
    data = benchmark.pedantic(
        lambda: _report(2, "fig14"), rounds=1, iterations=1
    )
    ht_late = sum(data["ht_daily"][-3:]) / 3
    retrained_late = sum(data["dt_retrained"][-3:]) / 3
    # Paper: 2-class HT ends on par with the batch DT (<=1 point gap).
    assert ht_late >= retrained_late - 0.015
