"""Extension bench: every streaming model on the same stream.

Beyond the paper's three methods (HT/ARF/SLR), the library ships
streaming kNN and the Oza ensembles; this bench ranks them all on the
2-class problem, with majority-class as the floor. Kappa-M is included
because plain accuracy flatters majority-style predictors on the
imbalanced stream.
"""

from __future__ import annotations

import bench_util

MODELS = ("ht", "arf", "slr", "gnb", "knn", "ozabag", "ozaboost", "majority")

_STREAM = 6000  # kNN is O(window) per tweet; keep the stream moderate


def _run_all():
    results = {}
    for model in MODELS:
        params = ()
        if model == "knn":
            params = (("window_size", 600), ("k", 11))
        results[model] = bench_util.run_config(
            n_classes=2, model=model, n_tweets=_STREAM, model_params=params
        )
    return results


def test_extension_model_zoo(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    for model, result in sorted(
        results.items(), key=lambda kv: kv[1].metrics["f1"], reverse=True
    ):
        m = result.metrics
        rows.append([
            model.upper(), m["accuracy"], m["f1"], m["kappa"], m["kappa_m"],
        ])
    bench_util.report(
        "extension_model_zoo",
        "Extension — all streaming models, 2-class problem",
        ["model", "accuracy", "f1", "kappa", "kappa_m"],
        rows,
        notes=[f"stream: {_STREAM} tweets; majority-class is the floor"],
    )
    f1 = {model: r.metrics["f1"] for model, r in results.items()}
    kappa_m = {model: r.metrics["kappa_m"] for model, r in results.items()}
    # Every real model beats the majority baseline decisively.
    for model in MODELS:
        if model == "majority":
            continue
        assert kappa_m[model] > 0.3, model
    # Prequential majority hovers at the Kappa-M zero point (tiny
    # negative values possible from early-stream mispredictions).
    assert abs(kappa_m["majority"]) < 0.02
    # The paper's headliner (HT) is at or near the top.
    best = max(f1.values())
    assert f1["ht"] > best - 0.03
