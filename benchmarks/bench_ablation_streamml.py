"""Ablation benches for design choices DESIGN.md calls out.

Beyond the paper's own sweeps, these check the implementation-level
choices in the streaming substrate:

* HT leaf prediction rule (naive-Bayes-adaptive vs NB vs majority);
* HT grace period (split-attempt frequency vs accuracy);
* ARF online-bagging Poisson rate;
* ARF drift detection on/off under abrupt concept drift;
* all three normalizer forms (§V-B: minmax-without-outliers ~2% best).
"""

from __future__ import annotations

import random
from typing import Dict, List

import bench_util
from repro.streamml import AdaptiveRandomForest, HoeffdingTree, Instance

_ABLATION_STREAM = 6000


def _prequential_accuracy(model, instances) -> float:
    correct = 0
    for instance in instances:
        correct += model.predict_one(instance.x) == instance.y
        model.learn_one(instance)
    return correct / len(instances)


def test_ablation_leaf_predictor(benchmark):
    def run() -> Dict[str, float]:
        results = {}
        for mode in ("mc", "nb", "nba"):
            f1 = bench_util.run_config(
                n_classes=2,
                model="ht",
                n_tweets=_ABLATION_STREAM,
                model_params=(("leaf_prediction", mode),),
            ).metrics["f1"]
            results[mode] = f1
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_util.report(
        "ablation_leaf_predictor",
        "Ablation — HT leaf prediction rule (2-class F1)",
        ["rule", "f1"],
        [[k, v] for k, v in results.items()],
    )
    # NB-adaptive leaves must beat plain majority-class leaves.
    assert results["nba"] > results["mc"]
    assert results["nba"] >= results["nb"] - 0.02


def test_ablation_grace_period(benchmark):
    def run() -> Dict[int, float]:
        return {
            grace: bench_util.run_config(
                n_classes=2,
                model="ht",
                n_tweets=_ABLATION_STREAM,
                model_params=(("grace_period", grace),),
            ).metrics["f1"]
            for grace in (50, 200, 1000)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_util.report(
        "ablation_grace_period",
        "Ablation — HT grace period (2-class F1)",
        ["grace period", "f1"],
        [[k, v] for k, v in results.items()],
    )
    # All settings should work; Table I's 200 must be competitive.
    assert results[200] >= max(results.values()) - 0.02


def test_ablation_arf_lambda(benchmark):
    def run() -> Dict[float, float]:
        return {
            lam: bench_util.run_config(
                n_classes=2,
                model="arf",
                n_tweets=_ABLATION_STREAM,
                model_params=(
                    ("lambda_poisson", lam),
                    ("ensemble_size", 5),
                ),
            ).metrics["f1"]
            for lam in (1.0, 6.0, 10.0)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_util.report(
        "ablation_arf_lambda",
        "Ablation — ARF online-bagging Poisson rate (2-class F1)",
        ["lambda", "f1"],
        [[k, v] for k, v in results.items()],
    )
    # The reference lambda=6 should be competitive with the best.
    assert results[6.0] >= max(results.values()) - 0.03


def test_ablation_drift_detection(benchmark):
    """ADWIN on/off under abrupt concept drift (synthetic stream)."""

    def make_stream(n, rng, flip):
        out: List[Instance] = []
        for _ in range(n):
            label = rng.random() < 0.5
            effective = (not label) if flip else label
            out.append(Instance(
                x=(rng.gauss(2.5 if effective else 0.0, 1.0),
                   rng.gauss(0.0, 1.0)),
                y=int(label),
            ))
        return out

    def run() -> Dict[str, float]:
        results = {}
        for drift_on in (True, False):
            rng = random.Random(5)
            forest = AdaptiveRandomForest(
                n_classes=2, ensemble_size=5, seed=3,
                disable_drift_detection=not drift_on,
            )
            before = make_stream(4000, rng, flip=False)
            after = make_stream(6000, rng, flip=True)
            for inst in before:
                forest.learn_one(inst)
            # Accuracy on the post-drift regime while adapting to it.
            correct = 0
            for inst in after:
                correct += forest.predict_one(inst.x) == inst.y
                forest.learn_one(inst)
            results["ADWIN on" if drift_on else "ADWIN off"] = correct / len(after)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_util.report(
        "ablation_drift_detection",
        "Ablation — ARF drift detection under abrupt concept flip",
        ["setting", "post-drift accuracy"],
        [[k, v] for k, v in results.items()],
    )
    assert results["ADWIN on"] > results["ADWIN off"] + 0.03


def test_ablation_normalizers(benchmark):
    """§V-B: minmax-without-outliers is the best form (by ~2%) for SLR."""

    def run() -> Dict[str, float]:
        return {
            kind: bench_util.run_config(
                n_classes=2,
                model="slr",
                normalization=kind,
                n_tweets=_ABLATION_STREAM,
            ).metrics["f1"]
            for kind in ("minmax", "minmax_no_outliers", "zscore", "none")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    bench_util.report(
        "ablation_normalizers",
        "Ablation — normalization forms (SLR, 2-class F1)",
        ["form", "f1"],
        [[k, v] for k, v in results.items()],
        notes=["paper: minmax without outliers ~2% better than the rest"],
    )
    best_form = max(results, key=results.get)
    # Any real normalizer beats none; the robust form is competitive.
    assert results["none"] < min(
        results["minmax"], results["minmax_no_outliers"], results["zscore"]
    )
    assert results["minmax_no_outliers"] >= results[best_form] - 0.02
