"""Ablation (beyond the paper): deobfuscation under filter evasion.

The paper motivates streaming adaptation with users who disguise abuse
("new words or special text characters to signify their aggression but
avoid detection", §I). This bench generates a stream where a large
fraction of aggressive tweets leetspeak their profanity ("sh1t",
"m0ron", "i.d.i.o.t") and measures how much the deobfuscation pass
recovers.
"""

from __future__ import annotations

import bench_util
from repro.core.config import PipelineConfig
from repro.core.pipeline import run_pipeline
from repro.data.synthetic import AbusiveDatasetGenerator, NoiseConfig


def _run_matrix():
    results = {}
    for obfuscated in (False, True):
        noise = NoiseConfig(obfuscation_rate=0.6 if obfuscated else 0.0)
        tweets = AbusiveDatasetGenerator(
            n_tweets=8000, seed=19, noise=noise
        ).generate_list()
        for deob in (False, True):
            key = (
                ("evasive" if obfuscated else "clean") + " stream, "
                + ("deobfuscation ON" if deob else "deobfuscation OFF")
            )
            results[key] = run_pipeline(
                tweets, PipelineConfig(n_classes=2, deobfuscate=deob)
            ).metrics["f1"]
    return results


def test_ablation_deobfuscation(benchmark):
    results = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    bench_util.report(
        "ablation_deobfuscation",
        "Ablation — deobfuscation vs leetspeak filter evasion (2-class F1)",
        ["setting", "f1"],
        [[k, v] for k, v in results.items()],
        notes=["evasive stream: 60% of aggressive tweets disguise their "
               "profanity with leetspeak/separators"],
    )
    clean_off = results["clean stream, deobfuscation OFF"]
    evasive_off = results["evasive stream, deobfuscation OFF"]
    evasive_on = results["evasive stream, deobfuscation ON"]
    clean_on = results["clean stream, deobfuscation ON"]
    # Evasion hurts the plain pipeline...
    assert evasive_off < clean_off - 0.005
    # ...deobfuscation recovers a meaningful share of the loss...
    assert evasive_on > evasive_off + 0.005
    # ...and costs nothing on a clean stream.
    assert clean_on > clean_off - 0.01
