"""Fig. 5: feature importance ranking by Gini importance.

The paper fits a (batch) forest and ranks the 16 features by normalized
total impurity decrease, finding cntSwearWords first, followed by
sentimentScoreNeg, wordsPerSentence, meanWordLength, accountAge, and
cntPosts, with text features dominating overall.
"""

from __future__ import annotations

import bench_util
from repro.batchml.decision_tree import instances_to_arrays
from repro.batchml.random_forest import BatchRandomForest
from repro.core.features import FEATURE_NAMES, FeatureExtractor, LabelEncoder

PAPER_TOP_FEATURES = (
    "cntSwearWords",
    "sentimentScoreNeg",
    "wordsPerSentence",
    "meanWordLength",
    "accountAge",
    "cntPosts",
)


def _importances():
    extractor = FeatureExtractor(encoder=LabelEncoder(3))
    instances = [
        extractor.extract(t, update_bow=False)
        for t in bench_util.abusive_stream()
    ]
    X, y = instances_to_arrays(instances)
    # Drop the BoW feature: Fig. 5 ranks the 16 base features.
    X = X[:, :16]
    forest = BatchRandomForest(
        n_classes=3, n_trees=15, criterion="gini", max_depth=12,
        random_state=1,
    )
    forest.fit(X, y)
    return forest.feature_importances_


def test_fig05_gini_importance(benchmark):
    importances = benchmark.pedantic(_importances, rounds=1, iterations=1)
    ranked = sorted(
        zip(FEATURE_NAMES[:16], importances),
        key=lambda kv: kv[1],
        reverse=True,
    )
    rows = [
        [rank + 1, name, value,
         PAPER_TOP_FEATURES.index(name) + 1
         if name in PAPER_TOP_FEATURES else "-"]
        for rank, (name, value) in enumerate(ranked)
    ]
    bench_util.report(
        "fig05_gini_importance",
        "Fig. 5 — Gini feature importance (descending)",
        ["rank", "feature", "importance", "paper rank"],
        rows,
        notes=["paper top-6: " + ", ".join(PAPER_TOP_FEATURES)],
    )
    # Shape checks, per the paper's reading of Fig. 5: swear count is
    # the most important feature, negative sentiment next, and text
    # features are among the most contributing overall.
    assert ranked[0][0] == "cntSwearWords"
    assert ranked[1][0] == "sentimentScoreNeg"
    our_top8 = {name for name, _ in ranked[:8]}
    text_features = {
        "cntSwearWords", "sentimentScoreNeg", "sentimentScorePos",
        "wordsPerSentence", "meanWordLength", "cntAdjective",
        "cntAdverbs", "cntVerbs", "numUpperCases", "numHashtags",
        "numUrls",
    }
    assert len(our_top8 & text_features) >= 6
    assert len(our_top8 & set(PAPER_TOP_FEATURES)) >= 3
