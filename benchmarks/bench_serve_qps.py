"""Serving-layer capacity: sustained QPS, tail latency, zero-drop swap.

An open-loop bursty load (seeded :class:`ArrivalSchedule` timestamps,
requests fired at their arrival times regardless of completions — the
only honest way to measure a server, since closed-loop clients
self-throttle and hide overload) is driven against a real in-process
:class:`AggressionServer` over HTTP. Halfway through, a new model
snapshot is published and hot-swapped mid-flight. Reported:

* sustained QPS (completed requests / wall-clock span);
* p50/p99 latency over successful requests;
* shed fraction (429s from admission control) and degraded fraction
  (answers below FULL feature fidelity);
* the zero-drop invariant: every request answered, zero 5xx across
  the swap, both snapshot versions observed serving.
"""

from __future__ import annotations

import asyncio
import json
import time

import bench_util
from repro.data.firehose import ArrivalSchedule
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.sequential import SequentialEngine
from repro.serve.server import AggressionServer
from repro.serve.snapshot import SnapshotStore, payload_from_source

N_REQUESTS = 1500
RATE_HZ = 500.0
BURST_FACTOR = 4.0
MAX_INFLIGHT = 8
QUEUE_CAPACITY = 32
DEADLINE_S = 0.05


def _payload(n_tweets, seed):
    engine = SequentialEngine()
    engine.process_many(
        AbusiveDatasetGenerator(
            n_tweets=n_tweets, seed=seed
        ).generate_list()
    )
    return payload_from_source(engine)


async def _http_classify(port, text):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps({"text": text}).encode()
    writer.write(
        b"POST /classify HTTP/1.1\r\nHost: bench\r\n"
        + f"Content-Length: {len(body)}\r\n\r\n".encode()
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(payload) if payload else {}


async def _drive(server, store, payload_v2, texts, arrivals):
    outcomes = []
    swap_at = arrivals[len(arrivals) // 2]
    start = time.perf_counter()

    async def one(index, arrival_s):
        delay = arrival_s - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        sent = time.perf_counter()
        try:
            status, body = await _http_classify(
                server.port, texts[index % len(texts)]
            )
        except (ConnectionError, OSError):
            outcomes.append(
                {"status": -1, "latency_s": 0.0, "version": None,
                 "degraded": False}
            )
            return
        outcomes.append({
            "status": status,
            "latency_s": time.perf_counter() - sent,
            "version": body.get("snapshot_version"),
            "degraded": bool(body.get("degraded")),
        })

    async def publisher():
        delay = swap_at - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        store.publish(payload_v2)

    tasks = [
        asyncio.create_task(one(i, arrival))
        for i, arrival in enumerate(arrivals)
    ]
    tasks.append(asyncio.create_task(publisher()))
    await asyncio.gather(*tasks)
    span_s = time.perf_counter() - start
    return outcomes, span_s


def _quantile(values, q):
    if not values:
        return float("nan")
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def test_serve_qps(benchmark):
    payload_v1 = _payload(600, seed=11)
    payload_v2 = _payload(1200, seed=23)
    texts = [
        tweet.text
        for tweet in AbusiveDatasetGenerator(
            n_tweets=200, seed=41
        ).generate_list()
    ]
    schedule = ArrivalSchedule(
        rate_hz=RATE_HZ, shape="bursty", burst_factor=BURST_FACTOR,
        period_s=1.0, seed=17,
    )
    arrivals = [
        arrival for _, arrival in schedule.assign(range(N_REQUESTS))
    ]

    def run():
        async def main():
            import tempfile

            with tempfile.TemporaryDirectory() as tmp:
                store = SnapshotStore(tmp)
                store.publish(payload_v1)
                server = AggressionServer(
                    store, port=0,
                    max_inflight=MAX_INFLIGHT,
                    queue_capacity=QUEUE_CAPACITY,
                    default_deadline_s=DEADLINE_S,
                    poll_interval_s=0.05,
                )
                await server.start()
                try:
                    outcomes, span_s = await _drive(
                        server, store, payload_v2, texts, arrivals
                    )
                finally:
                    await server.shutdown()
                return outcomes, span_s, server.n_swaps

        return asyncio.run(main())

    outcomes, span_s, n_swaps = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    statuses = [o["status"] for o in outcomes]
    ok = [o for o in outcomes if o["status"] == 200]
    shed = statuses.count(429)
    errors = sum(1 for s in statuses if s >= 500 or s < 0)
    latencies = [o["latency_s"] for o in ok]
    versions = {o["version"] for o in ok}
    sustained_qps = len(ok) / span_s
    degraded_fraction = (
        sum(1 for o in ok if o["degraded"]) / len(ok) if ok else 0.0
    )
    shed_fraction = shed / len(outcomes)
    p50 = _quantile(latencies, 0.50)
    p99 = _quantile(latencies, 0.99)

    bench_util.report(
        "serve_qps",
        "Serving capacity — bursty open-loop load with mid-run hot swap",
        ["metric", "value"],
        [
            ["requests offered", len(outcomes)],
            ["offered rate", f"{RATE_HZ:.0f}/s x{BURST_FACTOR:.0f} bursts"],
            ["sustained QPS", f"{sustained_qps:,.0f}"],
            ["p50 latency", f"{p50 * 1e3:.2f} ms"],
            ["p99 latency", f"{p99 * 1e3:.2f} ms"],
            ["shed fraction", f"{shed_fraction:.2%}"],
            ["degraded fraction", f"{degraded_fraction:.2%}"],
            ["5xx / dropped", errors],
            ["hot swaps", n_swaps],
            ["versions served", sorted(v for v in versions if v)],
        ],
        notes=[
            f"{N_REQUESTS} HTTP classify requests, seeded bursty "
            f"arrivals, max_inflight={MAX_INFLIGHT}, "
            f"queue={QUEUE_CAPACITY}, deadline={DEADLINE_S * 1e3:.0f}ms",
            "snapshot v2 published mid-run; zero dropped/5xx across "
            "the swap is asserted, not just reported",
        ],
        summary={
            "n_requests": len(outcomes),
            "offered_rate_hz": RATE_HZ,
            "burst_factor": BURST_FACTOR,
            "sustained_qps": sustained_qps,
            "p50_latency_s": p50,
            "p99_latency_s": p99,
            "shed_fraction": shed_fraction,
            "degraded_fraction": degraded_fraction,
            "n_errors": errors,
            "n_swaps": n_swaps,
            "versions_served": sorted(v for v in versions if v),
        },
    )
    # The zero-drop contract: every request answered, none with 5xx,
    # and the swap actually happened under load.
    assert len(outcomes) == N_REQUESTS
    assert errors == 0
    assert {1, 2} <= versions
    assert sustained_qps > 50
