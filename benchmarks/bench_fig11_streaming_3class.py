"""Fig. 11: F1 over time for HT / ARF / SLR, 3-class problem.

Paper shape: all methods in the 80-90% band; HT and SLR similar (HT
marginally ahead); ARF ~4% behind; HT/SLR plateau after ~5-10k
instances, ARF needs ~10-15k.
"""

from __future__ import annotations

import bench_util


def _run_all():
    return {
        model.upper(): bench_util.run_config(n_classes=3, model=model)
        for model in ("ht", "arf", "slr")
    }


def test_fig11_streaming_3class(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    curves = {k: r.curve("f1") for k, r in results.items()}
    bench_util.report(
        "fig11_streaming_3class",
        "Fig. 11 — cumulative F1 vs tweets, 3-class (p=ON, n=ON, ad=ON)",
        ["tweets"] + list(curves),
        bench_util.curve_rows(curves, step=2),
        notes=["final F1: " + ", ".join(
            f"{k}={r.metrics['f1']:.3f}" for k, r in results.items()
        )],
    )
    f1 = {k: r.metrics["f1"] for k, r in results.items()}
    # All methods land in the paper's 80-90% band and stay close to
    # each other (see EXPERIMENTS.md on the HT/ARF ordering deviation).
    assert all(value > 0.75 for value in f1.values())
    assert max(f1.values()) - min(f1.values()) < 0.06
    # HT reaches (near) capacity early: F1 at ~5k within 5 points of final.
    ht_curve = dict(curves["HT"])
    at_5k = max(v for n, v in ht_curve.items() if n <= 5500)
    assert at_5k > f1["HT"] - 0.05
