"""Fig. 16 (elasticity companion): max stable rate, elastic partitions on/off.

The overload companion showed degradation (batch shrink + cheaper
feature tiers) buys headroom over a fixed pipeline. This companion
asks the next question: when partitioned execution itself is the
bottleneck — every partition adds fixed coordination overhead
(dispatch, result pickling, merge) and one more straggler domain —
how much higher can the sustainable rate go if the controller may
also *resize the partition count*?

The closed loop is fully simulated: per-tier service model, seeded
Poisson arrivals, and a seeded straggler draw per partition per batch
(a straggler burns the partition deadline, then the slice is retried).
Both configurations run the same adaptive controller (batch shrink +
tier degradation); only the elastic one may trade parallelism for
fewer straggler domains and less per-batch coordination overhead.
"""

from __future__ import annotations

import math
import random

import bench_util
from repro.data.firehose import ArrivalSchedule
from repro.data.loader import strip_labels
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.reliability.overload import BoundedIngestQueue, OverloadController

#: Per-tweet service seconds by degrade tier (FULL / NO_POS /
#: TEXT_ONLY), divided across partitions.
SERVICE_MODEL = {0: 0.0008, 1: 0.0005, 2: 0.0003}
RATES_HZ = (400, 600, 800, 1000, 1200, 1500, 1800)
QUEUE_CAPACITY = 2000
BATCH_SIZE = 500
BATCH_DEADLINE_S = 0.3
N_PARTITIONS = 8
#: Fixed coordination cost per partition per batch (dispatch + merge).
PARTITION_OVERHEAD_S = 0.01
#: Seeded probability that any one partition straggles in a batch.
STRAGGLER_P = 0.08
#: A straggling partition burns the deadline, then its slice re-runs.
PARTITION_DEADLINE_S = 0.5
#: A rate is "stable" when sustained shedding stays bounded. The
#: straggler draw makes capacity inherently bursty (one bad batch
#: sheds a queue's worth), so the bound is looser than the overload
#: companion's 1%.
STABLE_SHED_FRACTION = 0.10


def _batch_duration(n_tweets, n_partitions, tier, rng):
    """Simulated wall time for one partitioned batch, plus stragglers."""
    per_tweet = SERVICE_MODEL[tier]
    slice_s = math.ceil(n_tweets / n_partitions) * per_tweet
    duration = slice_s + n_partitions * PARTITION_OVERHEAD_S
    n_stragglers = sum(
        1 for _ in range(n_partitions) if rng.random() < STRAGGLER_P
    )
    if n_stragglers:
        # The deadline catches the stragglers in parallel; the lost
        # slices are then retried (one more slice of work).
        duration += PARTITION_DEADLINE_S + slice_s
    return duration, n_stragglers


def _replay(tweets, rate_hz, elastic):
    schedule = ArrivalSchedule(rate_hz=float(rate_hz), seed=13)
    queue = BoundedIngestQueue(capacity=QUEUE_CAPACITY)
    kwargs = {}
    if elastic:
        kwargs = {
            "n_partitions": N_PARTITIONS,
            "min_partitions": 1,
            "max_partitions": N_PARTITIONS,
        }
    controller = OverloadController(
        batch_deadline_s=BATCH_DEADLINE_S,
        batch_size=BATCH_SIZE,
        min_batch_size=BATCH_SIZE // 4,
        queue=queue,
        **kwargs,
    )
    rng = random.Random(10_000 + rate_hz)
    server_free_s = 0.0
    n_processed = 0
    total_stragglers = 0

    def service_batch(start_s):
        nonlocal n_processed, total_stragglers
        fraction_before = queue.depth_fraction
        batch = queue.drain(controller.batch_size)
        if not batch:
            return start_s
        n_parts = (
            controller.n_partitions if elastic else N_PARTITIONS
        )
        duration, n_stragglers = _batch_duration(
            len(batch), n_parts, int(controller.tier), rng
        )
        n_processed += len(batch)
        total_stragglers += n_stragglers
        controller.observe_batch(
            duration,
            queue_fraction=fraction_before,
            n_stragglers=n_stragglers,
        )
        return start_s + duration

    for tweet, arrival_s in schedule.assign(tweets):
        while len(queue):
            start_s = max(server_free_s, queue.peek_arrival() or 0.0)
            if start_s >= arrival_s:
                break
            server_free_s = service_batch(start_s)
        queue.offer(tweet, arrival_s=arrival_s)
    while len(queue):
        start_s = max(server_free_s, queue.peek_arrival() or 0.0)
        server_free_s = service_batch(start_s)

    return {
        "n_offered": queue.n_offered,
        "n_processed": n_processed,
        "n_shed": queue.n_shed,
        "shed_fraction": queue.n_shed / max(1, queue.n_offered),
        "final_partitions": (
            controller.n_partitions if elastic else N_PARTITIONS
        ),
        "n_partition_resizes": controller.n_partition_resizes,
        "n_stragglers": total_stragglers,
        "max_queue_depth": queue.max_depth,
        "makespan_s": server_free_s,
    }


def _max_stable(by_rate):
    stable = [
        rate
        for rate, report in by_rate.items()
        if report["shed_fraction"] < STABLE_SHED_FRACTION
    ]
    return max(stable) if stable else None


def test_fig16_elastic_partitions(benchmark):
    # Fixed size regardless of REPRO_BENCH_TWEETS: pure simulation,
    # pinned workload keeps the reported stable rates reproducible.
    n_tweets = 12_000
    generator = AbusiveDatasetGenerator(n_tweets=n_tweets, seed=11)
    tweets = list(strip_labels(generator.generate()))

    def sweep():
        fixed = {r: _replay(tweets, r, elastic=False) for r in RATES_HZ}
        elastic = {r: _replay(tweets, r, elastic=True) for r in RATES_HZ}
        return fixed, elastic

    fixed, elastic = benchmark.pedantic(sweep, rounds=1, iterations=1)
    max_fixed = _max_stable(fixed)
    max_elastic = _max_stable(elastic)
    rows = [
        [
            rate,
            f"{fixed[rate]['shed_fraction']:.1%}",
            f"{elastic[rate]['shed_fraction']:.1%}",
            elastic[rate]["final_partitions"],
            elastic[rate]["n_partition_resizes"],
            elastic[rate]["n_stragglers"],
        ]
        for rate in RATES_HZ
    ]
    bench_util.report(
        "fig16_elastic_partitions",
        "Fig. 16 (elasticity companion) — shed fraction vs offered rate, "
        "elastic partition count off/on",
        ["rate (tweets/s)", "shed (fixed 8p)", "shed (elastic)",
         "final partitions", "resizes", "stragglers"],
        rows,
        notes=[
            f"{n_tweets} unlabeled tweets, Poisson arrivals, per-tier "
            f"service model {SERVICE_MODEL} s/tweet across partitions, "
            f"{PARTITION_OVERHEAD_S}s coordination overhead/partition, "
            f"straggler p={STRAGGLER_P}/partition "
            f"(deadline {PARTITION_DEADLINE_S}s + slice retry)",
            f"max stable rate (<{STABLE_SHED_FRACTION:.0%} shed): "
            f"fixed {max_fixed} tweets/s, elastic {max_elastic} tweets/s",
        ],
        summary={
            "rates_hz": list(RATES_HZ),
            "shed_fraction_fixed": [
                fixed[r]["shed_fraction"] for r in RATES_HZ
            ],
            "shed_fraction_elastic": [
                elastic[r]["shed_fraction"] for r in RATES_HZ
            ],
            "final_partitions_elastic": [
                elastic[r]["final_partitions"] for r in RATES_HZ
            ],
            "max_stable_rate_fixed_hz": max_fixed,
            "max_stable_rate_elastic_hz": max_elastic,
            "n_partitions_fixed": N_PARTITIONS,
            "partition_overhead_s": PARTITION_OVERHEAD_S,
            "straggler_p": STRAGGLER_P,
            "service_model_s": SERVICE_MODEL,
        },
    )
    # Elastic partitioning must never be worse, and under straggler-
    # heavy overload it must buy real headroom: fewer partitions mean
    # fewer straggler domains and less coordination overhead per batch.
    assert max_fixed is not None and max_elastic is not None
    assert max_elastic > max_fixed
    for rate in RATES_HZ:
        if max_fixed is not None and rate > max_fixed:
            assert (
                elastic[rate]["shed_fraction"]
                <= fixed[rate]["shed_fraction"]
            )
    # Overload actually engaged the actuator at the top rate.
    assert elastic[RATES_HZ[-1]]["n_partition_resizes"] >= 1
    assert elastic[RATES_HZ[-1]]["final_partitions"] < N_PARTITIONS
    # Exact accounting at every rate, both modes.
    for by_rate in (fixed, elastic):
        for report in by_rate.values():
            assert (
                report["n_offered"]
                == report["n_processed"] + report["n_shed"]
            )
            assert report["max_queue_depth"] <= QUEUE_CAPACITY
