"""Fig. 10: adaptive bag-of-words size while processing tweets.

The paper's list starts at the 347 seed swear words and reaches 529
words after the full 86k-tweet stream. This bench always runs at the
paper's full scale — it only needs feature extraction (no classifier),
so it stays cheap.
"""

from __future__ import annotations

import bench_util
from repro.core.adaptive_bow import AdaptiveBagOfWords
from repro.core.features import FeatureExtractor, LabelEncoder

PAPER_INITIAL = 347
PAPER_FINAL = 529


def _grow_bow():
    bow = AdaptiveBagOfWords()
    extractor = FeatureExtractor(encoder=LabelEncoder(3), bag_of_words=bow)
    stream = bench_util.abusive_stream(n_tweets=85_984)
    for tweet in stream:
        extractor.extract(tweet)
    return bow


def test_fig10_bow_size(benchmark):
    bow = benchmark.pedantic(_grow_bow, rounds=1, iterations=1)
    rows = [[0, PAPER_INITIAL, PAPER_INITIAL]]
    history = bow.size_history
    step = max(len(history) // 15, 1)
    for n_seen, size in history[::step]:
        rows.append([n_seen, size, "-"])
    rows.append([history[-1][0], history[-1][1], PAPER_FINAL])
    bench_util.report(
        "fig10_bow_size",
        "Fig. 10 — adaptive BoW size while processing the 86k stream",
        ["labeled tweets", "BoW size", "paper"],
        rows,
        notes=[
            f"added={bow.n_added}, removed={bow.n_removed}",
            f"paper: 347 -> {PAPER_FINAL} words after 86k tweets",
        ],
    )
    final_size = len(bow)
    # Shape: starts at 347, grows monotonically overall, lands near the
    # paper's 529 (within a generous band — the drift schedule is ours).
    assert history[0][1] >= PAPER_INITIAL
    assert 420 <= final_size <= 700
