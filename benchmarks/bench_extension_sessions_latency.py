"""Extension benches (beyond the paper's figures).

* Session-level detection: the future-work experiment — does grouping
  tweets into per-user windows detect *bullying users* better than
  counting tweet-level alerts?
* Latency budget: replay the stream at increasing arrival rates
  through the real pipeline and find the highest rate that keeps p95
  detection latency under one second — the operational meaning of
  "real-time" on one machine.
"""

from __future__ import annotations

import bench_util
from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline
from repro.core.sessions import SessionDetectionPipeline
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.replay import StreamReplayer


def _session_experiment():
    stream = AbusiveDatasetGenerator(
        n_tweets=10_000, seed=13, user_pool_size=300
    ).generate_list()
    pipeline = SessionDetectionPipeline(
        PipelineConfig(n_classes=2), window_size=6 * 3600.0
    )
    result = pipeline.process_stream(stream)
    # User-level ground truth: a bullying user posts mostly aggression.
    user_truth = {}
    for tweet in stream:
        stats = user_truth.setdefault(tweet.user.user_id, [0, 0])
        stats[0] += tweet.label != "normal"
        stats[1] += 1
    bullies = {
        u for u, (agg, total) in user_truth.items()
        if total >= 5 and agg / total >= 0.8
    }
    flagged = {
        u for u, count in pipeline.flagged_users.items() if count >= 2
    }
    true_positive = len(bullies & flagged)
    precision = true_positive / len(flagged) if flagged else 0.0
    recall = true_positive / len(bullies) if bullies else 0.0
    return result, precision, recall, len(bullies), len(flagged)


def test_extension_session_detection(benchmark):
    result, precision, recall, n_bullies, n_flagged = benchmark.pedantic(
        _session_experiment, rounds=1, iterations=1
    )
    bench_util.report(
        "extension_sessions",
        "Extension — session-level bullying-user detection",
        ["metric", "value"],
        [
            ["sessions emitted", result.n_sessions],
            ["session-classifier accuracy", result.metrics["accuracy"]],
            ["session-classifier F1", result.metrics["f1"]],
            ["true bullying users", n_bullies],
            ["users flagged (>=2 sessions)", n_flagged],
            ["user-level precision", precision],
            ["user-level recall", recall],
        ],
    )
    assert result.metrics["accuracy"] > 0.75
    assert precision > 0.60
    assert recall > 0.60


def _latency_experiment():
    tweets = bench_util.abusive_stream(3000)
    pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
    # Warm the model so service times reflect steady state.
    for tweet in tweets[:500]:
        pipeline.process(tweet)
    replayer = StreamReplayer(pipeline.process)
    probe = replayer.replay(tweets[500:1000], arrival_rate=200.0)
    service_rate = probe.service_rate
    # Re-run as a deterministic queueing simulation at several rates.
    fixed = StreamReplayer(
        AggressionDetectionPipeline(PipelineConfig(n_classes=2)).process,
        service_time_s=1.0 / service_rate,
    )
    rates = [0.25, 0.5, 0.8, 0.95, 1.2]
    reports = {
        rate: fixed.replay(tweets[1000:2500], arrival_rate=rate * service_rate)
        for rate in rates
    }
    return service_rate, reports


def test_extension_latency_budget(benchmark):
    service_rate, reports = benchmark.pedantic(
        _latency_experiment, rounds=1, iterations=1
    )
    rows = [
        [f"{rate:.2f}x", f"{report.offered_rate:,.0f}",
         report.p50_latency_s * 1000, report.p95_latency_s * 1000,
         "yes" if report.is_real_time else "NO"]
        for rate, report in sorted(reports.items())
    ]
    bench_util.report(
        "extension_latency",
        "Extension — detection latency vs offered load "
        f"(measured capacity ≈ {service_rate:,.0f} tweets/s)",
        ["load", "tweets/s", "p50 (ms)", "p95 (ms)", "stable"],
        rows,
        notes=["latency stays near the per-tweet service time until "
               "utilization approaches 1, then diverges"],
    )
    assert reports[0.25].is_real_time
    assert reports[0.25].p95_latency_s < 0.05
    assert not reports[1.2].is_real_time
    assert reports[1.2].p95_latency_s > reports[0.5].p95_latency_s * 5
