"""Fig. 9: adaptive vs fixed bag-of-words for HT.

The paper measures a 2-4% average F1 improvement from the adaptive BoW
(plus smoother curves) for both the 2- and 3-class problems, driven by
its ability to track emerging aggressive vocabulary.
"""

from __future__ import annotations

import bench_util


def _run_all():
    results = {}
    for c in (2, 3):
        for adaptive in (True, False):
            key = f"HT, ad={'ON' if adaptive else 'OFF'}, c={c}"
            results[key] = bench_util.run_config(
                n_classes=c, model="ht", adaptive_bow=adaptive
            )
    return results


def test_fig09_adaptive_bow(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    curves = {k: r.curve("window_f1") for k, r in results.items()}
    bench_util.report(
        "fig09_adaptive_bow",
        "Fig. 9 — F1 vs tweets: adaptive BoW ON/OFF (HT, p=ON, n=ON)",
        ["tweets"] + list(curves),
        bench_util.curve_rows(curves, step=2),
        notes=["final F1: " + ", ".join(
            f"{k}={r.metrics['f1']:.3f}" for k, r in results.items()
        ), "paper: adaptive BoW adds ~2-4% F1 on average"],
    )
    f1 = {k: r.metrics["f1"] for k, r in results.items()}
    # The adaptive list must help (the stream has vocabulary drift).
    assert f1["HT, ad=ON, c=2"] > f1["HT, ad=OFF, c=2"]
    assert f1["HT, ad=ON, c=3"] > f1["HT, ad=OFF, c=3"]
