"""Table I: hyperparameter tuning for the streaming models.

Grid search over (a subset of) the paper's ranges, scored by
prequential F1 on the 2-class problem. The paper's selected values —
InfoGain, delta=0.01, tau=0.05, grace=200, depth=20 for HT; ensemble
size 10 for ARF; lambda=0.1, L2, 0.01 for SLR — should score within
noise of our grid's best.
"""

from __future__ import annotations

from typing import Dict

import bench_util
from repro.batchml.grid_search import GridSearch
from repro.core.config import PipelineConfig
from repro.core.pipeline import run_pipeline

PAPER_SELECTED = {
    "ht": {
        "split_criterion": "infogain",
        "split_confidence": 0.01,
        "tie_threshold": 0.05,
        "grace_period": 200,
        "max_depth": 20,
    },
    "arf": {"ensemble_size": 10},
    "slr": {"learning_rate": 0.1, "regularizer": "l2", "regularization": 0.01},
}

# Reduced grids (the paper's ranges, fewer points) to keep runtime sane.
GRIDS = {
    "ht": {
        "split_criterion": ["gini", "infogain"],
        "split_confidence": [0.001, 0.01, 0.1],
        "tie_threshold": [0.01, 0.05],
        "grace_period": [200, 500],
    },
    "arf": {"ensemble_size": [5, 10]},
    "slr": {
        "learning_rate": [0.01, 0.1],
        "regularizer": ["zero", "l1", "l2"],
        "regularization": [0.001, 0.01, 0.1],
    },
}

_GRID_STREAM_SIZE = 4000


def _search(model: str) -> GridSearch:
    tweets = bench_util.abusive_stream(_GRID_STREAM_SIZE)

    def evaluate(params: Dict) -> float:
        config = PipelineConfig(
            n_classes=2, model=model, model_params=params
        )
        return run_pipeline(tweets, config).metrics["f1"]

    search = GridSearch(evaluate, GRIDS[model])
    search.run()
    return search


def _run_all():
    return {model: _search(model) for model in GRIDS}


def test_table1_hyperparameter_tuning(benchmark):
    searches = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    for model, search in searches.items():
        best = search.best
        paper = PAPER_SELECTED[model]
        paper_score = None
        for result in search.results:
            if all(result.params.get(k) == v for k, v in paper.items()
                   if k in result.params):
                paper_score = max(
                    paper_score or 0.0, result.score
                )
        for key, value in best.params.items():
            rows.append([model.upper(), key, value,
                         paper.get(key, "-"), best.score])
        if paper_score is not None:
            rows.append([model.upper(), "(paper setting F1)", "-", "-",
                         paper_score])
    bench_util.report(
        "table1_hyperparams",
        "Table I — grid search: best settings vs the paper's selections",
        ["model", "parameter", "best", "paper", "best F1"],
        rows,
        notes=[f"grid stream: {_GRID_STREAM_SIZE} tweets, 2-class, "
               "prequential weighted F1"],
    )
    # The paper's selected configuration must be competitive: within
    # 2 F1 points of our grid's best for every model.
    for model, search in searches.items():
        paper = PAPER_SELECTED[model]
        paper_scores = [
            r.score for r in search.results
            if all(r.params.get(k) == v for k, v in paper.items()
                   if k in r.params)
        ]
        if paper_scores:
            assert max(paper_scores) >= search.best.score - 0.02, model
