#!/usr/bin/env python
"""Lint: no bare ``print()`` calls in the library source.

Library output goes through the ``repro`` logging tree
(:mod:`repro.obs.logconfig`) or an explicit stream write — bare prints
bypass log levels, the JSON formatter, and output capture. This walks
the AST (so prints inside docstrings or comments don't false-positive)
and exits non-zero listing any offending call sites.

Usage: python tools/check_no_print.py [root ...]   (default: src/repro)
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple


def find_print_calls(source: str) -> Iterator[Tuple[int, int]]:
    """Yield (line, column) of every bare ``print(...)`` call."""
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield node.lineno, node.col_offset


def check_tree(root: Path) -> List[str]:
    """Offending ``path:line:col`` strings under ``root``."""
    failures = []
    for path in sorted(root.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        for line, col in find_print_calls(source):
            failures.append(f"{path}:{line}:{col}")
    return failures


def main(argv: List[str]) -> int:
    roots = [Path(a) for a in argv] or [Path("src/repro")]
    failures = [f for root in roots for f in check_tree(root)]
    if failures:
        print("bare print() calls found (use repro.obs.logconfig loggers):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
