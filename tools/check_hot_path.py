#!/usr/bin/env python
"""Lint: keep per-tweet hot paths free of known slow patterns.

The feature-extraction and text-analysis layers run once per tweet, so
two patterns that are harmless elsewhere are throughput bugs there:

* ``re.compile(...)`` inside a function body — recompiles (or at best
  re-hits the tiny ``re`` internal cache for) the pattern on every
  call. Compile at module import time instead.
* ``copy.deepcopy(...)`` / ``deepcopy(...)`` anywhere in the hot
  modules — deep copies of models or normalizer state cost more than
  the work they wrap. Use ``fresh()`` + ``merge()``,
  ``structure_copy()``, or ``clone()`` instead (all bit-exact; see
  DESIGN.md §9).
* ``SharedMemory(...)`` outside ``engine/runners.py`` — partition code
  must never attach segments itself; one attach per (worker, version)
  happens inside ``StateBroadcast.value()`` behind the decode cache.
  A per-call attach would turn the zero-copy broadcast back into a
  per-task syscall + mmap.
* numpy array allocation (``np.array``/``asarray``/``zeros``/
  ``empty``/``ones``/``full``/``concatenate``) inside a loop body —
  the fast-math kernels hoist allocations out of per-row loops and
  reuse buffers (``out=``, in-place ops); an allocation per tweet
  re-introduces the per-row overhead the columnar layout removed.
* ``pickle.dumps``/``pickle.dump`` inside ``engine/`` outside
  ``engine/runners.py`` — tweet and broadcast payloads are encoded
  exactly once per batch by the shared-memory transports
  (``StateBroadcast``, ``TweetBlock``); ad-hoc pickling in engine code
  re-introduces the per-partition (or per-batch-per-task) serialization
  this transport exists to remove.

Walks the AST so occurrences in docstrings and comments don't
false-positive, and exits non-zero listing any offending call sites.

Usage: python tools/check_hot_path.py [root ...]
       (default: src/repro/core src/repro/text src/repro/streamml
       src/repro/engine)
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

DEFAULT_ROOTS = (
    "src/repro/core",
    "src/repro/text",
    "src/repro/streamml",
    "src/repro/engine",
)

#: The one module allowed to attach shared-memory segments.
SHM_ALLOWED_FILES = ("runners.py",)

#: The one engine module allowed to call pickle directly (it owns the
#: one-encode-per-batch transports); everything else in engine/ must go
#: through StateBroadcast / TweetBlock.
PICKLE_ALLOWED_FILES = ("runners.py",)

NUMPY_MODULE_NAMES = {"np", "numpy", "_np"}
NUMPY_ALLOCATORS = {
    "array",
    "asarray",
    "zeros",
    "empty",
    "ones",
    "full",
    "concatenate",
}


def _is_attr_call(node: ast.Call, module: str, name: str) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == name
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == module
    )


def _is_shared_memory_call(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Name) and node.func.id == "SharedMemory"
    ) or (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "SharedMemory"
    )


def _is_pickle_call(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in ("dumps", "dump")
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "pickle"
    )


def _is_numpy_allocation(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in NUMPY_ALLOCATORS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in NUMPY_MODULE_NAMES
    )


def find_hot_path_offenses(
    source: str, filename: str = ""
) -> Iterator[Tuple[int, int, str]]:
    """Yield (line, column, message) for every offending call.

    ``filename`` gates the file-scoped rules: shared-memory attach is
    legal only in :data:`SHM_ALLOWED_FILES`, and direct pickling inside
    an ``engine/`` directory only in :data:`PICKLE_ALLOWED_FILES`.
    """
    tree = ast.parse(source)
    # re.compile is only an offense inside a function body; module-level
    # compiles are exactly the fix this lint wants.
    function_nodes = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    in_function = set()
    for fn in function_nodes:
        for node in ast.walk(fn):
            in_function.add(id(node))
    # numpy allocations are only an offense inside a loop body: the
    # batch kernels allocate per batch, never per row.
    in_loop = set()
    for loop in ast.walk(tree):
        if isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
            for node in ast.walk(loop):
                if node is not loop:
                    in_loop.add(id(node))
    shm_allowed = Path(filename).name in SHM_ALLOWED_FILES
    in_engine = "engine" in Path(filename).parts
    pickle_allowed = (
        not in_engine or Path(filename).name in PICKLE_ALLOWED_FILES
    )
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _is_attr_call(node, "re", "compile") and id(node) in in_function:
            yield (
                node.lineno,
                node.col_offset,
                "re.compile in function body (compile at module level)",
            )
        elif _is_attr_call(node, "copy", "deepcopy") or (
            isinstance(node.func, ast.Name) and node.func.id == "deepcopy"
        ):
            yield (
                node.lineno,
                node.col_offset,
                "deepcopy on a hot path (use fresh()+merge()/"
                "structure_copy()/clone())",
            )
        elif _is_shared_memory_call(node) and not shm_allowed:
            yield (
                node.lineno,
                node.col_offset,
                "SharedMemory attach in partition code (attach once per "
                "(worker, version) via StateBroadcast.value())",
            )
        elif _is_pickle_call(node) and not pickle_allowed:
            yield (
                node.lineno,
                node.col_offset,
                "direct pickle in engine code (encode once per batch "
                "via StateBroadcast / TweetBlock)",
            )
        elif _is_numpy_allocation(node) and id(node) in in_loop:
            yield (
                node.lineno,
                node.col_offset,
                "numpy array allocation inside a loop (allocate per "
                "batch and reuse buffers / out=)",
            )


def check_tree(root: Path) -> List[str]:
    """Offending ``path:line:col: message`` strings under ``root``."""
    failures = []
    for path in sorted(root.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        for line, col, message in find_hot_path_offenses(
            source, str(path)
        ):
            failures.append(f"{path}:{line}:{col}: {message}")
    return failures


def main(argv: List[str]) -> int:
    roots = [Path(a) for a in argv] or [Path(r) for r in DEFAULT_ROOTS]
    failures = [f for root in roots for f in check_tree(root)]
    if failures:
        print("hot-path offenses found:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
