.PHONY: install test bench bench-full examples lint clean

PYTHON ?= python

install:
	$(PYTHON) -m pip install -e ".[dev]"

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/realtime_moderation.py
	$(PYTHON) examples/distributed_firehose.py
	$(PYTHON) examples/related_behaviors.py
	$(PYTHON) examples/session_detection.py
	$(PYTHON) examples/drift_laboratory.py

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples

clean:
	find . -type d -name __pycache__ -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis benchmarks/results
