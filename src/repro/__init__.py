"""repro: real-time aggression detection on social media via streaming ML.

A faithful, self-contained reproduction of Herodotou, Chatzakou &
Kourtellis, "Catching them red-handed: Real-time Aggression Detection
on Social Media" (ICDE 2021). The package provides:

* :mod:`repro.core` — the detection pipeline (preprocessing, feature
  extraction, normalization, training, prediction, alerting,
  evaluation, sampling, labeling);
* :mod:`repro.streamml` — from-scratch streaming classifiers (Hoeffding
  Tree, Adaptive Random Forest, Streaming Logistic Regression, ADWIN);
* :mod:`repro.batchml` — batch baselines (decision tree, random forest,
  logistic regression) and grid search;
* :mod:`repro.text` — tokenizer, POS tagger, sentiment, lexicons;
* :mod:`repro.data` — Twitter-JSON data model and synthetic datasets
  calibrated to the paper's statistics;
* :mod:`repro.engine` — Spark-Streaming-style micro-batch execution,
  sequential (MOA-like) execution, and a calibrated cluster cost model.

Quickstart::

    from repro import AggressionDetectionPipeline, PipelineConfig
    from repro.data import AbusiveDatasetGenerator

    pipeline = AggressionDetectionPipeline(PipelineConfig(n_classes=2))
    result = pipeline.process_stream(
        AbusiveDatasetGenerator(n_tweets=10_000).generate()
    )
    print(result.metrics)
"""

from repro.core.config import PipelineConfig, create_model
from repro.core.pipeline import (
    AggressionDetectionPipeline,
    PipelineResult,
    run_pipeline,
)

__version__ = "1.0.0"

__all__ = [
    "PipelineConfig",
    "create_model",
    "AggressionDetectionPipeline",
    "PipelineResult",
    "run_pipeline",
    "__version__",
]
