"""Command-line interface.

Subcommands:

* ``generate`` — write a synthetic dataset to a JSONL file;
* ``run`` — run the detection pipeline over a JSONL stream and report
  prequential metrics (optionally saving the trained model);
* ``classify`` — classify a JSONL stream with a saved model, writing
  one prediction per line;
* ``simulate`` — project execution time/throughput for the paper's
  cluster configurations with the calibrated cost model.

Invoke as ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline
from repro.data.loader import read_jsonl, write_jsonl
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.cluster import PAPER_SPECS, CostModel, SimulatedCluster
from repro.streamml.serialize import load_model, save_model


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    """The full CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Real-time aggression detection on social media "
        "(ICDE 2021 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic labeled dataset as JSONL"
    )
    generate.add_argument("output", help="output JSONL path")
    generate.add_argument("--tweets", type=int, default=10_000,
                          help="number of tweets (default 10000)")
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--days", type=int, default=10,
                          help="collection days (default 10)")
    generate.add_argument("--user-pool", type=int, default=None,
                          help="size of a recurring-author pool")

    run = commands.add_parser(
        "run", help="run the streaming pipeline over a JSONL stream"
    )
    run.add_argument("input", help="input JSONL path")
    run.add_argument("--classes", type=int, choices=(2, 3), default=2)
    run.add_argument("--model", default="ht",
                     choices=("ht", "arf", "slr", "gnb", "majority"))
    run.add_argument("--no-preprocessing", action="store_true")
    run.add_argument("--no-adaptive-bow", action="store_true")
    run.add_argument("--normalization", default="minmax_no_outliers",
                     choices=("minmax", "minmax_no_outliers", "zscore",
                              "none"))
    run.add_argument("--engine", default="sequential",
                     choices=("sequential", "microbatch"),
                     help="sequential (MOA-like) or micro-batch (Fig. 2) "
                     "execution")
    run.add_argument("--partitions", type=_positive_int, default=4,
                     help="micro-batch partitions per batch (default 4)")
    run.add_argument("--batch-size", type=_positive_int, default=5000,
                     help="tweets per micro-batch (default 5000)")
    run.add_argument("--runner", default="serial",
                     choices=("serial", "threads", "processes"),
                     help="micro-batch partition executor (default serial)")
    run.add_argument("--workers", type=_positive_int, default=None,
                     help="pool size for --runner threads/processes "
                     "(default: --partitions)")
    run.add_argument("--save-model", default=None,
                     help="write the trained model to this JSON path")
    run.add_argument("--report", default=None,
                     help="write a markdown run report to this path "
                     "(sequential engine only)")
    run.add_argument("--retries", type=int, default=None, metavar="N",
                     help="retry transient partition failures up to N "
                     "times with exponential backoff (microbatch engine; "
                     "enables supervised execution)")
    run.add_argument("--checkpoint-every", type=_positive_int, default=10,
                     metavar="N",
                     help="checkpoint after every N chunks when "
                     "--checkpoint-dir is set (default 10)")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="periodically checkpoint engine state to DIR "
                     "(atomic writes; enables supervised execution)")
    run.add_argument("--resume", action="store_true",
                     help="resume from the last checkpoint in "
                     "--checkpoint-dir, replaying only unprocessed tweets")
    run.add_argument("--max-poison-rate", type=float, default=None,
                     metavar="RATE",
                     help="quarantine malformed tweets instead of crashing, "
                     "but abort once their fraction exceeds RATE "
                     "(e.g. 0.05; enables supervised execution)")

    classify = commands.add_parser(
        "classify", help="classify a JSONL stream with a saved model"
    )
    classify.add_argument("model", help="model JSON path (from 'run')")
    classify.add_argument("input", help="input JSONL path")
    classify.add_argument("--classes", type=int, choices=(2, 3), default=2)

    simulate = commands.add_parser(
        "simulate", help="project cluster execution time / throughput"
    )
    simulate.add_argument("--tweets", type=int, default=2_000_000)
    simulate.add_argument("--measured-throughput", type=float, default=None,
                          help="calibrate per-tweet cost from a measured "
                          "single-thread tweets/s")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = AbusiveDatasetGenerator(
        n_tweets=args.tweets,
        seed=args.seed,
        n_days=args.days,
        user_pool_size=args.user_pool,
    )
    count = write_jsonl(generator.generate(), args.output)
    counts = dict(zip(("normal", "abusive", "hateful"),
                      generator.class_counts))
    print(f"wrote {count} tweets to {args.output} ({counts})")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = PipelineConfig(
        n_classes=args.classes,
        model=args.model,
        preprocessing=not args.no_preprocessing,
        adaptive_bow=not args.no_adaptive_bow,
        normalization=args.normalization,
    )
    supervised = (
        args.retries is not None
        or args.checkpoint_dir is not None
        or args.resume
        or args.max_poison_rate is not None
    )
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if supervised:
        return _run_supervised(args, config)
    if args.engine == "microbatch":
        return _run_microbatch(args, config)
    pipeline = AggressionDetectionPipeline(config)
    result = pipeline.process_stream(read_jsonl(args.input))
    print(f"configuration : {config.describe()}")
    print(f"processed     : {result.n_processed} tweets "
          f"({result.n_labeled} labeled)")
    for name, value in result.metrics.items():
        print(f"  {name:10s} {value:.4f}")
    if result.n_unlabeled:
        print(f"alerts        : {result.n_alerts}")
    if args.save_model:
        size = save_model(pipeline.model, args.save_model)
        print(f"model saved   : {args.save_model} ({size} bytes)")
    if args.report:
        from repro.analysis.reporting import render_run_report

        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(render_run_report(result))
        print(f"report saved  : {args.report}")
    return 0


def _run_supervised(args: argparse.Namespace, config: PipelineConfig) -> int:
    """Fault-tolerant execution path (any reliability flag set).

    Wraps the chosen engine in a :class:`StreamSupervisor`: ingest
    validation + quarantine, optional retry policy, and periodic
    atomic checkpoints that ``--resume`` restarts from.
    """
    from repro.engine.microbatch import MicroBatchEngine
    from repro.engine.sequential import SequentialEngine
    from repro.reliability import (
        DeadLetterQueue,
        RetryPolicy,
        StreamSupervisor,
    )

    retry_policy = (
        RetryPolicy(max_retries=args.retries)
        if args.retries is not None
        else None
    )
    dead_letters = DeadLetterQueue()
    if args.resume:
        supervisor = StreamSupervisor.resume(
            args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            runner=args.runner,
            n_workers=args.workers,
            retry_policy=retry_policy,
            dead_letters=dead_letters,
            max_poison_rate=args.max_poison_rate,
        )
    else:
        if args.engine == "microbatch":
            engine = MicroBatchEngine(
                config,
                n_partitions=args.partitions,
                batch_size=args.batch_size,
                runner=args.runner,
                n_workers=args.workers,
                retry_policy=retry_policy,
                dead_letters=dead_letters,
            )
        else:
            engine = SequentialEngine(config, dead_letters=dead_letters)
        supervisor = StreamSupervisor(
            engine,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            dead_letters=dead_letters,
            max_poison_rate=args.max_poison_rate,
        )
    engine = supervisor.engine
    try:
        run = supervisor.run(read_jsonl(args.input))
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    result = run.result
    health = run.health
    print(f"configuration : {engine.config.describe()}"
          if isinstance(engine, MicroBatchEngine)
          else f"configuration : {engine.pipeline.config.describe()}")
    kind = "microbatch" if isinstance(engine, MicroBatchEngine) else "sequential"
    print(f"engine        : {kind} (supervised"
          f"{', resumed' if args.resume else ''})")
    n_labeled = (result.n_labeled if isinstance(engine, MicroBatchEngine)
                 else result.pipeline_result.n_labeled)
    print(f"processed     : {health.n_processed} tweets "
          f"({n_labeled} labeled)")
    for name, value in result.metrics.items():
        print(f"  {name:10s} {value:.4f}")
    print(f"quarantined   : {health.n_quarantined} tweets "
          f"({health.poison_rate:.2%} of {health.n_consumed} consumed)")
    if health.dead_letters_by_stage:
        for stage, count in sorted(health.dead_letters_by_stage.items()):
            print(f"  {stage:18s} {count}")
    print(f"retries       : {health.n_retries}")
    if args.checkpoint_dir:
        print(f"checkpoints   : {health.n_checkpoints} written to "
              f"{args.checkpoint_dir}")
    if args.save_model:
        model = (engine.model if isinstance(engine, MicroBatchEngine)
                 else engine.pipeline.model)
        size = save_model(model, args.save_model)
        print(f"model saved   : {args.save_model} ({size} bytes)")
    return 0


def _run_microbatch(args: argparse.Namespace, config: PipelineConfig) -> int:
    from repro.engine.microbatch import MicroBatchEngine

    with MicroBatchEngine(
        config,
        n_partitions=args.partitions,
        batch_size=args.batch_size,
        runner=args.runner,
        n_workers=args.workers,
    ) as engine:
        result = engine.run(read_jsonl(args.input))
        print(f"configuration : {config.describe()}")
        print(f"engine        : microbatch ({args.partitions} partitions x "
              f"{args.batch_size} tweets, runner={args.runner})")
        print(f"processed     : {result.n_processed} tweets "
              f"({result.n_labeled} labeled, "
              f"{len(result.batches)} micro-batches)")
        for name, value in result.metrics.items():
            print(f"  {name:10s} {value:.4f}")
        print(f"throughput    : {result.throughput:,.0f} tweets/s")
        print("stage timings :")
        for stage, seconds in result.stage_seconds.as_dict().items():
            print(f"  {stage:18s} {seconds:9.3f} s")
        print(f"  {'driver total':18s} "
              f"{result.stage_seconds.driver_seconds:9.3f} s")
        if result.n_unlabeled:
            print(f"alerts        : {result.n_alerts}")
        if args.save_model:
            size = save_model(engine.model, args.save_model)
            print(f"model saved   : {args.save_model} ({size} bytes)")
        if args.report:
            print("report        : only supported with --engine sequential; "
                  "skipped")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.core.features import FeatureExtractor, LabelEncoder

    model = load_model(args.model)
    encoder = LabelEncoder(args.classes)
    extractor = FeatureExtractor(encoder=encoder)
    for tweet in read_jsonl(args.input):
        instance = extractor.extract(tweet, update_bow=False)
        predicted = model.predict_one(instance.x)
        print(json.dumps({
            "id_str": tweet.tweet_id,
            "predicted": encoder.decode(predicted),
        }, separators=(",", ":")))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.measured_throughput:
        cost_model = CostModel.calibrated(args.measured_throughput)
    else:
        cost_model = CostModel()
    print(f"{'config':<13s}{'time (s)':>12s}{'tweets/s':>12s}")
    for spec in PAPER_SPECS:
        cluster = SimulatedCluster(spec, cost_model)
        result = cluster.simulate(args.tweets)
        print(f"{spec.name:<13s}{result.execution_time_s:>12.1f}"
              f"{result.throughput:>12,.0f}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "run": _cmd_run,
    "classify": _cmd_classify,
    "simulate": _cmd_simulate,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
