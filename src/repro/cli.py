"""Command-line interface.

Subcommands:

* ``generate`` — write a synthetic dataset to a JSONL file;
* ``run`` — run the detection pipeline over a JSONL stream and report
  prequential metrics (optionally saving the trained model);
* ``classify`` — classify a JSONL stream with a saved model, writing
  one prediction per line;
* ``simulate`` — project execution time/throughput for the paper's
  cluster configurations with the calibrated cost model;
* ``serve`` — answer ``classify``/``explain`` requests over HTTP and
  JSONL from a snapshot store, hot-swapping models as training
  publishes new versions;
* ``snapshot`` — publish to / inspect a serving snapshot store.

Invoke as ``python -m repro <subcommand> ...``.

Human-readable reporting goes through the ``repro`` logger tree
(``--log-level``/``--log-json`` control verbosity and format; the
default output is byte-identical to the historical ``print`` output).
Data output — ``classify`` predictions — is written straight to stdout
so it stays pipeable regardless of log configuration. ``run`` accepts
``--metrics-out FILE`` to export the run's telemetry: JSONL events
(periodic + final metric snapshots) to FILE and a Prometheus text
exposition to ``FILE.prom``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline
from repro.data.loader import read_jsonl, write_jsonl
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.cluster import PAPER_SPECS, CostModel, SimulatedCluster
from repro.obs.export import TelemetrySink, write_exposition
from repro.obs.logconfig import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.streamml.serialize import load_model, save_model

logger = get_logger("cli")


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    """The full CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Real-time aggression detection on social media "
        "(ICDE 2021 reproduction)",
    )
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warning", "error"),
                        help="minimum log level (default info)")
    parser.add_argument("--log-json", action="store_true",
                        help="emit log records as JSON lines instead of "
                        "plain messages")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic labeled dataset as JSONL"
    )
    generate.add_argument("output", help="output JSONL path")
    generate.add_argument("--tweets", type=int, default=10_000,
                          help="number of tweets (default 10000)")
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--days", type=int, default=10,
                          help="collection days (default 10)")
    generate.add_argument("--user-pool", type=int, default=None,
                          help="size of a recurring-author pool")

    run = commands.add_parser(
        "run", help="run the streaming pipeline over a JSONL stream"
    )
    run.add_argument("input", help="input JSONL path")
    run.add_argument("--classes", type=int, choices=(2, 3), default=2)
    run.add_argument("--model", default="ht",
                     choices=("ht", "arf", "slr", "gnb", "majority"))
    run.add_argument("--no-preprocessing", action="store_true")
    run.add_argument("--no-adaptive-bow", action="store_true")
    run.add_argument("--normalization", default="minmax_no_outliers",
                     choices=("minmax", "minmax_no_outliers", "zscore",
                              "none"))
    run.add_argument("--fast-math", action="store_true",
                     help="numpy columnar batch kernels (results match "
                     "the scalar path within documented tolerances "
                     "rather than bitwise)")
    run.add_argument("--engine", default="sequential",
                     choices=("sequential", "microbatch"),
                     help="sequential (MOA-like) or micro-batch (Fig. 2) "
                     "execution")
    run.add_argument("--partitions", type=_positive_int, default=4,
                     help="micro-batch partitions per batch (default 4)")
    run.add_argument("--batch-size", type=_positive_int, default=5000,
                     help="tweets per micro-batch (default 5000)")
    run.add_argument("--runner", default="serial",
                     choices=("serial", "threads", "processes"),
                     help="micro-batch partition executor (default serial)")
    run.add_argument("--workers", type=_positive_int, default=None,
                     help="pool size for --runner threads/processes "
                     "(default: --partitions)")
    run.add_argument("--pipeline", action="store_true",
                     help="double-buffer micro-batches: overlap the "
                     "driver's merge/drain of batch k with batch k+1's "
                     "partition execution (microbatch engine; results "
                     "are bit-exact with the synchronous path)")
    run.add_argument("--save-model", default=None,
                     help="write the trained model to this JSON path")
    run.add_argument("--report", default=None,
                     help="write a markdown run report to this path "
                     "(sequential engine only)")
    run.add_argument("--retries", type=int, default=None, metavar="N",
                     help="retry transient partition failures up to N "
                     "times with exponential backoff (microbatch engine; "
                     "enables supervised execution)")
    run.add_argument("--checkpoint-every", type=_positive_int, default=10,
                     metavar="N",
                     help="checkpoint after every N chunks when "
                     "--checkpoint-dir is set (default 10)")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="periodically checkpoint engine state to DIR "
                     "(atomic writes; enables supervised execution)")
    run.add_argument("--resume", action="store_true",
                     help="resume from the last checkpoint in "
                     "--checkpoint-dir, replaying only unprocessed tweets")
    run.add_argument("--max-poison-rate", type=float, default=None,
                     metavar="RATE",
                     help="quarantine malformed tweets instead of crashing, "
                     "but abort once their fraction exceeds RATE "
                     "(e.g. 0.05; enables supervised execution)")
    run.add_argument("--queue-capacity", type=_positive_int, default=None,
                     metavar="N",
                     help="bound the ingest queue at N tweets and shed "
                     "excess load by --shed-policy instead of buffering "
                     "without limit (enables supervised execution)")
    run.add_argument("--shed-policy", default="drop-oldest",
                     choices=("drop-oldest", "drop-newest", "sample"),
                     help="what to evict when the ingest queue is full "
                     "(default drop-oldest; labeled tweets are never shed)")
    run.add_argument("--batch-deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="soft per-batch deadline; repeated misses shrink "
                     "the batch size and then degrade the feature pipeline "
                     "(FULL -> NO_POS -> TEXT_ONLY), recovering when load "
                     "subsides (enables supervised execution)")
    run.add_argument("--partition-deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="per-partition execution deadline (microbatch "
                     "engine): partitions are independent fault domains "
                     "— stragglers time out, lost workers trigger a "
                     "pool-only rebuild, and failed partitions retry "
                     "alone before being quarantined")
    run.add_argument("--speculate", type=float, default=None,
                     metavar="FRACTION",
                     help="with --partition-deadline: launch a duplicate "
                     "attempt for partitions still running past this "
                     "fraction of the deadline, first result wins "
                     "(e.g. 0.5)")
    run.add_argument("--min-partitions", type=_positive_int, default=None,
                     metavar="N",
                     help="with --batch-deadline: let the overload "
                     "controller shrink the partition count down to N "
                     "under straggler pressure (default 1)")
    run.add_argument("--max-partitions", type=_positive_int, default=None,
                     metavar="N",
                     help="with --batch-deadline: ceiling for elastic "
                     "partition scale-up on recovery (default: "
                     "--partitions)")
    run.add_argument("--arrival-rate", type=float, default=None,
                     metavar="HZ",
                     help="replay the stream closed-loop at this mean "
                     "arrival rate through the bounded ingest queue, so "
                     "bursts above capacity genuinely build backlog "
                     "(requires/implies --queue-capacity)")
    run.add_argument("--burst-factor", type=float, default=1.0,
                     metavar="X",
                     help="with --arrival-rate: peak-to-mean rate ratio; "
                     "1.0 keeps plain Poisson arrivals, >1 adds periodic "
                     "bursts at X times the mean (default 1.0)")
    run.add_argument("--metrics-out", default=None, metavar="FILE",
                     help="export run telemetry: JSONL snapshot/event "
                     "stream to FILE plus a Prometheus text exposition "
                     "to FILE.prom")
    run.add_argument("--metrics-every", type=_positive_int, default=None,
                     metavar="N",
                     help="with --metrics-out: snapshot every N "
                     "micro-batches/chunks (default: checkpoint cadence)")
    run.add_argument("--console", action="store_true",
                     help="redraw a one-screen ops console on stderr "
                     "after each chunk/batch: throughput, queue depth, "
                     "degrade tier, partition count, SLO burn rates")
    run.add_argument("--profile-partitions", action="store_true",
                     help="run each partition task under cProfile and "
                     "print a merged top-K table (microbatch engine; "
                     "deterministic attribution, ~1.3-2x slowdown)")
    run.add_argument("--flight-recorder", default=None, metavar="DIR",
                     help="keep a bounded in-memory ring of recent "
                     "telemetry and dump it to DIR as JSONL on "
                     "incidents (quarantine, pool rebuild, crash)")
    run.add_argument("--keep-checkpoints", type=_positive_int, default=None,
                     metavar="K",
                     help="with --checkpoint-dir: retain the newest K "
                     "chunk-stamped history checkpoints for corrupt-file "
                     "fallback (default 3)")
    run.add_argument("--publish-snapshot", default=None, metavar="DIR",
                     help="publish a verified serving snapshot to the "
                     "store at DIR on every checkpoint, so a live "
                     "'repro serve' hot-swaps models while this run "
                     "trains (enables supervised execution)")

    serve = commands.add_parser(
        "serve", help="serve classifications over HTTP/JSONL from a "
        "snapshot store, hot-swapping on publish"
    )
    serve.add_argument("store", help="snapshot store directory (fed by "
                       "'run --publish-snapshot' or 'snapshot publish')")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8423,
                       help="listen port; 0 picks a free one "
                       "(default 8423)")
    serve.add_argument("--max-inflight", type=_positive_int, default=8,
                       help="concurrent scoring requests (default 8)")
    serve.add_argument("--queue-capacity", type=int, default=64,
                       help="admission waiting-room size; beyond it the "
                       "shed policy decides (default 64)")
    serve.add_argument("--shed-policy", default="drop-newest",
                       choices=("drop-newest", "drop-oldest", "sample"),
                       help="who is shed when the waiting room is full "
                       "(default drop-newest; shed requests get 429 + "
                       "Retry-After)")
    serve.add_argument("--request-deadline", type=float, default=0.05,
                       metavar="SECONDS",
                       help="default per-request latency budget; under "
                       "pressure the feature pipeline degrades "
                       "FULL -> NO_POS -> TEXT_ONLY instead of erroring "
                       "(default 0.05; requests may override with "
                       "'deadline_ms')")
    serve.add_argument("--poll-interval", type=float, default=0.25,
                       metavar="SECONDS",
                       help="snapshot-store poll cadence for hot swaps "
                       "(default 0.25)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="max wait for in-flight requests on "
                       "SIGTERM before force-closing (default 10)")
    serve.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="export serving telemetry: JSONL events to "
                       "FILE plus a Prometheus exposition to FILE.prom "
                       "on exit (live scrapes: GET /metrics)")
    serve.add_argument("--flight-recorder", default=None, metavar="DIR",
                       help="dump the telemetry ring to DIR on "
                       "incidents (snapshot rejected, handler errors)")

    snapshot = commands.add_parser(
        "snapshot", help="manage serving snapshot stores"
    )
    snapshot_commands = snapshot.add_subparsers(
        dest="snapshot_command", required=True
    )
    publish = snapshot_commands.add_parser(
        "publish", help="publish a verified snapshot from a checkpoint"
    )
    publish.add_argument("store", help="snapshot store directory "
                         "(created if missing)")
    publish.add_argument("--from-checkpoint", required=True,
                         metavar="PATH",
                         help="supervisor checkpoint directory or a "
                         "checkpoint/pipeline JSON file to publish from")
    publish.add_argument("--keep", type=_positive_int, default=5,
                         help="snapshot versions to retain (default 5)")
    snapshot_list = snapshot_commands.add_parser(
        "list", help="list the verified versions in a store"
    )
    snapshot_list.add_argument("store")

    classify = commands.add_parser(
        "classify", help="classify a JSONL stream with a saved model"
    )
    classify.add_argument("model", help="model JSON path (from 'run')")
    classify.add_argument("input", help="input JSONL path")
    classify.add_argument("--classes", type=int, choices=(2, 3), default=2)

    simulate = commands.add_parser(
        "simulate", help="project cluster execution time / throughput"
    )
    simulate.add_argument("--tweets", type=int, default=2_000_000)
    simulate.add_argument("--measured-throughput", type=float, default=None,
                          help="calibrate per-tweet cost from a measured "
                          "single-thread tweets/s")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = AbusiveDatasetGenerator(
        n_tweets=args.tweets,
        seed=args.seed,
        n_days=args.days,
        user_pool_size=args.user_pool,
    )
    count = write_jsonl(generator.generate(), args.output)
    counts = dict(zip(("normal", "abusive", "hateful"),
                      generator.class_counts))
    logger.info("wrote %d tweets to %s (%s)", count, args.output, counts)
    return 0


def _open_telemetry(
    args: argparse.Namespace,
) -> Optional[TelemetrySink]:
    if args.metrics_out is None:
        return None
    return TelemetrySink(args.metrics_out)


def _finalize_telemetry(
    sink: Optional[TelemetrySink],
    registry: MetricsRegistry,
    args: argparse.Namespace,
) -> None:
    """Write the exposition sibling and close the JSONL sink."""
    if sink is None:
        return
    prom_path = f"{args.metrics_out}.prom"
    write_exposition(registry, prom_path)
    sink.close()
    logger.info("telemetry      : %s (+ %s)", args.metrics_out, prom_path)


def _cmd_run(args: argparse.Namespace) -> int:
    config = PipelineConfig(
        n_classes=args.classes,
        model=args.model,
        preprocessing=not args.no_preprocessing,
        adaptive_bow=not args.no_adaptive_bow,
        normalization=args.normalization,
        fast_math=args.fast_math,
    )
    supervised = (
        args.retries is not None
        or args.checkpoint_dir is not None
        or args.resume
        or args.max_poison_rate is not None
        or args.queue_capacity is not None
        or args.batch_deadline is not None
        or args.arrival_rate is not None
        or args.publish_snapshot is not None
    )
    if args.resume and args.checkpoint_dir is None:
        logger.error("error: --resume requires --checkpoint-dir")
        return 2
    if args.keep_checkpoints is not None and args.checkpoint_dir is None:
        logger.error("error: --keep-checkpoints requires --checkpoint-dir")
        return 2
    if args.arrival_rate is not None and args.arrival_rate <= 0:
        logger.error("error: --arrival-rate must be positive")
        return 2
    if args.batch_deadline is not None and args.batch_deadline <= 0:
        logger.error("error: --batch-deadline must be positive")
        return 2
    if args.partition_deadline is not None and args.partition_deadline <= 0:
        logger.error("error: --partition-deadline must be positive")
        return 2
    if args.partition_deadline is not None and args.engine != "microbatch":
        logger.error(
            "error: --partition-deadline requires --engine microbatch"
        )
        return 2
    if args.speculate is not None:
        if args.partition_deadline is None:
            logger.error("error: --speculate requires --partition-deadline")
            return 2
        if not 0.0 < args.speculate <= 1.0:
            logger.error("error: --speculate must be in (0, 1]")
            return 2
    if (
        args.min_partitions is not None or args.max_partitions is not None
    ) and args.batch_deadline is None:
        logger.error(
            "error: --min-partitions/--max-partitions require "
            "--batch-deadline (they bound the overload controller's "
            "elastic partition actuator)"
        )
        return 2
    if (
        args.min_partitions is not None or args.max_partitions is not None
    ) and args.engine != "microbatch":
        logger.error(
            "error: --min-partitions/--max-partitions require "
            "--engine microbatch"
        )
        return 2
    if (
        args.min_partitions is not None
        and args.max_partitions is not None
        and args.min_partitions > args.max_partitions
    ):
        logger.error("error: --min-partitions must be <= --max-partitions")
        return 2
    if args.min_partitions is not None and args.min_partitions > args.partitions:
        logger.error("error: --min-partitions must be <= --partitions")
        return 2
    if args.max_partitions is not None and args.max_partitions < args.partitions:
        logger.error("error: --max-partitions must be >= --partitions")
        return 2
    if args.profile_partitions and args.engine != "microbatch":
        logger.error(
            "error: --profile-partitions requires --engine microbatch"
        )
        return 2
    if args.pipeline and args.engine != "microbatch":
        logger.error("error: --pipeline requires --engine microbatch")
        return 2
    if supervised:
        return _run_supervised(args, config)
    if args.engine == "microbatch":
        return _run_microbatch(args, config)
    sink = _open_telemetry(args)
    pipeline = AggressionDetectionPipeline(config)
    if sink is not None:
        sink.event("run_start", engine="sequential", input=args.input)
    result = pipeline.process_stream(
        read_jsonl(args.input, metrics=pipeline.metrics)
    )
    logger.info("configuration : %s", config.describe())
    logger.info("processed     : %d tweets (%d labeled)",
                result.n_processed, result.n_labeled)
    for name, value in result.metrics.items():
        logger.info("  %-10s %.4f", name, value)
    if result.n_unlabeled:
        logger.info("alerts        : %d", result.n_alerts)
    if args.save_model:
        size = save_model(pipeline.model, args.save_model)
        logger.info("model saved   : %s (%d bytes)", args.save_model, size)
    if args.report:
        from repro.analysis.reporting import render_run_report

        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(render_run_report(result))
        logger.info("report saved  : %s", args.report)
    if sink is not None:
        sink.snapshot(pipeline.metrics, reason="final")
        sink.event("run_end", n_processed=result.n_processed)
    _finalize_telemetry(sink, pipeline.metrics, args)
    return 0


def _run_supervised(args: argparse.Namespace, config: PipelineConfig) -> int:
    """Fault-tolerant execution path (any reliability flag set).

    Wraps the chosen engine in a :class:`StreamSupervisor`: ingest
    validation + quarantine, optional retry policy, and periodic
    atomic checkpoints that ``--resume`` restarts from.
    """
    from repro.engine.microbatch import MicroBatchEngine
    from repro.engine.sequential import SequentialEngine
    from repro.obs.console import OpsConsole
    from repro.obs.recorder import FlightRecorder
    from repro.obs.slo import SLOTracker, default_slos
    from repro.reliability import (
        BoundedIngestQueue,
        DeadLetterQueue,
        OverloadController,
        RetryPolicy,
        StreamSupervisor,
    )
    from repro.reliability.supervisor import DEFAULT_KEEP_CHECKPOINTS

    retry_policy = (
        RetryPolicy(max_retries=args.retries)
        if args.retries is not None
        else None
    )
    dead_letters = DeadLetterQueue()
    sink = _open_telemetry(args)
    recorder = (
        FlightRecorder(dump_dir=args.flight_recorder)
        if args.flight_recorder is not None
        else None
    )
    console = OpsConsole() if args.console else None
    slo_sinks = [s for s in (sink, recorder) if s is not None]
    snapshot_store = None
    if args.publish_snapshot is not None:
        from repro.serve.snapshot import SnapshotStore

        snapshot_store = SnapshotStore(args.publish_snapshot)
    keep_checkpoints = (
        args.keep_checkpoints
        if args.keep_checkpoints is not None
        else DEFAULT_KEEP_CHECKPOINTS
    )
    overloaded = (
        args.queue_capacity is not None
        or args.batch_deadline is not None
        or args.arrival_rate is not None
    )
    if args.resume:
        supervisor = StreamSupervisor.resume(
            args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            runner=args.runner,
            n_workers=args.workers,
            retry_policy=retry_policy,
            dead_letters=dead_letters,
            max_poison_rate=args.max_poison_rate,
            telemetry=sink,
            metrics_every=args.metrics_every,
            partition_deadline_s=args.partition_deadline,
            speculate=args.speculate,
            console=console,
            recorder=recorder,
            keep_checkpoints=keep_checkpoints,
            snapshot_store=snapshot_store,
        )
        if isinstance(supervisor.engine, MicroBatchEngine):
            # The rebuilt engine predates these run flags; re-attach.
            supervisor.engine.recorder = recorder
            supervisor.engine.profile_partitions = args.profile_partitions
            if args.pipeline:
                supervisor.engine.pipelined = True
    else:
        if args.engine == "microbatch":
            engine = MicroBatchEngine(
                config,
                n_partitions=args.partitions,
                batch_size=args.batch_size,
                runner=args.runner,
                n_workers=args.workers,
                retry_policy=retry_policy,
                dead_letters=dead_letters,
                partition_deadline_s=args.partition_deadline,
                speculate=args.speculate,
                profile_partitions=args.profile_partitions,
                recorder=recorder,
                pipelined=args.pipeline,
            )
        else:
            engine = SequentialEngine(config, dead_letters=dead_letters)
        ingest_queue = None
        if overloaded:
            # Closed-loop replay and the controller both need the
            # bounded queue; default its capacity to a few batches.
            capacity = (
                args.queue_capacity
                if args.queue_capacity is not None
                else 4 * args.batch_size
            )
            ingest_queue = BoundedIngestQueue(
                capacity=capacity,
                policy=args.shed_policy,
                metrics=engine.metrics,
                telemetry=sink,
            )
            if args.batch_deadline is not None:
                elastic = (
                    args.min_partitions is not None
                    or args.max_partitions is not None
                ) and args.engine == "microbatch"
                engine.controller = OverloadController(
                    batch_deadline_s=args.batch_deadline,
                    batch_size=args.batch_size,
                    queue=ingest_queue,
                    metrics=engine.metrics,
                    telemetry=sink,
                    engine_label=args.engine,
                    n_partitions=args.partitions if elastic else None,
                    min_partitions=args.min_partitions if elastic else None,
                    max_partitions=args.max_partitions if elastic else None,
                )
        supervisor = StreamSupervisor(
            engine,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            dead_letters=dead_letters,
            max_poison_rate=args.max_poison_rate,
            telemetry=sink,
            metrics_every=args.metrics_every,
            ingest_queue=ingest_queue,
            slos=SLOTracker(default_slos(), sinks=slo_sinks),
            console=console,
            recorder=recorder,
            keep_checkpoints=keep_checkpoints,
            snapshot_store=snapshot_store,
        )
    engine = supervisor.engine
    # SIGTERM/SIGINT drain gracefully: stop drawing tweets, flush the
    # buffered work through the engine, write a final checkpoint (and
    # snapshot), exit 0. A second signal falls through to the default
    # handler for a hard kill.
    import signal as _signal

    previous_handlers = {}

    def _graceful_stop(signum: int, frame: object) -> None:
        supervisor.request_stop()
        _signal.signal(signum, previous_handlers.get(
            signum, _signal.SIG_DFL
        ))

    for _sig in (_signal.SIGTERM, _signal.SIGINT):
        try:
            previous_handlers[_sig] = _signal.signal(_sig, _graceful_stop)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    if sink is not None:
        sink.event(
            "run_start",
            engine=supervisor._engine_kind,
            input=args.input,
            resumed=args.resume,
        )
    try:
        stream = read_jsonl(args.input, metrics=supervisor.metrics)
        if args.arrival_rate is not None:
            from repro.data.firehose import ArrivalSchedule

            if args.burst_factor > 1.0:
                schedule = ArrivalSchedule(
                    rate_hz=args.arrival_rate,
                    shape="bursty",
                    burst_factor=args.burst_factor,
                )
            else:
                schedule = ArrivalSchedule(
                    rate_hz=args.arrival_rate, shape="poisson"
                )
            run = supervisor.run_timed(schedule.assign(stream))
        else:
            run = supervisor.run(stream)
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()
        if console is not None:
            console.close()
    result = run.result
    health = run.health
    logger.info("configuration : %s",
                engine.config.describe()
                if isinstance(engine, MicroBatchEngine)
                else engine.pipeline.config.describe())
    kind = "microbatch" if isinstance(engine, MicroBatchEngine) else "sequential"
    logger.info("engine        : %s (supervised%s)",
                kind, ", resumed" if args.resume else "")
    n_labeled = (result.n_labeled if isinstance(engine, MicroBatchEngine)
                 else result.pipeline_result.n_labeled)
    logger.info("processed     : %d tweets (%d labeled)",
                health.n_processed, n_labeled)
    for name, value in result.metrics.items():
        logger.info("  %-10s %.4f", name, value)
    logger.info("quarantined   : %d tweets (%.2f%% of %d consumed)",
                health.n_quarantined, 100.0 * health.poison_rate,
                health.n_consumed)
    if health.dead_letters_by_stage:
        for stage, count in sorted(health.dead_letters_by_stage.items()):
            logger.info("  %-18s %d", stage, count)
    logger.info("retries       : %d", health.n_retries)
    queue = supervisor.ingest_queue
    if queue is not None:
        counters = queue.as_counters()
        logger.info("overload      : %d/%d shed (%s, max depth %d/%d)",
                    counters["n_shed"], counters["n_offered"],
                    queue.policy, counters["max_depth"], queue.capacity)
        if counters["n_over_capacity"]:
            logger.info("  labeled tweets soft-admitted past the bound: %d "
                        "(labeled traffic is never shed)",
                        counters["n_over_capacity"])
    controller = supervisor.controller
    if controller is not None:
        logger.info("degradation   : %d deadline misses, %d degrades, "
                    "%d recovers, final tier %s (worst %s)",
                    controller.n_deadline_misses, controller.n_degrades,
                    controller.n_recovers, controller.tier.name,
                    controller.max_tier_reached.name)
        if controller.n_partitions is not None:
            logger.info("elasticity    : %d partitions (bounds %d..%d, "
                        "%d resizes, %d stragglers seen)",
                        controller.n_partitions, controller.min_partitions,
                        controller.max_partitions,
                        controller.n_partition_resizes,
                        controller.n_stragglers_seen)
    if args.partition_deadline is not None:
        logger.info("parallelism   : %d partition timeouts, "
                    "%d speculative wins, %d pool rebuilds",
                    health.n_partition_timeouts,
                    health.n_speculative_wins,
                    int(supervisor.metrics.total("pool_rebuilds_total")))
    if run.stopped:
        logger.info("stopped       : graceful drain at cursor %d; "
                    "re-run with --resume to continue",
                    supervisor._cursor)
    if args.checkpoint_dir:
        logger.info("checkpoints   : %d written to %s",
                    health.n_checkpoints, args.checkpoint_dir)
    if snapshot_store is not None:
        latest = snapshot_store.latest_version()
        logger.info("snapshots     : latest v%s published to %s",
                    latest if latest is not None else "-",
                    args.publish_snapshot)
    if (
        isinstance(engine, MicroBatchEngine)
        and result.worker_stage_seconds
    ):
        logger.info("worker stages :")
        for stage, seconds in sorted(result.worker_stage_seconds.items()):
            logger.info("  %-18s %9.3f s", stage, seconds)
    tracker = supervisor.slo_tracker
    if tracker is not None:
        logger.info("slo burn      : (short/long, 1.0 = at budget)")
        for entry in tracker.status():
            logger.info("  %-18s %6.2f / %6.2f%s",
                        entry["slo"], entry["burn_short"],
                        entry["burn_long"],
                        "  FIRING" if entry["firing"] else "")
        card = supervisor.scorecard()
        logger.info("scorecard     : f1=%.3f p99=%.3fs shed=%.4f "
                    "quarantine=%.4f availability=%.4f alerts=%d",
                    card.f1, card.p99_batch_seconds, card.shed_fraction,
                    card.quarantine_rate, card.availability,
                    card.alerts_fired)
    if (
        args.profile_partitions
        and isinstance(engine, MicroBatchEngine)
        and engine.profile_report.n_slices
    ):
        for line in engine.profile_report.format_top(10).splitlines():
            logger.info("%s", line)
    if recorder is not None and recorder.n_dumps:
        logger.info("flight dumps  : %d written to %s",
                    recorder.n_dumps, args.flight_recorder)
    if args.save_model:
        model = (engine.model if isinstance(engine, MicroBatchEngine)
                 else engine.pipeline.model)
        size = save_model(model, args.save_model)
        logger.info("model saved   : %s (%d bytes)", args.save_model, size)
    _finalize_telemetry(sink, supervisor.metrics, args)
    return 0


def _run_microbatch(args: argparse.Namespace, config: PipelineConfig) -> int:
    from repro.engine.microbatch import MicroBatchEngine, MicroBatchResult
    from repro.obs.console import OpsConsole
    from repro.obs.recorder import FlightRecorder

    sink = _open_telemetry(args)
    recorder = (
        FlightRecorder(dump_dir=args.flight_recorder)
        if args.flight_recorder is not None
        else None
    )
    console = OpsConsole() if args.console else None
    registry = MetricsRegistry()
    snapshot_every = (
        args.metrics_every
        if args.metrics_every is not None
        else args.checkpoint_every
    )

    def on_batch(batch: MicroBatchResult) -> None:
        if sink is not None and (batch.batch_index + 1) % snapshot_every == 0:
            sink.snapshot(registry, batch=batch.batch_index)
        if console is not None:
            console.tick(registry)

    with MicroBatchEngine(
        config,
        n_partitions=args.partitions,
        batch_size=args.batch_size,
        runner=args.runner,
        n_workers=args.workers,
        metrics=registry,
        on_batch=on_batch,
        partition_deadline_s=args.partition_deadline,
        speculate=args.speculate,
        profile_partitions=args.profile_partitions,
        recorder=recorder,
        pipelined=args.pipeline,
    ) as engine:
        if sink is not None:
            sink.event("run_start", engine="microbatch", input=args.input)
        try:
            result = engine.run(read_jsonl(args.input, metrics=registry))
        finally:
            if console is not None:
                console.close()
        logger.info("configuration : %s", config.describe())
        logger.info("engine        : microbatch (%d partitions x %d tweets, "
                    "runner=%s%s)",
                    args.partitions, args.batch_size, args.runner,
                    ", pipelined" if args.pipeline else "")
        logger.info("processed     : %d tweets (%d labeled, "
                    "%d micro-batches)",
                    result.n_processed, result.n_labeled,
                    len(result.batches))
        for name, value in result.metrics.items():
            logger.info("  %-10s %.4f", name, value)
        logger.info("throughput    : %s tweets/s",
                    format(result.throughput, ",.0f"))
        logger.info("stage timings :")
        for stage, seconds in result.stage_seconds.as_dict().items():
            logger.info("  %-18s %9.3f s", stage, seconds)
        logger.info("  %-18s %9.3f s", "driver total",
                    result.stage_seconds.driver_seconds)
        if result.worker_stage_seconds:
            logger.info("worker stages :")
            for stage, seconds in sorted(
                result.worker_stage_seconds.items()
            ):
                logger.info("  %-18s %9.3f s", stage, seconds)
        if args.profile_partitions and engine.profile_report.n_slices:
            for line in engine.profile_report.format_top(10).splitlines():
                logger.info("%s", line)
        if recorder is not None and recorder.n_dumps:
            logger.info("flight dumps  : %d written to %s",
                        recorder.n_dumps, args.flight_recorder)
        if args.partition_deadline is not None:
            logger.info("parallelism   : %d partition timeouts, "
                        "%d speculative wins, %d pool rebuilds",
                        int(registry.total("partition_timeouts_total")),
                        int(registry.total("speculative_wins_total")),
                        int(registry.total("pool_rebuilds_total")))
        if result.n_unlabeled:
            logger.info("alerts        : %d", result.n_alerts)
        if args.save_model:
            size = save_model(engine.model, args.save_model)
            logger.info("model saved   : %s (%d bytes)",
                        args.save_model, size)
        if args.report:
            logger.info("report        : only supported with --engine "
                        "sequential; skipped")
        if sink is not None:
            sink.snapshot(registry, reason="final")
            sink.event("run_end", n_processed=result.n_processed)
    _finalize_telemetry(sink, registry, args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve classifications from a snapshot store until SIGTERM."""
    import asyncio

    from repro.obs.recorder import FlightRecorder
    from repro.serve.server import AggressionServer
    from repro.serve.snapshot import SnapshotStore

    sink = _open_telemetry(args)
    recorder = (
        FlightRecorder(dump_dir=args.flight_recorder)
        if args.flight_recorder is not None
        else None
    )
    store = SnapshotStore(args.store)
    server = AggressionServer(
        store,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        queue_capacity=args.queue_capacity,
        shed_policy=args.shed_policy,
        default_deadline_s=args.request_deadline,
        poll_interval_s=args.poll_interval,
        drain_timeout_s=args.drain_timeout,
        telemetry=sink,
        recorder=recorder,
    )
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    logger.info("served        : %d requests (%d swaps, %d rejected "
                "snapshots, %d shed)",
                server.n_requests, server.n_swaps,
                store.n_rejected, server.admission.n_shed)
    _finalize_telemetry(sink, server.metrics, args)
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.serve.snapshot import SnapshotStore, payload_from_checkpoint

    if args.snapshot_command == "publish":
        from pathlib import Path

        source = Path(args.from_checkpoint)
        if source.is_dir():
            source = source / "checkpoint.json"
        if not source.exists():
            logger.error("error: checkpoint not found: %s", source)
            return 2
        store = SnapshotStore(args.store, keep=args.keep)
        info = store.publish(
            payload_from_checkpoint(source),
            meta={"source": str(source)},
        )
        logger.info("published     : v%d (%d bytes, sha256 %s...) to %s",
                    info.version, info.n_bytes, info.sha256[:12],
                    args.store)
        return 0
    store = SnapshotStore(args.store)
    versions = store.versions()
    if not versions:
        logger.info("store %s is empty", args.store)
        return 0
    latest = store.latest_version()
    for version in versions:
        info = store.info(version)
        marker = " (latest)" if version == latest else ""
        logger.info("v%-6d %10d bytes  sha256 %s...  %s%s",
                    version, info.n_bytes, info.sha256[:12],
                    json.dumps(info.meta, separators=(",", ":")),
                    marker)
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.core.features import FeatureExtractor, LabelEncoder

    model = load_model(args.model)
    encoder = LabelEncoder(args.classes)
    extractor = FeatureExtractor(encoder=encoder)
    # Predictions are data output, not logging: write them directly so
    # they stay pipeable under any --log-level / --log-json setting.
    out = sys.stdout
    try:
        for tweet in read_jsonl(args.input):
            instance = extractor.extract(tweet, update_bow=False)
            predicted = model.predict_one(instance.x)
            out.write(json.dumps({
                "id_str": tweet.tweet_id,
                "predicted": encoder.decode(predicted),
            }, separators=(",", ":")))
            out.write("\n")
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe; exit
        # quietly like any well-behaved filter. Swap in a devnull
        # stdout so interpreter shutdown doesn't re-raise on flush.
        sys.stdout = open(os.devnull, "w", encoding="utf-8")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.measured_throughput:
        cost_model = CostModel.calibrated(args.measured_throughput)
    else:
        cost_model = CostModel()
    logger.info("%-13s%12s%12s", "config", "time (s)", "tweets/s")
    for spec in PAPER_SPECS:
        cluster = SimulatedCluster(spec, cost_model)
        result = cluster.simulate(args.tweets)
        logger.info("%-13s%12.1f%s", spec.name, result.execution_time_s,
                    format(result.throughput, ">12,.0f"))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "run": _cmd_run,
    "classify": _cmd_classify,
    "simulate": _cmd_simulate,
    "serve": _cmd_serve,
    "snapshot": _cmd_snapshot,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_output=args.log_json)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
