"""Command-line interface.

Subcommands:

* ``generate`` — write a synthetic dataset to a JSONL file;
* ``run`` — run the detection pipeline over a JSONL stream and report
  prequential metrics (optionally saving the trained model);
* ``classify`` — classify a JSONL stream with a saved model, writing
  one prediction per line;
* ``simulate`` — project execution time/throughput for the paper's
  cluster configurations with the calibrated cost model.

Invoke as ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline
from repro.data.loader import read_jsonl, write_jsonl
from repro.data.synthetic import AbusiveDatasetGenerator
from repro.engine.cluster import PAPER_SPECS, CostModel, SimulatedCluster
from repro.streamml.serialize import load_model, save_model


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    """The full CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Real-time aggression detection on social media "
        "(ICDE 2021 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic labeled dataset as JSONL"
    )
    generate.add_argument("output", help="output JSONL path")
    generate.add_argument("--tweets", type=int, default=10_000,
                          help="number of tweets (default 10000)")
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--days", type=int, default=10,
                          help="collection days (default 10)")
    generate.add_argument("--user-pool", type=int, default=None,
                          help="size of a recurring-author pool")

    run = commands.add_parser(
        "run", help="run the streaming pipeline over a JSONL stream"
    )
    run.add_argument("input", help="input JSONL path")
    run.add_argument("--classes", type=int, choices=(2, 3), default=2)
    run.add_argument("--model", default="ht",
                     choices=("ht", "arf", "slr", "gnb", "majority"))
    run.add_argument("--no-preprocessing", action="store_true")
    run.add_argument("--no-adaptive-bow", action="store_true")
    run.add_argument("--normalization", default="minmax_no_outliers",
                     choices=("minmax", "minmax_no_outliers", "zscore",
                              "none"))
    run.add_argument("--engine", default="sequential",
                     choices=("sequential", "microbatch"),
                     help="sequential (MOA-like) or micro-batch (Fig. 2) "
                     "execution")
    run.add_argument("--partitions", type=_positive_int, default=4,
                     help="micro-batch partitions per batch (default 4)")
    run.add_argument("--batch-size", type=_positive_int, default=5000,
                     help="tweets per micro-batch (default 5000)")
    run.add_argument("--runner", default="serial",
                     choices=("serial", "threads", "processes"),
                     help="micro-batch partition executor (default serial)")
    run.add_argument("--workers", type=_positive_int, default=None,
                     help="pool size for --runner threads/processes "
                     "(default: --partitions)")
    run.add_argument("--save-model", default=None,
                     help="write the trained model to this JSON path")
    run.add_argument("--report", default=None,
                     help="write a markdown run report to this path "
                     "(sequential engine only)")

    classify = commands.add_parser(
        "classify", help="classify a JSONL stream with a saved model"
    )
    classify.add_argument("model", help="model JSON path (from 'run')")
    classify.add_argument("input", help="input JSONL path")
    classify.add_argument("--classes", type=int, choices=(2, 3), default=2)

    simulate = commands.add_parser(
        "simulate", help="project cluster execution time / throughput"
    )
    simulate.add_argument("--tweets", type=int, default=2_000_000)
    simulate.add_argument("--measured-throughput", type=float, default=None,
                          help="calibrate per-tweet cost from a measured "
                          "single-thread tweets/s")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = AbusiveDatasetGenerator(
        n_tweets=args.tweets,
        seed=args.seed,
        n_days=args.days,
        user_pool_size=args.user_pool,
    )
    count = write_jsonl(generator.generate(), args.output)
    counts = dict(zip(("normal", "abusive", "hateful"),
                      generator.class_counts))
    print(f"wrote {count} tweets to {args.output} ({counts})")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = PipelineConfig(
        n_classes=args.classes,
        model=args.model,
        preprocessing=not args.no_preprocessing,
        adaptive_bow=not args.no_adaptive_bow,
        normalization=args.normalization,
    )
    if args.engine == "microbatch":
        return _run_microbatch(args, config)
    pipeline = AggressionDetectionPipeline(config)
    result = pipeline.process_stream(read_jsonl(args.input))
    print(f"configuration : {config.describe()}")
    print(f"processed     : {result.n_processed} tweets "
          f"({result.n_labeled} labeled)")
    for name, value in result.metrics.items():
        print(f"  {name:10s} {value:.4f}")
    if result.n_unlabeled:
        print(f"alerts        : {result.n_alerts}")
    if args.save_model:
        size = save_model(pipeline.model, args.save_model)
        print(f"model saved   : {args.save_model} ({size} bytes)")
    if args.report:
        from repro.analysis.reporting import render_run_report

        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(render_run_report(result))
        print(f"report saved  : {args.report}")
    return 0


def _run_microbatch(args: argparse.Namespace, config: PipelineConfig) -> int:
    from repro.engine.microbatch import MicroBatchEngine

    with MicroBatchEngine(
        config,
        n_partitions=args.partitions,
        batch_size=args.batch_size,
        runner=args.runner,
        n_workers=args.workers,
    ) as engine:
        result = engine.run(read_jsonl(args.input))
        print(f"configuration : {config.describe()}")
        print(f"engine        : microbatch ({args.partitions} partitions x "
              f"{args.batch_size} tweets, runner={args.runner})")
        print(f"processed     : {result.n_processed} tweets "
              f"({result.n_labeled} labeled, "
              f"{len(result.batches)} micro-batches)")
        for name, value in result.metrics.items():
            print(f"  {name:10s} {value:.4f}")
        print(f"throughput    : {result.throughput:,.0f} tweets/s")
        print("stage timings :")
        for stage, seconds in result.stage_seconds.as_dict().items():
            print(f"  {stage:18s} {seconds:9.3f} s")
        print(f"  {'driver total':18s} "
              f"{result.stage_seconds.driver_seconds:9.3f} s")
        if result.n_unlabeled:
            print(f"alerts        : {result.n_alerts}")
        if args.save_model:
            size = save_model(engine.model, args.save_model)
            print(f"model saved   : {args.save_model} ({size} bytes)")
        if args.report:
            print("report        : only supported with --engine sequential; "
                  "skipped")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.core.features import FeatureExtractor, LabelEncoder

    model = load_model(args.model)
    encoder = LabelEncoder(args.classes)
    extractor = FeatureExtractor(encoder=encoder)
    for tweet in read_jsonl(args.input):
        instance = extractor.extract(tweet, update_bow=False)
        predicted = model.predict_one(instance.x)
        print(json.dumps({
            "id_str": tweet.tweet_id,
            "predicted": encoder.decode(predicted),
        }, separators=(",", ":")))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.measured_throughput:
        cost_model = CostModel.calibrated(args.measured_throughput)
    else:
        cost_model = CostModel()
    print(f"{'config':<13s}{'time (s)':>12s}{'tweets/s':>12s}")
    for spec in PAPER_SPECS:
        cluster = SimulatedCluster(spec, cost_model)
        result = cluster.simulate(args.tweets)
        print(f"{spec.name:<13s}{result.execution_time_s:>12.1f}"
              f"{result.throughput:>12,.0f}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "run": _cmd_run,
    "classify": _cmd_classify,
    "simulate": _cmd_simulate,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
