"""Calibrated cost model for the scalability study (Figs. 15/16).

We have one machine, not the paper's 3-node cluster, so the wall-clock
scaling experiments are reproduced with a deterministic discrete-event
cost model. The model's mechanisms mirror Spark Streaming's anatomy:

* every tweet costs executor CPU (the full pipeline: extract, train,
  predict, statistics) plus driver CPU (receive/deserialize/merge);
* Spark adds per-record serialization overhead relative to MOA (the
  paper measures SparkSingle 7-17% slower than MOA);
* every micro-batch pays a scheduling + model-broadcast overhead that
  grows with the number of nodes;
* a job startup cost grows with cluster size — which is what produces
  the throughput plateau past ~1M tweets in Fig. 16;
* on a single shared box the driver/receiver contends with executor
  threads (lower parallel efficiency); on a cluster the driver node is
  separate, so executor efficiency is higher — this is the effect
  behind the paper's super-linear per-core throughput on the cluster.

Defaults are calibrated so the four configurations land on the paper's
headline numbers: MOA ≈ 1,100 tweets/s constant, SparkSingle ≈ 7-17%
below MOA, SparkLocal ≈ 6k tweets/s, SparkCluster ≈ 14.5k tweets/s,
with plateaus past ~1M tweets. ``CostModel.calibrated`` can instead
derive the per-tweet cost from a measured throughput of *this* Python
pipeline, preserving shape with our own absolute scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class CostModel:
    """Per-record and per-batch cost parameters.

    Attributes:
        tweet_cpu_us: executor CPU per tweet (full pipeline) at the
            reference clock, excluding engine overhead.
        spark_overhead: fractional per-record overhead Spark adds over
            a bare single-threaded loop (serialization, task dispatch).
        driver_cpu_us: driver CPU per tweet (receive, deserialize,
            merge bookkeeping) at the reference clock.
        batch_overhead_base_s: fixed scheduling cost per micro-batch.
        batch_overhead_per_node_s: broadcast/coordination cost per node
            per micro-batch.
        startup_base_s / startup_per_node_s: one-time job startup.
        reference_clock_ghz: clock the CPU costs were measured at.
    """

    tweet_cpu_us: float = 909.0
    spark_overhead: float = 0.08
    driver_cpu_us: float = 36.0
    batch_overhead_base_s: float = 0.03
    batch_overhead_per_node_s: float = 0.008
    startup_base_s: float = 2.0
    startup_per_node_s: float = 1.5
    driver_reserve_cores: int = 1
    reference_clock_ghz: float = 3.2

    @classmethod
    def calibrated(cls, measured_throughput: float, **overrides) -> "CostModel":
        """Cost model whose per-tweet cost matches a measured pipeline.

        Args:
            measured_throughput: single-threaded tweets/second measured
                for the actual pipeline implementation.
        """
        if measured_throughput <= 0:
            raise ValueError("measured_throughput must be positive")
        base = cls(tweet_cpu_us=1e6 / measured_throughput)
        return replace(base, **overrides) if overrides else base

    def clock_scale(self, clock_ghz: float) -> float:
        """Slowdown factor of a core relative to the reference clock."""
        if clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        return self.reference_clock_ghz / clock_ghz

    def batch_overhead_s(self, n_nodes: int) -> float:
        """Per-micro-batch scheduling + broadcast cost."""
        return self.batch_overhead_base_s + self.batch_overhead_per_node_s * n_nodes

    def startup_s(self, n_nodes: int) -> float:
        """One-time job startup cost."""
        return self.startup_base_s + self.startup_per_node_s * n_nodes


@dataclass(frozen=True)
class ClusterSpec:
    """A deployment configuration of the streaming system.

    Attributes:
        name: display name ("MOA", "SparkSingle", ...).
        engine: "moa" (bare loop) or "spark" (micro-batched).
        n_nodes / cores_per_node / clock_ghz: hardware.
        parallel_efficiency: fraction of ideal speedup the executor
            pool achieves (load imbalance, stragglers).
        dedicated_driver: True when the driver runs off the executor
            nodes (cluster mode); False when it contends with the
            executors (local mode).
        micro_batch_size: tweets per micro-batch (spark engines).
    """

    name: str
    engine: str = "spark"
    n_nodes: int = 1
    cores_per_node: int = 1
    clock_ghz: float = 3.2
    parallel_efficiency: float = 0.9
    dedicated_driver: bool = False
    micro_batch_size: int = 10_000

    def __post_init__(self) -> None:
        if self.engine not in ("moa", "spark"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.n_nodes < 1 or self.cores_per_node < 1:
            raise ValueError("nodes and cores must be >= 1")
        if not 0.0 < self.parallel_efficiency <= 1.0:
            raise ValueError("parallel_efficiency must be in (0, 1]")

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.cores_per_node


#: The four configurations evaluated in §V-E. Hardware per the paper:
#: an 8-core 3.2GHz server for MOA/SparkSingle/SparkLocal and a 3-node
#: cluster of 8-core 2.4GHz machines for SparkCluster.
MOA_SPEC = ClusterSpec(name="MOA", engine="moa", cores_per_node=1)
SPARK_SINGLE_SPEC = ClusterSpec(
    name="SparkSingle", cores_per_node=1, parallel_efficiency=1.0
)
SPARK_LOCAL_SPEC = ClusterSpec(
    name="SparkLocal",
    cores_per_node=8,
    parallel_efficiency=0.80,
    dedicated_driver=False,
)
SPARK_CLUSTER_SPEC = ClusterSpec(
    name="SparkCluster",
    n_nodes=3,
    cores_per_node=8,
    clock_ghz=2.4,
    parallel_efficiency=0.92,
    dedicated_driver=True,
)

PAPER_SPECS: Tuple[ClusterSpec, ...] = (
    MOA_SPEC,
    SPARK_SINGLE_SPEC,
    SPARK_LOCAL_SPEC,
    SPARK_CLUSTER_SPEC,
)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one workload on one configuration."""

    spec_name: str
    n_tweets: int
    execution_time_s: float
    throughput: float
    n_batches: int


class SimulatedCluster:
    """Deterministic executor of the cost model for one configuration."""

    def __init__(self, spec: ClusterSpec, cost_model: CostModel = CostModel()) -> None:
        self.spec = spec
        self.cost_model = cost_model

    def execution_time_s(self, n_tweets: int) -> float:
        """Wall-clock seconds to process ``n_tweets``."""
        if n_tweets < 0:
            raise ValueError("n_tweets must be non-negative")
        if n_tweets == 0:
            return 0.0
        if self.spec.engine == "moa":
            return self._moa_time(n_tweets)
        return self._spark_time(n_tweets)

    def _moa_time(self, n_tweets: int) -> float:
        cm = self.cost_model
        scale = cm.clock_scale(self.spec.clock_ghz)
        per_tweet = cm.tweet_cpu_us * scale * 1e-6
        return 1.0 + n_tweets * per_tweet  # ~1s of JVM/loader startup

    def _spark_time(self, n_tweets: int) -> float:
        cm = self.cost_model
        spec = self.spec
        scale = cm.clock_scale(spec.clock_ghz)
        executor_us = cm.tweet_cpu_us * (1.0 + cm.spark_overhead) * scale
        driver_us = cm.driver_cpu_us * scale
        n_batches = max(1, math.ceil(n_tweets / spec.micro_batch_size))
        total = cm.startup_s(spec.n_nodes)
        remaining = n_tweets
        for _ in range(n_batches):
            batch = min(spec.micro_batch_size, remaining)
            remaining -= batch
            total += self._batch_time_s(batch, executor_us, driver_us)
        return total

    def _batch_time_s(
        self, batch: int, executor_us: float, driver_us: float
    ) -> float:
        cm = self.cost_model
        spec = self.spec
        if spec.dedicated_driver:
            # Driver work overlaps with executor work; it reserves a few
            # cores on its node and is rarely the bottleneck.
            executor_cores = max(
                spec.total_cores - cm.driver_reserve_cores, 1
            )
            pool = executor_cores * spec.parallel_efficiency
            executor_s = batch * executor_us * 1e-6 / pool
            driver_pool = spec.cores_per_node * spec.parallel_efficiency
            driver_s = batch * driver_us * 1e-6 / driver_pool
            compute = max(executor_s, driver_s)
        else:
            # Driver and executors share the same cores.
            pool = spec.total_cores * spec.parallel_efficiency
            compute = batch * (executor_us + driver_us) * 1e-6 / pool
        return compute + cm.batch_overhead_s(spec.n_nodes)

    def throughput(self, n_tweets: int) -> float:
        """Tweets per second over a run of ``n_tweets``.

        A non-positive execution time means the rate was never measured,
        so the result is ``nan`` — not ``0.0``, which would read as "the
        cluster processed nothing" and silently poison averages.
        """
        time_s = self.execution_time_s(n_tweets)
        if time_s <= 0:
            return float("nan")
        return n_tweets / time_s

    def simulate(self, n_tweets: int) -> SimulationResult:
        """Full result record for one workload size."""
        time_s = self.execution_time_s(n_tweets)
        n_batches = (
            max(1, math.ceil(n_tweets / self.spec.micro_batch_size))
            if self.spec.engine == "spark"
            else 0
        )
        return SimulationResult(
            spec_name=self.spec.name,
            n_tweets=n_tweets,
            execution_time_s=time_s,
            throughput=n_tweets / time_s if time_s > 0 else float("nan"),
            n_batches=n_batches,
        )


def sweep(
    specs: Sequence[ClusterSpec],
    workloads: Sequence[int],
    cost_model: CostModel = CostModel(),
) -> Dict[str, List[SimulationResult]]:
    """Simulate every (spec, workload) pair — the Fig. 15/16 grid."""
    results: Dict[str, List[SimulationResult]] = {}
    for spec in specs:
        cluster = SimulatedCluster(spec, cost_model)
        results[spec.name] = [cluster.simulate(n) for n in workloads]
    return results


def machines_needed_for_firehose(
    cost_model: CostModel = CostModel(),
    firehose_tweets_per_s: float = 9000.0,
    capacity_factor: float = 1.5,
    max_nodes: int = 16,
) -> int:
    """Smallest cluster (paper hardware) sustaining the Twitter Firehose.

    The paper reports ~778M tweets/day ≈ 9k tweets/s and concludes 3
    commodity machines suffice. Production sizing needs headroom over
    the average rate to absorb bursts — ``capacity_factor`` encodes
    that margin (the paper's 3-node setup sustains ~14.5k tweets/s,
    i.e. ~1.6x the Firehose average).
    """
    required = firehose_tweets_per_s * capacity_factor
    for n_nodes in range(1, max_nodes + 1):
        spec = replace(SPARK_CLUSTER_SPEC, n_nodes=n_nodes)
        cluster = SimulatedCluster(spec, cost_model)
        # Steady-state throughput: large workload amortizes startup.
        if cluster.throughput(5_000_000) >= required:
            return n_nodes
    raise RuntimeError(f"firehose not sustainable with {max_nodes} nodes")
