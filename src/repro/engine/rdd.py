"""Partitioned in-memory datasets with Spark-like transformations.

An :class:`RDD` holds a list of partitions; transformations (map,
filter, map_partitions) are lazy in spirit but executed eagerly per
call through a pluggable :class:`~repro.engine.runners.Runner`, which
decides whether partitions run serially, on a thread pool, or on a
process pool. ``aggregate`` implements Spark's seqOp/combOp contract,
which the micro-batch engine uses for local-model training + global
merge (op #3 of Fig. 2).
"""

from __future__ import annotations

from typing import Callable, Generic, List, Optional, Sequence, TypeVar

from repro.engine.runners import Runner, SerialRunner

T = TypeVar("T")
U = TypeVar("U")
A = TypeVar("A")


class RDD(Generic[T]):
    """An immutable partitioned dataset."""

    def __init__(
        self,
        partitions: Sequence[Sequence[T]],
        runner: Optional[Runner] = None,
    ) -> None:
        if not partitions:
            raise ValueError("RDD needs at least one partition")
        self.partitions: List[List[T]] = [list(p) for p in partitions]
        self.runner: Runner = runner if runner is not None else SerialRunner()

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def count(self) -> int:
        """Total number of elements."""
        return sum(len(p) for p in self.partitions)

    def collect(self) -> List[T]:
        """All elements, partition order preserved."""
        result: List[T] = []
        for partition in self.partitions:
            result.extend(partition)
        return result

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def map(self, func: Callable[[T], U]) -> "RDD[U]":
        """Element-wise transformation, partitions processed in parallel."""
        new_partitions = self.runner.run(
            [_MapTask(partition, func) for partition in self.partitions]
        )
        return RDD(new_partitions, runner=self.runner)

    def filter(self, predicate: Callable[[T], bool]) -> "RDD[T]":
        """Keep elements matching the predicate."""
        new_partitions = self.runner.run(
            [_FilterTask(partition, predicate) for partition in self.partitions]
        )
        return RDD(new_partitions, runner=self.runner)

    def map_partitions(
        self, func: Callable[[List[T]], List[U]]
    ) -> "RDD[U]":
        """Partition-wise transformation."""
        new_partitions = self.runner.run(
            [_PartitionTask(partition, func) for partition in self.partitions]
        )
        return RDD(new_partitions, runner=self.runner)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def aggregate(
        self,
        zero: Callable[[], A],
        seq_op: Callable[[A, T], A],
        comb_op: Callable[[A, A], A],
    ) -> A:
        """Spark-style aggregate: per-partition fold, then combine.

        ``zero`` is a factory so each partition gets an independent
        accumulator (matters for mutable accumulators like models).
        """
        locals_: List[A] = self.runner.run(
            [_AggregateTask(partition, zero, seq_op) for partition in self.partitions]
        )
        result = locals_[0]
        for local in locals_[1:]:
            result = comb_op(result, local)
        return result

    def reduce(self, func: Callable[[T, T], T]) -> T:
        """Pairwise reduction over all elements."""
        items = self.collect()
        if not items:
            raise ValueError("cannot reduce an empty RDD")
        result = items[0]
        for item in items[1:]:
            result = func(result, item)
        return result


class _MapTask:
    """Picklable element-wise map over one partition."""

    def __init__(self, partition: List, func: Callable) -> None:
        self.partition = partition
        self.func = func

    def __call__(self) -> List:
        return [self.func(item) for item in self.partition]


class _FilterTask:
    """Picklable filter over one partition."""

    def __init__(self, partition: List, predicate: Callable) -> None:
        self.partition = partition
        self.predicate = predicate

    def __call__(self) -> List:
        return [item for item in self.partition if self.predicate(item)]


class _PartitionTask:
    """Picklable partition-wise transform."""

    def __init__(self, partition: List, func: Callable) -> None:
        self.partition = partition
        self.func = func

    def __call__(self) -> List:
        return self.func(self.partition)


class _AggregateTask:
    """Picklable per-partition fold."""

    def __init__(self, partition: List, zero: Callable, seq_op: Callable) -> None:
        self.partition = partition
        self.zero = zero
        self.seq_op = seq_op

    def __call__(self):
        acc = self.zero()
        for item in self.partition:
            acc = self.seq_op(acc, item)
        return acc


def round_robin_partitions(
    data: Sequence[T], n_partitions: int
) -> List[List[T]]:
    """Split a sequence into ``n_partitions`` round-robin partitions.

    Round-robin (rather than contiguous chunks) mirrors Spark's random
    partitioning of streaming receivers and keeps the label mix of each
    partition representative. The micro-batch engine partitions each
    batch with this directly; :func:`parallelize` wraps the result in an
    :class:`RDD`.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    partitions: List[List[T]] = [[] for _ in range(n_partitions)]
    for index, item in enumerate(data):
        partitions[index % n_partitions].append(item)
    return partitions


def parallelize(
    data: Sequence[T],
    n_partitions: int,
    runner: Optional[Runner] = None,
) -> RDD[T]:
    """Round-robin ``data`` into an ``n_partitions``-wide :class:`RDD`."""
    return RDD(round_robin_partitions(data, n_partitions), runner=runner)
