"""Sequential (MOA-like) execution of the pipeline.

MOA processes the stream on a single thread with no batching or
scheduling overhead; this engine does the same by delegating to the
reference :class:`~repro.core.pipeline.AggressionDetectionPipeline`,
while recording wall-clock time and throughput so the scalability study
can compare it against the micro-batch engine (Figs. 15/16).

Observability: the engine shares one
:class:`~repro.obs.metrics.MetricsRegistry` with its pipeline, times
its driver loop with :class:`~repro.obs.tracing.Tracer` spans
(``stage_seconds{engine="sequential"}``), and surfaces the pipeline's
per-tweet stage totals (``tweet_stage_seconds``) as
:attr:`SequentialRunResult.stage_seconds` — the same shape the
micro-batch engine reports, so the two are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Optional

from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline, PipelineResult
from repro.data.tweet import Tweet
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, stage_seconds_by_stage
from repro.reliability.deadletter import DeadLetterQueue

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.reliability.overload import OverloadController


@dataclass
class SequentialRunResult:
    """Timing-annotated outcome of a sequential run."""

    pipeline_result: PipelineResult
    elapsed_seconds: float
    #: Exact seconds per per-tweet stage (extract/normalize/predict/
    #: learn/alert), read back from the registry's span histograms.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Tweets processed per second.

        ``nan`` for un-timed results (``elapsed_seconds <= 0``) — a
        silent ``0.0`` would poison bench summaries that average or
        compare throughputs.
        """
        if self.elapsed_seconds <= 0:
            return float("nan")
        return self.pipeline_result.n_processed / self.elapsed_seconds

    @property
    def metrics(self) -> Dict[str, float]:
        return self.pipeline_result.metrics


class SequentialEngine:
    """Single-threaded, per-record execution (the MOA baseline).

    ``dead_letters`` / ``max_poison_rate`` pass straight through to the
    pipeline's poison-tweet quarantine (see
    :class:`~repro.core.pipeline.AggressionDetectionPipeline`);
    ``metrics`` lets a caller (supervisor, CLI) share a registry with
    the engine — by default the engine creates its own.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
        max_poison_rate: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        controller: Optional["OverloadController"] = None,
    ) -> None:
        self.pipeline = AggressionDetectionPipeline(
            config,
            dead_letters=dead_letters,
            max_poison_rate=max_poison_rate,
            metrics=metrics,
        )
        self.metrics = self.pipeline.metrics
        self._tracer = Tracer(self.metrics, labels={"engine": "sequential"})
        self._m_ingested = self.metrics.counter(
            "tweets_ingested_total", engine="sequential"
        )
        self._batch_hist = self.metrics.histogram(
            "batch_seconds", engine="sequential"
        )
        self._elapsed = 0.0
        self.controller = controller
        if controller is not None:
            self.pipeline.set_degrade_tier(controller.tier)

    def replace_pipeline(self, pipeline: AggressionDetectionPipeline) -> None:
        """Swap in a (restored) pipeline and rebind the shared registry.

        The engine's tracer and bound counters must follow the new
        pipeline's registry or the two would report into different
        worlds; checkpoint resume uses this.
        """
        self.pipeline = pipeline
        self.metrics = pipeline.metrics
        self._tracer = Tracer(self.metrics, labels={"engine": "sequential"})
        self._m_ingested = self.metrics.counter(
            "tweets_ingested_total", engine="sequential"
        )
        self._batch_hist = self.metrics.histogram(
            "batch_seconds", engine="sequential"
        )
        if self.controller is not None:
            self.pipeline.set_degrade_tier(self.controller.tier)

    def _stage_totals(self) -> Dict[str, float]:
        return stage_seconds_by_stage(
            self.metrics, metric="tweet_stage_seconds", engine="sequential"
        )

    def process_many(self, tweets: Iterable[Tweet]) -> int:
        """Process a chunk of the stream, accumulating elapsed time.

        The stream supervisor drives the engine through this method so
        it can checkpoint between chunks; returns the number of tweets
        consumed (including quarantined ones).
        """
        count = 0
        with self._tracer.span("process_many") as span:
            for tweet in tweets:
                self.pipeline.process(tweet)
                count += 1
        self._m_ingested.inc(count)
        assert span.duration is not None
        self._elapsed += span.duration
        # Each chunk doubles as this engine's "batch" for overload
        # purposes: it feeds the same batch_seconds family the
        # micro-batch engine uses, so OverloadController.poll() works
        # against either engine unchanged.
        self._batch_hist.observe(span.duration)
        if self.controller is not None:
            queue = self.controller.queue
            self.controller.observe_batch(
                span.duration,
                queue_fraction=(
                    queue.depth_fraction if queue is not None else None
                ),
            )
            self.pipeline.set_degrade_tier(self.controller.tier)
        return count

    def result(self) -> SequentialRunResult:
        """Snapshot the cumulative outcome of all chunks so far."""
        return SequentialRunResult(
            pipeline_result=self.pipeline.result(),
            elapsed_seconds=self._elapsed,
            stage_seconds=self._stage_totals(),
        )

    def run(self, tweets: Iterable[Tweet]) -> SequentialRunResult:
        """Process the whole stream one tweet at a time."""
        count = 0
        with self._tracer.span("run") as span:
            for tweet in tweets:
                self.pipeline.process(tweet)
                count += 1
        self._m_ingested.inc(count)
        assert span.duration is not None
        return SequentialRunResult(
            pipeline_result=self.pipeline.result(),
            elapsed_seconds=span.duration,
            stage_seconds=self._stage_totals(),
        )

    def measure_throughput(
        self, tweets: Iterable[Tweet], warmup: int = 1000
    ) -> float:
        """Steady-state tweets/second after a warm-up prefix."""
        iterator = iter(tweets)
        with self._tracer.span("warmup"):
            for _, tweet in zip(range(warmup), iterator):
                self.pipeline.process(tweet)
        count = 0
        with self._tracer.span("measure") as span:
            for tweet in iterator:
                self.pipeline.process(tweet)
                count += 1
        assert span.duration is not None
        if span.duration <= 0 or count == 0:
            # No measurable interval or nothing processed after warmup:
            # there is no throughput to report, and 0.0 would poison
            # bench comparisons as "infinitely slow".
            return float("nan")
        return count / span.duration
