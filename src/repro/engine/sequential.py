"""Sequential (MOA-like) execution of the pipeline.

MOA processes the stream on a single thread with no batching or
scheduling overhead; this engine does the same by delegating to the
reference :class:`~repro.core.pipeline.AggressionDetectionPipeline`,
while recording wall-clock time and throughput so the scalability study
can compare it against the micro-batch engine (Figs. 15/16).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.core.config import PipelineConfig
from repro.core.pipeline import AggressionDetectionPipeline, PipelineResult
from repro.data.tweet import Tweet
from repro.reliability.deadletter import DeadLetterQueue


@dataclass
class SequentialRunResult:
    """Timing-annotated outcome of a sequential run."""

    pipeline_result: PipelineResult
    elapsed_seconds: float

    @property
    def throughput(self) -> float:
        """Tweets processed per second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.pipeline_result.n_processed / self.elapsed_seconds

    @property
    def metrics(self) -> Dict[str, float]:
        return self.pipeline_result.metrics


class SequentialEngine:
    """Single-threaded, per-record execution (the MOA baseline).

    ``dead_letters`` / ``max_poison_rate`` pass straight through to the
    pipeline's poison-tweet quarantine (see
    :class:`~repro.core.pipeline.AggressionDetectionPipeline`).
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
        max_poison_rate: Optional[float] = None,
    ) -> None:
        self.pipeline = AggressionDetectionPipeline(
            config, dead_letters=dead_letters, max_poison_rate=max_poison_rate
        )
        self._elapsed = 0.0

    def process_many(self, tweets: Iterable[Tweet]) -> int:
        """Process a chunk of the stream, accumulating elapsed time.

        The stream supervisor drives the engine through this method so
        it can checkpoint between chunks; returns the number of tweets
        consumed (including quarantined ones).
        """
        start = time.perf_counter()
        count = 0
        for tweet in tweets:
            self.pipeline.process(tweet)
            count += 1
        self._elapsed += time.perf_counter() - start
        return count

    def result(self) -> SequentialRunResult:
        """Snapshot the cumulative outcome of all chunks so far."""
        return SequentialRunResult(
            pipeline_result=self.pipeline.result(),
            elapsed_seconds=self._elapsed,
        )

    def run(self, tweets: Iterable[Tweet]) -> SequentialRunResult:
        """Process the whole stream one tweet at a time."""
        start = time.perf_counter()
        result = self.pipeline.process_stream(tweets)
        elapsed = time.perf_counter() - start
        return SequentialRunResult(pipeline_result=result, elapsed_seconds=elapsed)

    def measure_throughput(
        self, tweets: Iterable[Tweet], warmup: int = 1000
    ) -> float:
        """Steady-state tweets/second after a warm-up prefix."""
        iterator = iter(tweets)
        for _, tweet in zip(range(warmup), iterator):
            self.pipeline.process(tweet)
        start = time.perf_counter()
        count = 0
        for tweet in iterator:
            self.pipeline.process(tweet)
            count += 1
        elapsed = time.perf_counter() - start
        if elapsed <= 0 or count == 0:
            return 0.0
        return count / elapsed
