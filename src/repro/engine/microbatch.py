"""Micro-batch execution of the pipeline (Fig. 2 dataflow).

Each micro-batch of tweets becomes a partitioned RDD and flows through
the numbered operations of Fig. 2:

1. ``map`` — preprocessing + feature extraction + normalization.
   Each partition starts from the normalizer statistics broadcast by
   the driver, observes its own raw vectors locally (so transforms are
   self-inclusive, matching the sequential engine's
   observe-then-transform semantics), and accumulates a *fresh*
   partition-local normalizer holding only its own observations;
2. ``filter`` — keep the labeled instances;
3. ``aggregate`` — each task trains a *local* model (a structure copy
   of the global Hoeffding Tree / ARF, or a weight copy for SLR), and
   the driver merges the local models into the global model;
4. ``map`` — predictions with the model broadcast at batch start;
5. ``map`` — local confusion statistics;
6. ``reduce`` — global evaluation metrics *and* global normalizer
   statistics: the driver folds each small per-partition normalizer
   into the global one with ``Normalizer.merge()``.

The driver therefore only merges fixed-size aggregates — models, BoW
deltas, confusion matrices, normalizer statistics — so its per-batch
work is O(partitions), not O(tweets). The only per-record driver work
left is draining the batch's *unlabeled* instances into alerting and
sampling, which hold driver-side state (per-user alert history, the
boosted reservoir) and receive the drain as one batched call each.

Broadcast cost is O(1) per batch, not O(partitions): the batch-start
state (model, normalizer statistics, BoW lexicon delta) rides in one
:class:`~repro.engine.runners.StateBroadcast` shared by every partition
task. Under a process runner it is pickled once per batch and decoded
once per worker (workers cache the last version); under serial/thread
runners the partitions read the live objects directly, which is why
partition code treats the broadcast strictly as read-only — local
normalizer clones come from ``fresh()`` + ``merge()`` (an exact copy:
merging into an empty normalizer reproduces every statistic), and each
partition builds its own trainable local model from the broadcast
worker-side.

Every stage is timed on the driver (:class:`StageTimings`); the
per-batch and per-run timings are surfaced on :class:`MicroBatchResult`
and :class:`EngineResult` so scale-out regressions are visible in the
benchmarks and the CLI.

The updated global model (serialized well under 1 MB, as the paper
notes) is "broadcast" — passed to the next batch's tasks.

Tweets travel the same way: under a pickling (process) runner the
driver encodes each micro-batch's partitions once into a pooled
shared-memory :class:`~repro.engine.runners.TweetBlock`, and every
partition task carries only an O(1) ``(segment, offset, length)``
descriptor — N partitions no longer cost N tweet-list pickles through
the pool's task pipe. Partition outputs ship compact aggregates on the
way back (SLR locals reduce to a weights/bias/count triple; per-tweet
stage telemetry is only measured and shipped when worker telemetry is
on).

With ``pipelined=True`` the engine double-buffers batches: after batch
*k*'s partitions resolve, the driver merges *k* (so batch *k+1*'s
broadcast sees the updated state), launches *k+1* on a background
submit thread, and runs *k*'s per-record drain/telemetry finalize
while *k+1* computes. Merge order — and therefore model state — is
bit-identical to the synchronous path; see :meth:`submit_batch`.

Reliability: a batch whose partition tasks fail with a *transient*
error (lost pool worker, I/O hiccup, injected fault) is retried under
the engine's :class:`~repro.reliability.supervisor.RetryPolicy` with
exponential backoff and seeded jitter; the task list is rebuilt from
scratch for every attempt, and since all merges happen only after every
partition returns, engine state is bit-identical across attempts.
Fatal errors (deterministic bugs, bad data) propagate immediately.
With a dead-letter queue attached, each partition additionally
quarantines per-tweet failures (validation/extraction/normalization/
prediction) instead of failing the whole partition, shipping the
records back to the driver's queue; a failure-rate circuit breaker
stops the run when the stream is too dirty to trust.
"""

from __future__ import annotations

import os
import random
import time
import traceback as traceback_module
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    ContextManager,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.adaptive_bow import AdaptiveBagOfWords, FixedBagOfWords
from repro.core.alerting import AlertManager, AlertPolicy
from repro.core.config import PipelineConfig, create_model
from repro.core.evaluation import ConfusionMatrix
from repro.core.features import (
    N_FEATURES,
    DegradeTier,
    FeatureExtractor,
    LabelEncoder,
)
from repro.core.normalization import Normalizer, make_normalizer
from repro.core.sampling import BoostedRandomSampler
from repro.data.tweet import Tweet
from repro.engine.rdd import round_robin_partitions
from repro.engine.runners import (
    OUTCOME_TIMED_OUT,
    OUTCOME_WORKER_LOST,
    PartitionError,
    Runner,
    SegmentPool,
    SerialRunner,
    StateBroadcast,
    TaskOutcome,
    TweetBlock,
    TweetSlice,
    make_runner,
    new_broadcast_key,
)
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.profile import ProfileReport, ProfileSlice, profile_call
from repro.obs.recorder import FlightRecorder
from repro.obs.tracing import (
    STAGE_SECONDS,
    WORKER_STAGE_SECONDS,
    Tracer,
    WorkerTelemetry,
    span_tree,
    stage_seconds_by_stage,
)
from repro.reliability.deadletter import (
    CircuitBreaker,
    DeadLetterQueue,
    DeadLetterRecord,
    validate_tweet,
)
from repro.streamml.base import StreamClassifier
from repro.streamml.instance import ClassifiedInstance, Instance, InstanceBlock
from repro.streamml.slr import StreamingLogisticRegression
from repro.text.lexicons import SWEAR_WORDS

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.reliability.overload import OverloadController
    from repro.reliability.supervisor import RetryPolicy

#: Driver-side callback fired after each completed micro-batch.
BatchCallback = Callable[["MicroBatchResult"], None]

#: Quantile-sketch sampling factor for the per-tweet stage histograms
#: (matches the sequential pipeline's STAGE_SKETCH_EVERY): count/sum
#: stay exact per tweet, P² sketches ingest every 8th observation.
TWEET_SKETCH_EVERY = 8


class _NullHistogram:
    """Observe sink used when worker telemetry is off.

    The partition hot loops keep their ``observe`` call sites, but with
    telemetry disabled the per-tweet stage timings are neither sketched
    nor shipped back to the driver — the default-off path stops paying
    for (and pickling) data it would discard.
    """

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_HIST = _NullHistogram()


class _SLRDelta:
    """Compact SLR partition result: weights, bias, examples seen.

    A trained partition-local :class:`StreamingLogisticRegression`
    carries its full configuration (learning-rate schedule, lambda,
    counters, fast-math state); the driver's iterative-parameter-mixing
    merge reads only three fields, so the worker ships exactly those.
    Duck-typed into :meth:`MicroBatchEngine._average_slr` — the merge
    arithmetic is unchanged, byte for byte.
    """

    __slots__ = ("weights", "bias", "instances_seen")

    def __init__(
        self,
        weights: List[List[float]],
        bias: List[float],
        instances_seen: int,
    ) -> None:
        self.weights = weights
        self.bias = bias
        self.instances_seen = instances_seen


def _compact_local_model(model: StreamClassifier) -> object:
    """Shrink a trained local model for the return trip when possible.

    SLR locals reduce to an :class:`_SLRDelta`; tree/ensemble structure
    copies *are* the delta (the driver grafts their accumulated
    statistics) and ship whole, as do plain clones.
    """
    if isinstance(model, StreamingLogisticRegression) and not hasattr(
        model, "structure_copy"
    ):
        return _SLRDelta(
            weights=[list(row) for row in model.weights],
            bias=list(model.bias),
            instances_seen=model.instances_seen,
        )
    return model


@dataclass
class _PartitionOutput:
    """Everything a partition task sends back to the driver.

    All fields are either fixed-size aggregates (model, BoW delta,
    confusion matrix, normalizer statistics, counters) or the batch's
    unlabeled instances destined for the driver-side alert/sample
    drain. Raw feature vectors never leave the partition.

    ``local_model`` is either a trained local classifier (tree/ensemble
    structure copies, plain clones) or an :class:`_SLRDelta` — the
    compact weights/bias/examples triple the SLR merge actually reads.
    """

    local_model: Optional[object]
    bow_delta: Optional[AdaptiveBagOfWords]
    local_stats: ConfusionMatrix
    local_normalizer: Normalizer
    n_labeled: int
    n_unlabeled: int
    unlabeled: List[Tuple[ClassifiedInstance, Optional[str]]]
    # (tweet_id, stage, error, traceback) per quarantined tweet; the
    # driver folds these into its dead-letter queue.
    poisoned: List[Tuple[Optional[str], str, str, str]] = field(
        default_factory=list
    )
    # Partition-local metric snapshot (per-tweet stage histograms,
    # throughput counters); the driver folds it into its registry with
    # MetricsRegistry.merge_snapshot — same pattern as the normalizer.
    metrics: Optional[MetricsSnapshot] = None
    # Captured worker-side spans (decode/derive_state/extract/...)
    # under one root "partition" span; the driver stitches these into
    # the batch trace. None when worker telemetry is off.
    telemetry: Optional[WorkerTelemetry] = None
    # Top functions by cumulative time when --profile-partitions is on.
    profile: Optional[ProfileSlice] = None


@dataclass
class _ExecStats:
    """Per-batch tally of the deadline path's fault-domain events."""

    retries: int = 0
    n_timeouts: int = 0
    n_worker_lost: int = 0
    n_speculative: int = 0
    n_speculative_wins: int = 0
    n_pool_rebuilds: int = 0
    # Per-partition annotations for trace stitching: speculative win,
    # runner-observed duration, retry round the partition resolved on.
    partition_meta: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    @property
    def n_stragglers(self) -> int:
        """Partitions that blew their deadline or lost their worker."""
        return self.n_timeouts + self.n_worker_lost


@dataclass
class _ExecBundle:
    """Everything the partition-execute stage produced for one batch.

    Built either inline (synchronous :meth:`process_batch`) or on the
    pipeline submit thread; the merge/finalize phases consume it on the
    driver thread in both cases, so the two paths share one code body.
    """

    outputs: List[_PartitionOutput]
    indexed_outputs: List[Optional[_PartitionOutput]]
    dropped: List[Tuple[int, TaskOutcome]]
    exec_stats: Optional[_ExecStats]
    retries_used: int
    execute_seconds: float
    #: perf_counter timestamp when the last partition resolved — the
    #: anchor for the worker_idle_seconds measurement at next submit.
    done_at: float


@dataclass
class _BatchState:
    """One micro-batch's driver-side lifecycle record.

    Created at launch (broadcast snapshot + partitioning + tweet-block
    encode), carried through execute (``future``/``bundle``) and the
    merge/finalize phases. In pipelined mode exactly one of these is in
    flight at a time (double buffering: batch *k* finalizes while batch
    *k+1* computes).
    """

    n_tweets: int
    batch_tier: DegradeTier
    broadcast: StateBroadcast
    partitions: List[List[Tweet]]
    block: TweetBlock
    started: float
    future: Optional["Future[_ExecBundle]"] = None
    bundle: Optional[_ExecBundle] = None
    #: Driver-tracer-observed execute duration (sync path only); the
    #: pipelined path uses the bundle's own measurement.
    execute_span_s: Optional[float] = None
    model_merge_s: float = 0.0
    bow_absorb_s: float = 0.0
    normalizer_merge_s: float = 0.0


def _maybe_span(tracer: Optional[Tracer], name: str) -> ContextManager:
    """A tracer span, or a no-op context when telemetry is off."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name)


def _make_local_model(model: StreamClassifier) -> StreamClassifier:
    """Partition-local trainable copy of the broadcast model (op #3).

    Built *worker-side* from the broadcast model, so the driver never
    serializes per-task local models: HT/ARF/Oza ensembles get a
    statistics-accumulating structure copy, SLR a weight copy with the
    example counter reset (the driver's merge weighs locals by examples
    seen this batch), everything else a plain clone.
    """
    if hasattr(model, "structure_copy"):
        return model.structure_copy()
    if isinstance(model, StreamingLogisticRegression):
        local = model.clone()
        local.merge(model)  # copy current weights
        local.instances_seen = 0
        return local
    return model.clone()


class _PartitionTask:
    """Picklable per-partition work unit (ops #1-#5 of Fig. 2).

    A compact descriptor: this partition's
    :class:`~repro.engine.runners.TweetSlice` (an O(1) shared-memory
    coordinate under process runners, the live list otherwise) plus a
    handful of scalar flags. The heavyweight batch-start state — model,
    normalizer statistics, BoW lexicon delta — rides in the shared
    :class:`~repro.engine.runners.StateBroadcast` (pickled once per
    batch, decoded once per worker, read live under serial/thread
    runners). Everything resolved from the broadcast is treated as
    read-only: sibling partitions share it.
    """

    def __init__(
        self,
        tweets: TweetSlice,
        broadcast: StateBroadcast,
        n_classes: int,
        preprocessing: bool,
        deobfuscate: bool,
        adaptive_bow: bool,
        quarantine: bool = False,
        tier: DegradeTier = DegradeTier.FULL,
        worker_telemetry: bool = True,
        profile: bool = False,
    ) -> None:
        self.tweets = tweets
        self.broadcast = broadcast
        self.n_classes = n_classes
        self.preprocessing = preprocessing
        self.deobfuscate = deobfuscate
        self.adaptive_bow = adaptive_bow
        self.quarantine = quarantine
        self.tier = tier
        self.worker_telemetry = worker_telemetry
        self.profile = profile

    def __call__(self) -> _PartitionOutput:
        # Partition-local observability: nothing here is shared with the
        # driver or sibling partitions; the snapshot (and the captured
        # spans) ride back on the output, like the local normalizer.
        registry = MetricsRegistry()
        tracer: Optional[Tracer] = None
        if self.worker_telemetry:
            tracer = Tracer(
                registry,
                labels={"engine": "microbatch"},
                metric=WORKER_STAGE_SECONDS,
                capture=True,
            )
        profile_slice: Optional[ProfileSlice] = None
        with _maybe_span(tracer, "partition") as root:
            if self.profile:
                output, profile_slice = profile_call(
                    lambda: self._execute(registry, tracer)
                )
            else:
                output = self._execute(registry, tracer)
        if tracer is not None:
            output.telemetry = WorkerTelemetry(
                spans=tracer.drain(),
                pid=os.getpid(),
                wall_s=root.duration or 0.0,
            )
        output.profile = profile_slice
        # Snapshot last so the worker spans' own histogram observations
        # (recorded as each span closes) are part of what ships back.
        output.metrics = registry.snapshot()
        return output

    def _execute(
        self, registry: MetricsRegistry, tracer: Optional[Tracer]
    ) -> _PartitionOutput:
        model: StreamClassifier
        normalizer: Normalizer
        with _maybe_span(tracer, "decode"):
            model, normalizer, bow_added, bow_removed = (
                self.broadcast.value(metrics=registry)
            )
            # Resolve the tweet slice in the same span: under a process
            # runner this attaches the batch's shared tweet block and
            # unpickles this partition's rows straight from the
            # mapping; otherwise it returns the live list.
            tweets = self.tweets.resolve()
        bow_words = (SWEAR_WORDS - bow_removed) | bow_added
        m_processed = registry.counter(
            "tweets_processed_total", engine="microbatch"
        )
        m_labeled = registry.counter(
            "tweets_labeled_total", engine="microbatch"
        )
        m_unlabeled = registry.counter(
            "tweets_unlabeled_total", engine="microbatch"
        )
        # Per-tweet stage timings exist to be stitched into traces and
        # shipped back on the snapshot; with telemetry off they would
        # be measured, pickled, and discarded — skip them entirely.
        if self.worker_telemetry:
            stage_hists = {
                hist_stage: registry.histogram(
                    "tweet_stage_seconds",
                    sketch_every=TWEET_SKETCH_EVERY,
                    engine="microbatch",
                    stage=hist_stage,
                )
                for hist_stage in ("extract", "normalize", "predict")
            }
        else:
            stage_hists = {
                hist_stage: _NULL_HIST
                for hist_stage in ("extract", "normalize", "predict")
            }
        with _maybe_span(tracer, "derive_state"):
            encoder = LabelEncoder(self.n_classes)
            bow_delta: Optional[AdaptiveBagOfWords] = None
            if self.adaptive_bow:
                bow_delta = AdaptiveBagOfWords(
                    seed_words=bow_words, update_interval=10 ** 9
                )
                bag = bow_delta
            else:
                bag = FixedBagOfWords(seed_words=bow_words)
            extractor = FeatureExtractor(
                encoder=encoder,
                preprocessing=self.preprocessing,
                bag_of_words=bag,
                deobfuscate=self.deobfuscate,
                tier=self.tier,
            )
            # Broadcast statistics + this partition's own observations.
            # fresh() + merge() clones the broadcast exactly (merging
            # into an empty normalizer reproduces every statistic and
            # counter) while keeping the driver's live normalizer
            # untouched under the serial and thread runners — no deep
            # copy through the shared object graph.
            seen = normalizer.fresh()
            seen.merge(normalizer)
            base_transformed = seen.n_transformed
            base_clipped = seen.n_clipped
            local_normalizer = normalizer.fresh()
            local_model = _make_local_model(model)
        stats = ConfusionMatrix(self.n_classes)
        labeled: List[Instance] = []
        unlabeled: List[Tuple[ClassifiedInstance, Optional[str]]] = []
        poisoned: List[Tuple[Optional[str], str, str, str]] = []
        n_labeled = 0
        n_unlabeled = 0
        if self.quarantine:
            # Per-tweet loop: quarantine needs tweet-granular try/except
            # attribution, so each stage runs (and is timed) row by row
            # — the stages interleave per tweet, so the trace gets one
            # "process_rows" span for the whole loop (per-stage cost is
            # still in the tweet_stage_seconds histograms).
            with _maybe_span(tracer, "process_rows"):
                for tweet in tweets:
                    stage = "validate"
                    t_start = time.perf_counter()
                    try:
                        validate_tweet(tweet)
                        stage = "extract"
                        instance = extractor.extract(tweet)  # op #1 (extract)
                        t_extract = time.perf_counter()
                        stage = "normalize"
                        normalized = instance.with_features(
                            seen.observe_and_transform(instance.x)
                        )  # op #1 (normalize: broadcast + local statistics)
                        t_normalize = time.perf_counter()
                        stage = "predict"
                        proba = model.predict_proba_one(normalized.x)  # op #4
                        t_predict = time.perf_counter()
                    except Exception as exc:
                        registry.counter(
                            "tweets_quarantined_total",
                            engine="microbatch",
                            stage=stage,
                        ).inc()
                        poisoned.append(
                            (
                                getattr(tweet, "tweet_id", None),
                                stage,
                                f"{type(exc).__name__}: {exc}",
                                "".join(
                                    traceback_module.format_exception(
                                        type(exc), exc, exc.__traceback__
                                    )
                                ),
                            )
                        )
                        continue
                    stage_hists["extract"].observe(t_extract - t_start)
                    stage_hists["normalize"].observe(t_normalize - t_extract)
                    stage_hists["predict"].observe(t_predict - t_normalize)
                    m_processed.inc()
                    local_normalizer.observe(instance.x)
                    predicted = max(range(len(proba)), key=proba.__getitem__)
                    if normalized.is_labeled:
                        n_labeled += 1
                        m_labeled.inc()
                        assert normalized.y is not None
                        stats.add(normalized.y, predicted)  # op #5
                        labeled.append(normalized)  # op #2 (filter)
                    else:
                        n_unlabeled += 1
                        m_unlabeled.inc()
                        unlabeled.append(
                            (
                                ClassifiedInstance(
                                    instance=normalized,
                                    predicted=predicted,
                                    proba=proba,
                                ),
                                tweet.user.user_id,
                            )
                        )
        else:
            # Batched fast path, result-identical to the loop above (the
            # *_many kernels are bit-exact by contract, `seen` and the
            # local normalizer are independent, and predictions use the
            # read-only broadcast model, so de-interleaving the stages
            # changes no state any row can see). Exceptions propagate
            # and fail the partition, exactly like the old per-tweet
            # raise.
            perf_counter = time.perf_counter
            extract = extractor.extract
            hist_extract = stage_hists["extract"]
            instances: List[Instance] = []
            append_instance = instances.append
            with _maybe_span(tracer, "extract"):
                for tweet in tweets:
                    t_start = perf_counter()
                    append_instance(extract(tweet))  # op #1 (extract)
                    hist_extract.observe(perf_counter() - t_start)
                block = InstanceBlock(instances)
            # Under fast_math, hand the kernels the block's cached
            # float64 matrix so the two normalizer calls share one
            # rows->matrix conversion; otherwise (or for ragged rows)
            # the scalar kernels take the tuple columns as before.
            with _maybe_span(tracer, "normalize"):
                xs_in = (
                    block.matrix()
                    if getattr(seen, "fast_math", False)
                    else None
                )
                if xs_in is None:
                    xs_in = block.xs
                t_start = perf_counter()
                normalized_block = block.with_xs(
                    seen.observe_and_transform_many(xs_in)
                )  # op #1 (normalize: broadcast + local statistics)
                local_normalizer.observe_many(xs_in)
                t_normalize = perf_counter()
            with _maybe_span(tracer, "predict"):
                pred_in = (
                    normalized_block.matrix()
                    if getattr(model, "fast_math", False)
                    else None
                )
                if pred_in is None:
                    pred_in = normalized_block.xs
                probas = model.predict_proba_many(pred_in)  # op #4
                t_predict = perf_counter()
            with _maybe_span(tracer, "collect"):
                n = len(block)
                if n:
                    # The kernels ran once for the whole partition; book
                    # the amortized per-tweet cost so the histogram still
                    # counts one observation per tweet (sum stays the
                    # true total).
                    per_normalize = (t_normalize - t_start) / n
                    per_predict = (t_predict - t_normalize) / n
                    hist_normalize = stage_hists["normalize"]
                    hist_predict = stage_hists["predict"]
                    for _ in range(n):
                        hist_normalize.observe(per_normalize)
                        hist_predict.observe(per_predict)
                m_processed.inc(n)
                for normalized, proba, tweet in zip(
                    normalized_block, probas, tweets
                ):
                    predicted = max(
                        range(len(proba)), key=proba.__getitem__
                    )
                    if normalized.y is not None:
                        n_labeled += 1
                        stats.add(normalized.y, predicted)  # op #5
                        labeled.append(normalized)  # op #2 (filter)
                    else:
                        n_unlabeled += 1
                        unlabeled.append(
                            (
                                ClassifiedInstance(
                                    instance=normalized,
                                    predicted=predicted,
                                    proba=proba,
                                ),
                                tweet.user.user_id,
                            )
                        )
                if n_labeled:
                    m_labeled.inc(n_labeled)
                if n_unlabeled:
                    m_unlabeled.inc(n_unlabeled)
        with _maybe_span(tracer, "learn"):
            t_learn = time.perf_counter()
            local_model.learn_many(labeled)  # op #3, local part
            if labeled and self.worker_telemetry:
                registry.histogram(
                    "tweet_stage_seconds",
                    sketch_every=TWEET_SKETCH_EVERY,
                    engine="microbatch",
                    stage="learn",
                ).observe(time.perf_counter() - t_learn)
        # The broadcast copy did this partition's transforms; hand the
        # clip deltas back on the fresh normalizer so the driver's
        # merge() accumulates them globally.
        local_normalizer.n_transformed = seen.n_transformed - base_transformed
        local_normalizer.n_clipped = seen.n_clipped - base_clipped
        return _PartitionOutput(
            local_model=_compact_local_model(local_model),
            bow_delta=bow_delta,
            local_stats=stats,
            local_normalizer=local_normalizer,
            n_labeled=n_labeled,
            n_unlabeled=n_unlabeled,
            unlabeled=unlabeled,
            poisoned=poisoned,
            # metrics snapshot is taken by __call__ *after* the root
            # span closes, so worker span durations ship back too.
        )


@dataclass
class StageTimings:
    """Driver-observed wall-clock seconds per engine stage.

    ``partition_execute`` covers running all partition tasks (ops #1-#5
    of Fig. 2, including any pool scheduling and pickling); the
    remaining fields are the driver-side merge/drain stages.
    """

    partition_execute: float = 0.0
    model_merge: float = 0.0
    bow_absorb: float = 0.0
    normalizer_merge: float = 0.0
    drain: float = 0.0

    @property
    def total(self) -> float:
        """Sum of all stage timings."""
        return (
            self.partition_execute
            + self.model_merge
            + self.bow_absorb
            + self.normalizer_merge
            + self.drain
        )

    @property
    def driver_seconds(self) -> float:
        """Driver-side merge/drain time (everything but the partitions)."""
        return self.total - self.partition_execute

    def as_dict(self) -> Dict[str, float]:
        """Stage name -> seconds, in dataflow order."""
        return {
            "partition_execute": self.partition_execute,
            "model_merge": self.model_merge,
            "bow_absorb": self.bow_absorb,
            "normalizer_merge": self.normalizer_merge,
            "drain": self.drain,
        }

    def accumulate(self, other: "StageTimings") -> None:
        """Add another batch's timings into this accumulator."""
        self.partition_execute += other.partition_execute
        self.model_merge += other.model_merge
        self.bow_absorb += other.bow_absorb
        self.normalizer_merge += other.normalizer_merge
        self.drain += other.drain

    @classmethod
    def from_registry(
        cls, registry: MetricsRegistry, engine: str = "microbatch"
    ) -> "StageTimings":
        """Rebuild cumulative timings from the span histograms.

        The engine no longer keeps a parallel accumulator: every driver
        stage is measured by a :class:`~repro.obs.tracing.Span` that
        records into ``stage_seconds{engine=..., stage=...}``, and this
        view reads the exact histogram sums back. Stages never run yet
        read as 0.
        """
        totals = stage_seconds_by_stage(registry, engine=engine)
        return cls(
            partition_execute=totals.get("partition_execute", 0.0),
            model_merge=totals.get("model_merge", 0.0),
            bow_absorb=totals.get("bow_absorb", 0.0),
            normalizer_merge=totals.get("normalizer_merge", 0.0),
            drain=totals.get("drain", 0.0),
        )


@dataclass
class MicroBatchResult:
    """Per-micro-batch outcome."""

    batch_index: int
    n_processed: int
    n_labeled: int
    n_unlabeled: int
    elapsed_seconds: float
    cumulative_f1: float
    cumulative_accuracy: float
    stage_seconds: StageTimings = field(default_factory=StageTimings)
    n_quarantined: int = 0
    n_retries: int = 0
    #: Degrade tier the batch's feature extraction ran at (0 = FULL).
    degrade_tier: int = 0


@dataclass
class EngineResult:
    """Aggregated outcome of a full engine run."""

    n_processed: int
    n_labeled: int
    n_unlabeled: int
    metrics: Dict[str, float]
    batches: List[MicroBatchResult]
    elapsed_seconds: float
    n_alerts: int
    stage_seconds: StageTimings = field(default_factory=StageTimings)
    n_quarantined: int = 0
    n_retries: int = 0
    #: Worker-observed seconds per partition stage (decode,
    #: derive_state, extract, normalize, predict, collect, learn, plus
    #: the root "partition" span), summed across all partitions and
    #: batches — the cross-process complement of ``stage_seconds``.
    worker_stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Processed tweets per second of wall-clock time.

        Un-timed results (``elapsed_seconds <= 0``) return ``nan``
        rather than a silent ``0.0``: a zero throughput reads as "the
        engine did no work", which poisons bench summaries, whereas
        ``nan`` is unmistakably "not measured".
        """
        if self.elapsed_seconds <= 0:
            return float("nan")
        return self.n_processed / self.elapsed_seconds


class MicroBatchEngine:
    """Spark-Streaming-style execution of the detection pipeline.

    Args:
        config: pipeline configuration (same knobs as the sequential
            pipeline).
        n_partitions: parallel tasks per micro-batch.
        batch_size: tweets per micro-batch.
        runner: partition executor. Either a :class:`Runner` instance —
            which the *caller* owns and must close — or a string spec
            ("serial", "threads", "processes"), in which case the engine
            builds the runner itself, owns it, and closes it in
            :meth:`close` (or on context-manager exit). Defaults to an
            engine-owned :class:`SerialRunner`.
        n_workers: pool size when ``runner`` is a string spec
            (defaults to ``n_partitions``).
        retry_policy: when set, batches whose partition tasks fail with
            a *transient* :class:`PartitionError` are retried with
            exponential backoff + seeded jitter (tasks rebuilt fresh
            each attempt, engine state untouched between attempts).
            Fatal errors always propagate immediately.
        dead_letters: when set, per-tweet failures inside partitions
            (validation/extraction/normalization/prediction) are
            quarantined into this queue instead of failing the
            partition.
        max_poison_rate: when set, enables a failure-rate circuit
            breaker (and a default dead-letter queue if none was given):
            :meth:`process_batch` raises
            :class:`~repro.reliability.deadletter.CircuitOpenError`
            once the quarantined fraction exceeds this rate.
        metrics: share a :class:`MetricsRegistry` with the caller
            (supervisor, CLI); by default the engine creates its own.
            Partition-side snapshots fold into it every batch.
        on_batch: driver-side callback invoked with each completed
            :class:`MicroBatchResult` (after merges and metric folds) —
            the telemetry hook for periodic snapshot export.
        controller: optional
            :class:`~repro.reliability.overload.OverloadController`. The
            engine reports each batch's elapsed time to it and adopts
            the controller's adjusted ``batch_size`` and degrade tier
            for the *next* batch.
        worker_telemetry: partition tasks capture per-stage spans
            (decode/derive_state/extract/...) and ship them back for
            trace stitching; the stitched tree of the most recent batch
            is exposed as :attr:`last_trace`. On by default — the
            capture cost is a handful of perf_counter calls per
            partition.
        profile_partitions: run each partition task under ``cProfile``
            and merge the per-partition top functions into
            :attr:`profile_report`. Opt-in: profiling costs real time
            (~1.3-2x per partition).
        recorder: optional :class:`~repro.obs.recorder.FlightRecorder`;
            the engine records one event per batch and auto-dumps the
            ring on quarantine, pool rebuild, or a crashed run.
        pipelined: double-buffer batches — :meth:`run` (and callers
            using :meth:`submit_batch`) overlap the driver's merge/
            drain of batch *k* with the partition execution of batch
            *k+1* on a background submit thread. Results are bit-exact
            with the synchronous path (merges still happen on the
            driver thread, in partition order, only after every
            partition of a batch has resolved); the differences are
            timing-shaped: the overload controller observes each batch
            at merge time (so adopted batch sizes apply one batch
            later), the circuit breaker may trip one batch late, and an
            execution error surfaces on the *next* submit (or on
            :meth:`drain`). Callers must :meth:`drain` (or let
            :meth:`run`/:meth:`close` do it) before reading final
            state.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        n_partitions: int = 4,
        batch_size: int = 5000,
        runner: Optional[Union[Runner, str]] = None,
        n_workers: Optional[int] = None,
        retry_policy: Optional["RetryPolicy"] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
        max_poison_rate: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        on_batch: Optional["BatchCallback"] = None,
        controller: Optional["OverloadController"] = None,
        partition_deadline_s: Optional[float] = None,
        speculate: Optional[float] = None,
        worker_telemetry: bool = True,
        profile_partitions: bool = False,
        recorder: Optional[FlightRecorder] = None,
        pipelined: bool = False,
    ) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if partition_deadline_s is not None and partition_deadline_s <= 0:
            raise ValueError("partition_deadline_s must be positive")
        if speculate is not None:
            if partition_deadline_s is None:
                raise ValueError("speculate requires partition_deadline_s")
            if not 0.0 < speculate <= 1.0:
                raise ValueError("speculate must be in (0, 1]")
        self.config = config if config is not None else PipelineConfig()
        self.n_partitions = n_partitions
        self.batch_size = batch_size
        self.partition_deadline_s = partition_deadline_s
        self.speculate = speculate
        self.retry_policy = retry_policy
        self._retry_rng = (
            random.Random(retry_policy.seed)
            if retry_policy is not None
            else None
        )
        self.dead_letters = dead_letters
        self.breaker: Optional[CircuitBreaker] = None
        if max_poison_rate is not None:
            if self.dead_letters is None:
                self.dead_letters = DeadLetterQueue()
            self.breaker = CircuitBreaker(max_failure_rate=max_poison_rate)
        if runner is None:
            self.runner: Runner = SerialRunner()
            self._owns_runner = True
        elif isinstance(runner, str):
            self.runner = make_runner(
                runner, n_workers if n_workers is not None else n_partitions
            )
            self._owns_runner = True
        else:
            self.runner = runner
            self._owns_runner = False
        self.encoder = LabelEncoder(self.config.n_classes)
        if self.config.adaptive_bow:
            self.bag_of_words: object = AdaptiveBagOfWords()
        else:
            self.bag_of_words = FixedBagOfWords()
        self.normalizer = make_normalizer(
            self.config.normalization
            if self.config.normalization_enabled
            else "none",
            N_FEATURES,
            fast_math=self.config.fast_math,
        )
        self.model: StreamClassifier = create_model(self.config)
        # Resident-state broadcasting: one versioned snapshot per batch,
        # pickled at most once into a shared-memory segment and cached
        # worker-side (runners module). The engine owns the live
        # broadcast's segment: it is unlinked when the next version
        # supersedes it and when the engine closes.
        self._broadcast_key = new_broadcast_key("microbatch")
        self._state_version = 0
        self._broadcast: Optional[StateBroadcast] = None
        self.cumulative = ConfusionMatrix(self.config.n_classes)
        self.alert_manager = AlertManager(
            AlertPolicy(
                aggressive_classes=self.encoder.aggressive_classes,
                min_confidence=self.config.alert_min_confidence,
            )
        )
        self.sampler = BoostedRandomSampler(
            capacity=self.config.sample_capacity,
            boost=self.config.sample_boost,
            aggressive_classes=self.encoder.aggressive_classes,
            seed=self.config.seed,
        )
        self.batches: List[MicroBatchResult] = []
        self.n_processed = 0
        self.n_labeled = 0
        self.n_unlabeled = 0
        self.n_quarantined = 0
        self.n_retries = 0
        self.on_batch = on_batch
        self.controller = controller
        self._degrade_tier = DegradeTier.FULL
        if controller is not None:
            # The controller owns batch sizing from here on; start from
            # its current view so resume-from-checkpoint keeps the
            # degraded size rather than snapping back to the default.
            self.batch_size = controller.batch_size
            self._degrade_tier = controller.tier
            if controller.n_partitions is not None:
                self.n_partitions = controller.n_partitions
        # Observability: one registry for the whole engine; driver
        # stages are measured by tracer spans, partition snapshots fold
        # in per batch, and StageTimings is a read-back view. The driver
        # tracer also *captures* its spans so each batch's driver spans
        # can be stitched with the worker-side partition subtrees.
        self.worker_telemetry = worker_telemetry
        self.profile_partitions = profile_partitions
        self.recorder = recorder
        #: Stitched trace of the most recent batch (driver spans plus
        #: one subtree per partition), or None before the first batch /
        #: with worker telemetry off.
        self.last_trace: Optional[Dict[str, Any]] = None
        #: Merged cProfile rows across all profiled partitions.
        self.profile_report = ProfileReport()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tracer = Tracer(
            self.metrics, labels={"engine": "microbatch"}, capture=True
        )
        self._m_ingested = self.metrics.counter(
            "tweets_ingested_total", engine="microbatch"
        )
        self._m_batches = self.metrics.counter(
            "batches_total", engine="microbatch"
        )
        self._m_retries = self.metrics.counter(
            "retries_total", engine="microbatch"
        )
        self._m_alerts = self.metrics.counter(
            "alerts_total", engine="microbatch"
        )
        self._batch_hist = self.metrics.histogram(
            "batch_seconds", engine="microbatch"
        )
        self._m_partition_timeouts = self.metrics.counter(
            "partition_timeouts_total", engine="microbatch"
        )
        self._m_spec_launched = self.metrics.counter(
            "speculative_launches_total", engine="microbatch"
        )
        self._m_spec_wins = self.metrics.counter(
            "speculative_wins_total", engine="microbatch"
        )
        self._m_pool_rebuilds = self.metrics.counter(
            "pool_rebuilds_total", engine="microbatch"
        )
        self._m_partition_quarantined = self.metrics.counter(
            "tweets_quarantined_total", engine="microbatch", stage="partition"
        )
        self._partition_hist = self.metrics.histogram(
            "partition_seconds", engine="microbatch"
        )
        # Pipelined execution: one in-flight batch max (double
        # buffering), launched on a single background submit thread.
        # The tweet-block segment pool is shared across batches so the
        # per-batch transport cost is one encode pass, not an mmap.
        self.pipelined = pipelined
        self._inflight: Optional[_BatchState] = None
        self._submit_pool: Optional[ThreadPoolExecutor] = None
        self._segment_pool: Optional[SegmentPool] = None
        self._last_execute_done: Optional[float] = None
        self._pipeline_fill = self.metrics.gauge(
            "pipeline_fill", engine="microbatch"
        )
        self._driver_idle_hist = self.metrics.histogram(
            "driver_idle_seconds", engine="microbatch"
        )
        self._worker_idle_hist = self.metrics.histogram(
            "worker_idle_seconds", engine="microbatch"
        )
        self._encode_hist = self.metrics.histogram(
            "tweet_block_encode_seconds", engine="microbatch"
        )
        self._m_transport_tweets = self.metrics.counter(
            "transport_bytes_total", engine="microbatch", channel="tweets"
        )
        self._m_transport_broadcast = self.metrics.counter(
            "transport_bytes_total", engine="microbatch", channel="broadcast"
        )
        # The background thread must not touch the driver tracer (its
        # span stack is single-threaded state), so the pipelined path
        # books partition_execute time into the stage histogram
        # directly — same child the tracer's span would create.
        self._stage_execute_hist = self.metrics.histogram(
            STAGE_SECONDS, engine="microbatch", stage="partition_execute"
        )

    @property
    def stage_seconds(self) -> StageTimings:
        """Cumulative driver stage timings (view over span histograms)."""
        return StageTimings.from_registry(self.metrics)

    @property
    def degrade_tier(self) -> DegradeTier:
        """Tier the next batch's feature extraction will run at."""
        if self.controller is not None:
            return self.controller.tier
        return self._degrade_tier

    def set_degrade_tier(self, tier: DegradeTier) -> None:
        """Manually pin the degrade tier (no-op override if a controller
        is attached — the controller's tier always wins)."""
        self._degrade_tier = DegradeTier(tier)
        self.metrics.gauge("degrade_level", engine="microbatch").set(
            int(self.degrade_tier)
        )

    def _publish_gauges(self) -> None:
        """Refresh the point-in-time gauges (BoW size, normalizer state)."""
        gauge = self.metrics.gauge
        gauge("bow_size", engine="microbatch").set(len(self.bag_of_words))
        if isinstance(self.bag_of_words, AdaptiveBagOfWords):
            gauge("bow_words_added", engine="microbatch").set(
                self.bag_of_words.n_added
            )
            gauge("bow_words_removed", engine="microbatch").set(
                self.bag_of_words.n_removed
            )
        gauge("normalizer_observed", engine="microbatch").set(
            self.normalizer.observed
        )
        gauge("normalizer_clip_ratio", engine="microbatch").set(
            self.normalizer.clip_ratio
        )

    # ------------------------------------------------------------------
    # Runner ownership
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the engine-owned runner's pooled resources and the
        engine's broadcast state.

        Only runners the engine created itself (the default, or a string
        ``runner`` spec) are closed; an injected :class:`Runner` instance
        stays open — its creator owns its lifecycle, but even then the
        engine evicts its own broadcast key from worker caches so a
        shared long-lived pool forgets this engine's state. The live
        broadcast's shared-memory segment is always unlinked here.
        Idempotent: calling it repeatedly (or after a failed :meth:`run`
        already closed the runner) is safe, and pooled runners lazily
        rebuild their pool if the engine is used again after a close.

        A pipelined in-flight batch is *aborted*, not finalized: its
        results are discarded (callers wanting them must :meth:`drain`
        first). The submit thread and the tweet-block segment pool are
        torn down with it, so a crashed pipelined run leaks neither
        threads nor ``/dev/shm`` segments.
        """
        self._abort_inflight()
        if self._submit_pool is not None:
            self._submit_pool.shutdown(wait=False)
            self._submit_pool = None
        if self._broadcast is not None:
            self._broadcast.release()
            self._broadcast = None
        # Evict before closing: a shared pool stays alive after this
        # engine is gone, and its workers should not retain a dead
        # engine's model/normalizer payload.
        self.runner.evict_broadcast(self._broadcast_key)
        if self._owns_runner:
            self.runner.close()
        if self._segment_pool is not None:
            self._segment_pool.close()
            self._segment_pool = None

    def __enter__(self) -> "MicroBatchEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Model-parallel adapters (op #3: local train + global merge)
    # ------------------------------------------------------------------

    def _combine_models(self, locals_: Sequence[object]) -> None:
        model = self.model
        trained = [m for m in locals_ if m.instances_seen > 0]
        if not trained:
            return
        if hasattr(model, "structure_copy"):
            for local in trained:
                model.merge(local)
            if hasattr(model, "attempt_deferred_splits"):
                model.attempt_deferred_splits()
            return
        if isinstance(model, StreamingLogisticRegression):
            self._average_slr(model, trained)
            return
        for local in trained:
            model.merge(local)

    @staticmethod
    def _average_slr(
        model: StreamingLogisticRegression,
        locals_: Sequence[object],
    ) -> None:
        # Iterative parameter mixing: the new global weights are the
        # example-weighted average of the local weights (each local
        # started from the old global weights). Locals are either full
        # SLR models or _SLRDelta triples — only weights/bias/
        # instances_seen are read, so the arithmetic is identical.
        total = sum(m.instances_seen for m in locals_)
        if total == 0:
            return
        first = locals_[0]
        if not first.weights:
            return
        n_classes = model.n_classes
        n_features = len(first.weights[0])
        new_weights = [[0.0] * n_features for _ in range(n_classes)]
        new_bias = [0.0] * n_classes
        for local in locals_:
            share = local.instances_seen / total
            for cls in range(n_classes):
                row = local.weights[cls]
                target = new_weights[cls]
                for feature in range(n_features):
                    target[feature] += share * row[feature]
                new_bias[cls] += share * local.bias[cls]
        model._weights = new_weights
        model._bias = new_bias
        model.instances_seen += total

    # ------------------------------------------------------------------
    # Batch processing
    # ------------------------------------------------------------------

    def _broadcast_state(self) -> StateBroadcast:
        """Snapshot the batch-start state for the partition broadcast.

        The payload is ``(model, normalizer, bow added, bow removed)``:
        the BoW lexicon travels as a compact delta against the fixed
        swear-word seed rather than the full word set. A new version per
        batch keeps worker caches coherent — engine state mutates
        between batches (merges, BoW maintenance) but never within one,
        so retry attempts share the same broadcast (and its one-time
        pickle).
        """
        if self._broadcast is not None:
            # Version bump: the previous batch (including any retries)
            # is done, so its shared-memory segment can be unlinked.
            self._broadcast.release()
        words = frozenset(self.bag_of_words.words)
        self._state_version += 1
        self._broadcast = StateBroadcast(
            key=self._broadcast_key,
            version=self._state_version,
            value=(
                self.model,
                self.normalizer,
                words - SWEAR_WORDS,
                SWEAR_WORDS - words,
            ),
        )
        return self._broadcast

    def _tasks_for(
        self,
        slices: Sequence[TweetSlice],
        broadcast: StateBroadcast,
        tier: DegradeTier,
    ) -> List[_PartitionTask]:
        """Fresh partition tasks for one batch attempt.

        Rebuilt from scratch on every retry attempt (they are cheap:
        an O(1) tweet-slice descriptor plus flags — the heavy state
        stays on the shared broadcast and the batch's tweet block);
        local models are created inside the task call, so a
        half-executed attempt can never leak trained state into the
        next one. ``tier`` is passed explicitly: it is captured at
        batch-prepare time on the driver thread, so the pipelined
        submit thread never reads the engine's mutable tier.
        """
        return [
            _PartitionTask(
                tweets=tweet_slice,
                broadcast=broadcast,
                n_classes=self.config.n_classes,
                preprocessing=self.config.preprocessing,
                deobfuscate=self.config.deobfuscate,
                adaptive_bow=self.config.adaptive_bow,
                quarantine=self.dead_letters is not None,
                tier=tier,
                worker_telemetry=self.worker_telemetry,
                profile=self.profile_partitions,
            )
            for tweet_slice in slices
        ]

    def _execute_with_retry(
        self,
        slices: Sequence[TweetSlice],
        broadcast: StateBroadcast,
        tier: DegradeTier,
    ) -> Tuple[List[_PartitionOutput], int]:
        """Run the partition stage, retrying transient failures.

        Returns (outputs, retries_used). Engine state is untouched by
        failed attempts: tasks are rebuilt fresh each time and no merge
        happens until an attempt fully succeeds.
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            tasks = self._tasks_for(slices, broadcast, tier)
            try:
                return self.runner.run(tasks), attempt
            except PartitionError as exc:
                if (
                    policy is None
                    or not exc.transient
                    or attempt >= policy.max_retries
                ):
                    raise
                assert self._retry_rng is not None
                delay = policy.backoff_delay(attempt, self._retry_rng)
                attempt += 1
                self.n_retries += 1
                policy.sleep(delay)

    def _execute_partitioned(
        self,
        slices: Sequence[TweetSlice],
        broadcast: StateBroadcast,
        tier: DegradeTier,
    ) -> Tuple[
        List[Optional[_PartitionOutput]],
        List[Tuple[int, TaskOutcome]],
        _ExecStats,
    ]:
        """Deadline path: per-partition outcomes, retries and quarantine.

        Unlike :meth:`_execute_with_retry` (whole-batch retry on one
        raised error), this drives :meth:`Runner.run_with_deadline` and
        treats each partition as its own fault domain: successful
        partitions keep their outputs while failed/timed-out/lost ones
        are retried alone under the :class:`RetryPolicy`'s seeded
        backoff, against the *same* broadcast and tweet block (engine
        state is frozen for the whole batch, so late attempts see
        identical inputs).

        Returns ``(outputs, dropped, stats)`` where ``outputs[i]`` is
        partition ``i``'s output or ``None`` if it was dropped, and
        ``dropped`` lists ``(partition_index, final outcome)`` for
        partitions that exhausted their budget. A fatal outcome — or
        any non-ok outcome when no dead-letter queue is attached to
        absorb the drop — raises instead; no merge has happened at
        that point, so the no-half-applied guarantee holds.
        """
        outputs: List[Optional[_PartitionOutput]] = [None] * len(slices)
        dropped: List[Tuple[int, TaskOutcome]] = []
        stats = _ExecStats()
        policy = self.retry_policy
        pending = list(range(len(slices)))
        attempt = 0
        while pending:
            tasks = self._tasks_for(
                [slices[i] for i in pending], broadcast, tier
            )
            report = self.runner.run_with_deadline(
                tasks,
                deadline_s=self.partition_deadline_s,
                speculate_after=self.speculate,
            )
            stats.n_speculative += report.n_speculative_launched
            stats.n_speculative_wins += report.n_speculative_wins
            stats.n_pool_rebuilds += report.n_pool_rebuilds
            retryable: List[Tuple[int, TaskOutcome]] = []
            for outcome in report.outcomes:
                index = pending[outcome.partition_index]
                if outcome.ok:
                    outputs[index] = outcome.result  # type: ignore[assignment]
                    self._partition_hist.observe(outcome.duration_s)
                    # Trace annotations: who won (a speculative copy?),
                    # how long the runner saw it take, and which retry
                    # round it resolved on.
                    stats.partition_meta[index] = {
                        "speculative": outcome.speculative,
                        "duration_s": outcome.duration_s,
                        "attempts": attempt,
                    }
                    continue
                if outcome.status == OUTCOME_TIMED_OUT:
                    stats.n_timeouts += 1
                    self._m_partition_timeouts.inc()
                elif outcome.status == OUTCOME_WORKER_LOST:
                    stats.n_worker_lost += 1
                if outcome.retryable:
                    retryable.append((index, outcome))
                elif self.dead_letters is not None:
                    dropped.append((index, outcome))
                else:
                    raise outcome.to_error()
            if not retryable:
                break
            if policy is not None and attempt < policy.max_retries:
                assert self._retry_rng is not None
                delay = policy.backoff_delay(attempt, self._retry_rng)
                attempt += 1
                stats.retries += 1
                self.n_retries += 1
                policy.sleep(delay)
                pending = [index for index, _outcome in retryable]
                continue
            # Retry budget exhausted (or no policy): quarantine if a
            # DLQ can absorb the loss, otherwise surface the first
            # failure — still before any merge.
            if self.dead_letters is None:
                raise retryable[0][1].to_error()
            dropped.extend(retryable)
            break
        return outputs, dropped, stats

    def _stitch_trace(
        self,
        indexed_outputs: Sequence[Optional[_PartitionOutput]],
        dropped: Sequence[Tuple[int, TaskOutcome]],
        exec_stats: Optional[_ExecStats],
    ) -> Dict[str, Any]:
        """One trace tree for the batch: driver spans + worker subtrees.

        Drains the driver tracer's captured spans (so each batch's trace
        holds only its own), nests them, and attaches one annotated node
        per partition: successful partitions carry their worker-side
        span subtree (plus pid / wall time / speculative-win / retry
        round from the runner), dropped partitions a status stub. The
        whole structure is plain dicts — JSON-ready for dumps and
        deterministic for a deterministic run (span ids are per-tracer
        creation counters, nodes are ordered by partition index).
        """
        driver_spans = span_tree(self._tracer.drain())
        meta = (
            exec_stats.partition_meta if exec_stats is not None else {}
        )
        partition_nodes: List[Dict[str, Any]] = []
        for index, output in enumerate(indexed_outputs):
            if output is None or output.telemetry is None:
                continue
            node: Dict[str, Any] = {
                "partition": index,
                "status": "ok",
                "pid": output.telemetry.pid,
                "wall_s": output.telemetry.wall_s,
                "spans": output.telemetry.tree(),
            }
            node.update(meta.get(index, {}))
            partition_nodes.append(node)
        for index, outcome in dropped:
            partition_nodes.append(
                {
                    "partition": index,
                    "status": outcome.status,
                    "spans": [],
                }
            )
        partition_nodes.sort(key=lambda node: node["partition"])
        return {
            "trace_id": f"microbatch-batch-{len(self.batches)}",
            "driver": driver_spans,
            "partitions": partition_nodes,
        }

    def _prepare_batch(self, tweets: Sequence[Tweet]) -> _BatchState:
        """Snapshot everything a batch needs before execution starts.

        Runs on the driver thread (it reads mutable engine state: tier,
        partition count, model/normalizer/BoW for the broadcast). The
        tweets are partitioned once and — under a pickling runner —
        encoded once into a pooled shared-memory tweet block; retries
        and speculative copies all reuse the same block.
        """
        started = time.perf_counter()
        batch_tier = self.degrade_tier
        broadcast = self._broadcast_state()
        partitions = round_robin_partitions(tweets, self.n_partitions)
        if getattr(self.runner, "needs_pickled_tasks", False):
            if self._segment_pool is None:
                self._segment_pool = SegmentPool()
            t_encode = time.perf_counter()
            block = TweetBlock.encode(partitions, self._segment_pool)
            self._encode_hist.observe(time.perf_counter() - t_encode)
            self._m_transport_tweets.inc(block.n_bytes)
        else:
            block = TweetBlock.live(partitions)
        return _BatchState(
            n_tweets=len(tweets),
            batch_tier=batch_tier,
            broadcast=broadcast,
            partitions=partitions,
            block=block,
            started=started,
        )

    def _run_partitions(self, state: _BatchState) -> _ExecBundle:
        """Execute all partition tasks for one batch (no engine-state
        mutation beyond counters — a raise here leaves the engine
        exactly as it was before the batch).

        Thread-agnostic: runs inline on the driver for the synchronous
        path, on the pipeline submit thread otherwise. It must not
        touch the driver tracer or any state the driver mutates during
        merge/finalize; everything batch-specific rides on ``state``.
        """
        t_start = time.perf_counter()
        dropped: List[Tuple[int, TaskOutcome]] = []
        exec_stats: Optional[_ExecStats] = None
        indexed_outputs: List[Optional[_PartitionOutput]]
        if self.partition_deadline_s is not None:
            maybe_outputs, dropped, exec_stats = self._execute_partitioned(
                state.block.slices, state.broadcast, state.batch_tier
            )
            # Dropped partitions leave holes; merging the survivors
            # in partition order keeps the merge sequence (and thus
            # the model state) deterministic.
            outputs = [o for o in maybe_outputs if o is not None]
            retries_used = exec_stats.retries
            indexed_outputs = maybe_outputs
        else:
            outputs, retries_used = self._execute_with_retry(
                state.block.slices, state.broadcast, state.batch_tier
            )
            indexed_outputs = list(outputs)
        done = time.perf_counter()
        return _ExecBundle(
            outputs=outputs,
            indexed_outputs=indexed_outputs,
            dropped=dropped,
            exec_stats=exec_stats,
            retries_used=retries_used,
            execute_seconds=done - t_start,
            done_at=done,
        )

    def _merge_batch(self, state: _BatchState) -> None:
        """Driver-thread merge of a fully-resolved batch (ops #3/#6).

        Must run before the *next* batch is prepared: the next
        broadcast snapshots the merged model/normalizer/BoW, and the
        overload controller's adopted sizes apply from here. Recycles
        the batch's tweet block — safe now that every retry and
        speculative attempt has resolved.
        """
        bundle = state.bundle
        assert bundle is not None
        state.block.close()
        outputs = bundle.outputs
        # One encode per batch (the payload is cached across retries);
        # serial/threads runners never pickle, so the field stays None.
        broadcast = state.broadcast
        if broadcast.encode_seconds is not None:
            self.metrics.histogram(
                "broadcast_encode_seconds", engine="microbatch"
            ).observe(broadcast.encode_seconds)
            self._m_transport_broadcast.inc(broadcast.payload_bytes or 0)

        with self._tracer.span("model_merge") as span_model:
            self._combine_models(
                [o.local_model for o in outputs if o.local_model]
            )

        with self._tracer.span("bow_absorb") as span_bow:
            if isinstance(self.bag_of_words, AdaptiveBagOfWords):
                for output in outputs:
                    if output.bow_delta is not None:
                        self.bag_of_words.absorb(output.bow_delta)
                self.bag_of_words.maintain()

        with self._tracer.span("normalizer_merge") as span_normalizer:
            for output in outputs:
                self.normalizer.merge(output.local_normalizer)

        state.model_merge_s = span_model.duration or 0.0
        state.bow_absorb_s = span_bow.duration or 0.0
        state.normalizer_merge_s = span_normalizer.duration or 0.0

    def _adopt_controller(
        self, elapsed: float, exec_stats: Optional[_ExecStats]
    ) -> None:
        """Report a batch to the overload controller and adopt its
        (possibly resized) batch size and partition count for the next
        discretization round."""
        if self.controller is None:
            return
        queue = self.controller.queue
        self.controller.observe_batch(
            elapsed,
            queue_fraction=(
                queue.depth_fraction if queue is not None else None
            ),
            n_stragglers=(
                exec_stats.n_stragglers if exec_stats is not None else 0
            ),
        )
        self.batch_size = self.controller.batch_size
        if self.controller.n_partitions is not None:
            self.n_partitions = self.controller.n_partitions

    def _finalize_batch(
        self, state: _BatchState, observe_controller: bool = True
    ) -> MicroBatchResult:
        """Fold a merged batch's outputs into driver-side state.

        Everything after the three merges: confusion/counter folds,
        dead-letter quarantine, the alert/sample drain, metrics,
        trace stitching, recorder/breaker/on_batch. In pipelined mode
        this overlaps the next batch's partition execution
        (``observe_controller=False`` there — the controller already
        observed at merge time, before the next batch was sized).
        """
        bundle = state.bundle
        assert bundle is not None
        outputs = bundle.outputs
        indexed_outputs = bundle.indexed_outputs
        dropped = bundle.dropped
        exec_stats = bundle.exec_stats
        retries_used = bundle.retries_used
        batch_tier = state.batch_tier
        n_tweets = state.n_tweets

        n_labeled = 0
        n_unlabeled = 0
        n_poisoned = 0
        for output in outputs:
            self.cumulative.merge(output.local_stats)  # op #6
            n_labeled += output.n_labeled
            n_unlabeled += output.n_unlabeled
            n_poisoned += len(output.poisoned)
            if output.metrics is not None:
                self.metrics.merge_snapshot(output.metrics)
            if output.profile is not None:
                self.profile_report.merge(output.profile)
            if output.poisoned and self.dead_letters is not None:
                for tweet_id, stage, error, trace in output.poisoned:
                    self.dead_letters.add(
                        DeadLetterRecord(
                            tweet_id=tweet_id,
                            stage=stage,
                            error=error,
                            traceback=trace,
                            batch_index=len(self.batches),
                        )
                    )

        if dropped and self.dead_letters is not None:
            # Partition-grain quarantine: one poison record per dropped
            # partition; its tweets count as poisoned so the driver's
            # accounting (n_processed + n_quarantined == ingested)
            # stays exact without per-tweet records.
            partitions = state.partitions
            for index, outcome in dropped:
                n_poisoned += len(partitions[index])
                self._m_partition_quarantined.inc(len(partitions[index]))
                self.dead_letters.add(
                    DeadLetterRecord(
                        tweet_id=None,
                        stage="partition",
                        error=(
                            f"partition {index} {outcome.status} "
                            f"({len(partitions[index])} tweets): "
                            f"{outcome.to_error().message}"
                        ),
                        traceback="",
                        batch_index=len(self.batches),
                    )
                )

        alerts_before = self.alert_manager.n_alerts
        with self._tracer.span("drain") as span_drain:
            for output in outputs:
                if output.unlabeled:
                    self.alert_manager.process_batch(output.unlabeled)
                    self.sampler.offer_many(
                        classified for classified, _ in output.unlabeled
                    )
        if self.alert_manager.n_alerts > alerts_before:
            self._m_alerts.inc(self.alert_manager.n_alerts - alerts_before)

        timings = StageTimings(
            partition_execute=(
                state.execute_span_s
                if state.execute_span_s is not None
                else bundle.execute_seconds
            ),
            model_merge=state.model_merge_s,
            bow_absorb=state.bow_absorb_s,
            normalizer_merge=state.normalizer_merge_s,
            drain=span_drain.duration or 0.0,
        )
        self.n_processed += n_tweets - n_poisoned
        self.n_labeled += n_labeled
        self.n_unlabeled += n_unlabeled
        self.n_quarantined += n_poisoned
        self._m_ingested.inc(n_tweets)
        self._m_batches.inc()
        if retries_used:
            self._m_retries.inc(retries_used)
        if exec_stats is not None:
            if exec_stats.n_speculative:
                self._m_spec_launched.inc(exec_stats.n_speculative)
            if exec_stats.n_speculative_wins:
                self._m_spec_wins.inc(exec_stats.n_speculative_wins)
            if exec_stats.n_pool_rebuilds:
                self._m_pool_rebuilds.inc(exec_stats.n_pool_rebuilds)
        self._publish_gauges()
        # All driver spans for this batch are closed at this point;
        # drain them and stitch the worker subtrees underneath into one
        # trace tree for the batch.
        self.last_trace = self._stitch_trace(
            indexed_outputs, dropped, exec_stats
        )
        elapsed = time.perf_counter() - state.started
        self._batch_hist.observe(elapsed)
        if observe_controller:
            self._adopt_controller(elapsed, exec_stats)
        result = MicroBatchResult(
            batch_index=len(self.batches),
            n_processed=n_tweets - n_poisoned,
            n_labeled=n_labeled,
            n_unlabeled=n_unlabeled,
            elapsed_seconds=elapsed,
            cumulative_f1=self.cumulative.weighted_f1,
            cumulative_accuracy=self.cumulative.accuracy,
            stage_seconds=timings,
            n_quarantined=n_poisoned,
            n_retries=retries_used,
            degrade_tier=int(batch_tier),
        )
        self.batches.append(result)
        if self.recorder is not None:
            # One ring entry per batch; incidents additionally dump the
            # ring so the post-mortem has the batches leading up to it.
            self.recorder.event(
                "batch",
                batch_index=result.batch_index,
                n_processed=result.n_processed,
                n_quarantined=n_poisoned,
                elapsed_s=elapsed,
                f1=result.cumulative_f1,
                degrade_tier=int(batch_tier),
            )
            if n_poisoned:
                self.recorder.event(
                    "quarantine",
                    batch_index=result.batch_index,
                    n_poisoned=n_poisoned,
                )
                self.recorder.auto_dump("quarantine")
            if exec_stats is not None and exec_stats.n_pool_rebuilds:
                self.recorder.event(
                    "pool_rebuild",
                    batch_index=result.batch_index,
                    n_rebuilds=exec_stats.n_pool_rebuilds,
                )
                self.recorder.auto_dump("pool_rebuild")
        if self.breaker is not None:
            self.breaker.record_batch(n_tweets - n_poisoned, n_poisoned)
            self.breaker.check()
        if self.on_batch is not None:
            self.on_batch(result)
        return result

    def process_batch(self, tweets: Sequence[Tweet]) -> MicroBatchResult:
        """Run one micro-batch through the Fig. 2 dataflow, synchronously.

        Raises:
            repro.engine.runners.PartitionError: if any partition task
                fails fatally, or transiently with retries exhausted (or
                no ``retry_policy`` configured). No engine state is
                mutated in that case: all merges happen only after every
                partition has returned.
            repro.reliability.deadletter.CircuitOpenError: quarantine
                is enabled with ``max_poison_rate`` and the stream's
                cumulative poison rate exceeded it. The batch's merges
                have completed when this is raised — the breaker is a
                stop signal, not a rollback.

        With ``partition_deadline_s`` set, partitions are independent
        fault domains: a partition that exhausts its per-partition
        retries is quarantined to the dead-letter queue as one
        partition-grain poison record (its tweets count as poisoned)
        while its siblings' outputs merge normally, in partition order.

        A pipelined in-flight batch (from :meth:`submit_batch`) is
        drained first, so mixing the two entry points never interleaves
        two batches' merges.
        """
        if self._inflight is not None:
            self.drain()
        state = self._prepare_batch(tweets)
        with self._tracer.span("partition_execute") as span_execute:
            state.bundle = self._run_partitions(state)
        state.execute_span_s = span_execute.duration or 0.0
        self._merge_batch(state)
        return self._finalize_batch(state)

    # ------------------------------------------------------------------
    # Pipelined execution (double-buffered batches)
    # ------------------------------------------------------------------

    def submit_batch(
        self, tweets: Sequence[Tweet]
    ) -> Optional[MicroBatchResult]:
        """Pipelined submission: launch this batch, finalize the last.

        The driver awaits the previous in-flight batch, merges it (so
        this batch's broadcast sees the merged model/normalizer/BoW and
        the controller's adopted sizes), launches this batch's
        partition execution on the submit thread, and only *then* runs
        the previous batch's finalize — the per-record alert/sample
        drain and telemetry folds overlap this batch's compute.

        Returns the previous batch's :class:`MicroBatchResult`, or
        ``None`` on the first submission (call :meth:`drain` for the
        final batch's result). A partition failure in batch *k*
        surfaces here on submission *k+1* (with the new tweets left
        unprocessed) or on :meth:`drain`; the engine's
        no-half-applied-merge guarantee is unchanged.
        """
        prev = self._inflight
        self._inflight = None
        if prev is not None:
            self._await(prev)
            self._merge_batch(prev)
            assert prev.bundle is not None
            self._adopt_controller(
                time.perf_counter() - prev.started, prev.bundle.exec_stats
            )
        state = self._prepare_batch(tweets)
        self._launch(state)
        self._inflight = state
        if prev is None:
            return None
        return self._finalize_batch(prev, observe_controller=False)

    def drain(self) -> Optional[MicroBatchResult]:
        """Finish the in-flight pipelined batch, if any.

        Awaits, merges and finalizes it on the calling (driver) thread;
        afterwards the engine state is exactly what a synchronous run
        over the same batches would have produced. Safe to call when
        nothing is in flight (returns ``None``) — checkpointers call it
        unconditionally before snapshotting.
        """
        state = self._inflight
        if state is None:
            return None
        self._inflight = None
        self._await(state)
        self._merge_batch(state)
        assert state.bundle is not None
        self._adopt_controller(
            time.perf_counter() - state.started, state.bundle.exec_stats
        )
        return self._finalize_batch(state, observe_controller=False)

    def _await(self, state: _BatchState) -> None:
        """Block until a launched batch's execution resolves.

        The blocked time is the driver's pipeline stall — published as
        ``driver_idle_seconds`` (zero when the workers finished before
        the driver came back for the result).
        """
        assert state.future is not None
        t_wait = time.perf_counter()
        try:
            state.bundle = state.future.result()
        finally:
            self._pipeline_fill.set(0)
        self._driver_idle_hist.observe(time.perf_counter() - t_wait)

    def _launch(self, state: _BatchState) -> None:
        """Hand a prepared batch to the submit thread.

        The gap since the previous batch's last partition resolved is
        the workers' pipeline stall — published as
        ``worker_idle_seconds`` (the driver-side merge/prepare time the
        pipeline failed to hide).
        """
        if self._submit_pool is None:
            self._submit_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="microbatch-pipeline"
            )
        if self._last_execute_done is not None:
            self._worker_idle_hist.observe(
                max(0.0, time.perf_counter() - self._last_execute_done)
            )
        state.future = self._submit_pool.submit(self._execute_async, state)
        self._pipeline_fill.set(1)

    def _execute_async(self, state: _BatchState) -> _ExecBundle:
        """Submit-thread body: run the partitions, book execute time.

        Never touches the driver tracer (its span stack is
        single-threaded); the stage histogram is observed directly, so
        ``StageTimings.from_registry`` sees pipelined execute time too.
        All other metric writes on this path (partition_seconds,
        partition_timeouts_total, retry counters) are disjoint from the
        keys the driver thread writes during merge/finalize.
        """
        bundle = self._run_partitions(state)
        self._stage_execute_hist.observe(bundle.execute_seconds)
        self._last_execute_done = bundle.done_at
        return bundle

    def _abort_inflight(self) -> None:
        """Discard the in-flight batch (close/crash path).

        Cancels the submitted work if it has not started; otherwise
        waits a bounded moment for the submit thread (it is using the
        runner this close is about to tear down), then abandons it —
        its results are discarded either way, so engine state stays
        exactly at the last finalized batch.
        """
        state = self._inflight
        if state is None:
            return
        self._inflight = None
        if state.future is not None:
            state.future.cancel()
            try:
                state.future.result(timeout=30.0)
            except Exception:
                pass
        state.block.close()
        self._pipeline_fill.set(0)

    def run(self, tweets: Iterable[Tweet]) -> EngineResult:
        """Discretize a stream into micro-batches and process them all.

        ``run`` may be called repeatedly (state carries over between
        calls); on success it does not close the runner — use
        :meth:`close` or the context-manager form when the engine owns
        a pooled runner. If the run *fails*, the engine-owned runner is
        closed before the exception propagates, so a crashed run can
        never leak a process pool (pooled runners rebuild lazily if the
        engine is reused afterwards).

        With ``pipelined=True`` batches flow through
        :meth:`submit_batch` (merge/drain of batch *k* overlapping the
        execution of batch *k+1*) and the last batch is drained before
        the result snapshot — callers see identical totals either way.
        """
        start = time.perf_counter()
        submit = self.submit_batch if self.pipelined else self.process_batch
        try:
            batch: List[Tweet] = []
            for tweet in tweets:
                batch.append(tweet)
                if len(batch) >= self.batch_size:
                    submit(batch)
                    batch = []
            if batch:
                submit(batch)
            if self.pipelined:
                self.drain()
        except BaseException as exc:
            if self.recorder is not None:
                self.recorder.event("crash", error=repr(exc))
                self.recorder.auto_dump("crash")
            self.close()
            raise
        elapsed = time.perf_counter() - start
        return self.result(elapsed_seconds=elapsed)

    def result(self, elapsed_seconds: Optional[float] = None) -> EngineResult:
        """Snapshot the engine's cumulative outcome.

        ``elapsed_seconds`` defaults to the sum of per-batch elapsed
        times, which is what callers driving :meth:`process_batch`
        directly (e.g. the stream supervisor) want.
        """
        if elapsed_seconds is None:
            elapsed_seconds = sum(b.elapsed_seconds for b in self.batches)
        return EngineResult(
            n_processed=self.n_processed,
            n_labeled=self.n_labeled,
            n_unlabeled=self.n_unlabeled,
            metrics=self.cumulative.as_dict(),
            batches=list(self.batches),
            elapsed_seconds=elapsed_seconds,
            n_alerts=self.alert_manager.n_alerts,
            stage_seconds=self.stage_seconds,
            n_quarantined=self.n_quarantined,
            n_retries=self.n_retries,
            worker_stage_seconds=stage_seconds_by_stage(
                self.metrics,
                metric=WORKER_STAGE_SECONDS,
                engine="microbatch",
            ),
        )
