"""Micro-batch execution of the pipeline (Fig. 2 dataflow).

Each micro-batch of tweets becomes a partitioned RDD and flows through
the numbered operations of Fig. 2:

1. ``map`` — preprocessing + feature extraction + normalization
   (normalization uses the statistics broadcast from previous batches,
   so it stays incremental);
2. ``filter`` — keep the labeled instances;
3. ``aggregate`` — each task trains a *local* model (a structure copy
   of the global Hoeffding Tree / ARF, or a weight copy for SLR), and
   the driver merges the local models into the global model;
4. ``map`` — predictions with the model broadcast at batch start;
5. ``map`` — local confusion statistics;
6. ``reduce`` — global evaluation metrics.

Alerting and sampling consume the classified instances on the driver.
The updated global model (serialized well under 1 MB, as the paper
notes) is "broadcast" — passed to the next batch's tasks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.adaptive_bow import AdaptiveBagOfWords, FixedBagOfWords
from repro.core.alerting import AlertManager, AlertPolicy
from repro.core.config import PipelineConfig, create_model
from repro.core.evaluation import ConfusionMatrix
from repro.core.features import N_FEATURES, FeatureExtractor, LabelEncoder
from repro.core.normalization import Normalizer, make_normalizer
from repro.core.sampling import BoostedRandomSampler
from repro.data.tweet import Tweet
from repro.engine.rdd import parallelize
from repro.engine.runners import Runner, SerialRunner
from repro.streamml.arf import AdaptiveRandomForest
from repro.streamml.base import StreamClassifier
from repro.streamml.hoeffding_tree import HoeffdingTree
from repro.streamml.instance import ClassifiedInstance, Instance
from repro.streamml.slr import StreamingLogisticRegression


@dataclass
class _PartitionOutput:
    """Everything a partition task sends back to the driver."""

    classified: List[ClassifiedInstance]
    local_model: Optional[StreamClassifier]
    bow_delta: Optional[AdaptiveBagOfWords]
    local_stats: ConfusionMatrix
    raw_vectors: List[Tuple[float, ...]]
    n_labeled: int
    n_unlabeled: int
    user_ids: List[Optional[str]]


class _PartitionTask:
    """Picklable per-partition work unit (ops #1-#5 of Fig. 2)."""

    def __init__(
        self,
        tweets: List[Tweet],
        n_classes: int,
        preprocessing: bool,
        deobfuscate: bool,
        bow_words: frozenset,
        adaptive_bow: bool,
        normalizer: Normalizer,
        model: StreamClassifier,
        local_model: Optional[StreamClassifier],
    ) -> None:
        self.tweets = tweets
        self.n_classes = n_classes
        self.preprocessing = preprocessing
        self.deobfuscate = deobfuscate
        self.bow_words = bow_words
        self.adaptive_bow = adaptive_bow
        self.normalizer = normalizer
        self.model = model
        self.local_model = local_model

    def __call__(self) -> _PartitionOutput:
        encoder = LabelEncoder(self.n_classes)
        bow_delta: Optional[AdaptiveBagOfWords] = None
        if self.adaptive_bow:
            bow_delta = AdaptiveBagOfWords(
                seed_words=self.bow_words, update_interval=10 ** 9
            )
            bag = bow_delta
        else:
            bag = FixedBagOfWords(seed_words=self.bow_words)
        extractor = FeatureExtractor(
            encoder=encoder,
            preprocessing=self.preprocessing,
            bag_of_words=bag,
            deobfuscate=self.deobfuscate,
        )
        classified: List[ClassifiedInstance] = []
        raw_vectors: List[Tuple[float, ...]] = []
        stats = ConfusionMatrix(self.n_classes)
        labeled: List[Instance] = []
        user_ids: List[Optional[str]] = []
        n_labeled = 0
        n_unlabeled = 0
        for tweet in self.tweets:
            instance = extractor.extract(tweet)  # op #1 (extract)
            raw_vectors.append(instance.x)
            normalized = instance.with_features(
                self.normalizer.transform(instance.x)
            )  # op #1 (normalize, broadcast statistics)
            proba = self.model.predict_proba_one(normalized.x)  # op #4
            predicted = max(range(len(proba)), key=proba.__getitem__)
            classified.append(
                ClassifiedInstance(
                    instance=normalized, predicted=predicted, proba=proba
                )
            )
            user_ids.append(tweet.user.user_id)
            if normalized.is_labeled:
                n_labeled += 1
                assert normalized.y is not None
                stats.add(normalized.y, predicted)  # op #5
                labeled.append(normalized)  # op #2 (filter)
            else:
                n_unlabeled += 1
        if self.local_model is not None:
            for instance in labeled:  # op #3, local part
                self.local_model.learn_one(instance)
        return _PartitionOutput(
            classified=classified,
            local_model=self.local_model,
            bow_delta=bow_delta,
            local_stats=stats,
            raw_vectors=raw_vectors,
            n_labeled=n_labeled,
            n_unlabeled=n_unlabeled,
            user_ids=user_ids,
        )


@dataclass
class MicroBatchResult:
    """Per-micro-batch outcome."""

    batch_index: int
    n_processed: int
    n_labeled: int
    n_unlabeled: int
    elapsed_seconds: float
    cumulative_f1: float
    cumulative_accuracy: float


@dataclass
class EngineResult:
    """Aggregated outcome of a full engine run."""

    n_processed: int
    n_labeled: int
    n_unlabeled: int
    metrics: Dict[str, float]
    batches: List[MicroBatchResult]
    elapsed_seconds: float
    n_alerts: int

    @property
    def throughput(self) -> float:
        """Processed tweets per second of wall-clock time."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.n_processed / self.elapsed_seconds


class MicroBatchEngine:
    """Spark-Streaming-style execution of the detection pipeline.

    Args:
        config: pipeline configuration (same knobs as the sequential
            pipeline).
        n_partitions: parallel tasks per micro-batch.
        batch_size: tweets per micro-batch.
        runner: partition executor (serial / threads / processes).
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        n_partitions: int = 4,
        batch_size: int = 5000,
        runner: Optional[Runner] = None,
    ) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.config = config if config is not None else PipelineConfig()
        self.n_partitions = n_partitions
        self.batch_size = batch_size
        self.runner = runner if runner is not None else SerialRunner()
        self.encoder = LabelEncoder(self.config.n_classes)
        if self.config.adaptive_bow:
            self.bag_of_words: object = AdaptiveBagOfWords()
        else:
            self.bag_of_words = FixedBagOfWords()
        self.normalizer = make_normalizer(
            self.config.normalization
            if self.config.normalization_enabled
            else "none",
            N_FEATURES,
        )
        self.model: StreamClassifier = create_model(self.config)
        self.cumulative = ConfusionMatrix(self.config.n_classes)
        self.alert_manager = AlertManager(
            AlertPolicy(
                aggressive_classes=self.encoder.aggressive_classes,
                min_confidence=self.config.alert_min_confidence,
            )
        )
        self.sampler = BoostedRandomSampler(
            capacity=self.config.sample_capacity,
            boost=self.config.sample_boost,
            aggressive_classes=self.encoder.aggressive_classes,
            seed=self.config.seed,
        )
        self.batches: List[MicroBatchResult] = []
        self.n_processed = 0
        self.n_labeled = 0
        self.n_unlabeled = 0

    # ------------------------------------------------------------------
    # Model-parallel adapters (op #3: local train + global merge)
    # ------------------------------------------------------------------

    def _local_model(self) -> StreamClassifier:
        model = self.model
        if hasattr(model, "structure_copy"):
            # HT/ARF/Oza ensembles: statistics-accumulating copies.
            return model.structure_copy()
        if isinstance(model, StreamingLogisticRegression):
            local = model.clone()
            local.merge(model)  # copy current weights
            local.instances_seen = 0
            return local
        return model.clone()

    def _combine_models(self, locals_: Sequence[StreamClassifier]) -> None:
        model = self.model
        trained = [m for m in locals_ if m.instances_seen > 0]
        if not trained:
            return
        if hasattr(model, "structure_copy"):
            for local in trained:
                model.merge(local)
            if hasattr(model, "attempt_deferred_splits"):
                model.attempt_deferred_splits()
            return
        if isinstance(model, StreamingLogisticRegression):
            self._average_slr(model, trained)
            return
        for local in trained:
            model.merge(local)

    @staticmethod
    def _average_slr(
        model: StreamingLogisticRegression,
        locals_: Sequence[StreamClassifier],
    ) -> None:
        # Iterative parameter mixing: the new global weights are the
        # example-weighted average of the local weights (each local
        # started from the old global weights).
        total = sum(m.instances_seen for m in locals_)
        if total == 0:
            return
        first = locals_[0]
        assert isinstance(first, StreamingLogisticRegression)
        if not first.weights:
            return
        n_classes = model.n_classes
        n_features = len(first.weights[0])
        new_weights = [[0.0] * n_features for _ in range(n_classes)]
        new_bias = [0.0] * n_classes
        for local in locals_:
            assert isinstance(local, StreamingLogisticRegression)
            share = local.instances_seen / total
            for cls in range(n_classes):
                row = local.weights[cls]
                target = new_weights[cls]
                for feature in range(n_features):
                    target[feature] += share * row[feature]
                new_bias[cls] += share * local.bias[cls]
        model._weights = new_weights
        model._bias = new_bias
        model.instances_seen += total

    # ------------------------------------------------------------------
    # Batch processing
    # ------------------------------------------------------------------

    def process_batch(self, tweets: Sequence[Tweet]) -> MicroBatchResult:
        """Run one micro-batch through the Fig. 2 dataflow."""
        start = time.perf_counter()
        rdd = parallelize(tweets, self.n_partitions, runner=self.runner)
        bow_words = frozenset(self.bag_of_words.words)
        tasks = [
            _PartitionTask(
                tweets=partition,
                n_classes=self.config.n_classes,
                preprocessing=self.config.preprocessing,
                deobfuscate=self.config.deobfuscate,
                bow_words=bow_words,
                adaptive_bow=self.config.adaptive_bow,
                normalizer=self.normalizer,
                model=self.model,
                local_model=self._local_model(),
            )
            for partition in rdd.partitions
        ]
        outputs: List[_PartitionOutput] = self.runner.run(tasks)
        self._combine_models([o.local_model for o in outputs if o.local_model])
        if isinstance(self.bag_of_words, AdaptiveBagOfWords):
            for output in outputs:
                if output.bow_delta is not None:
                    self.bag_of_words.absorb(output.bow_delta)
            self.bag_of_words.maintain()
        n_labeled = 0
        n_unlabeled = 0
        for output in outputs:
            self.cumulative.merge(output.local_stats)  # op #6
            n_labeled += output.n_labeled
            n_unlabeled += output.n_unlabeled
            for vector in output.raw_vectors:
                self.normalizer.observe(vector)
            for classified, user_id in zip(output.classified, output.user_ids):
                if not classified.instance.is_labeled:
                    self.alert_manager.process(classified, user_id=user_id)
                    self.sampler.offer(classified)
        self.n_processed += len(tweets)
        self.n_labeled += n_labeled
        self.n_unlabeled += n_unlabeled
        result = MicroBatchResult(
            batch_index=len(self.batches),
            n_processed=len(tweets),
            n_labeled=n_labeled,
            n_unlabeled=n_unlabeled,
            elapsed_seconds=time.perf_counter() - start,
            cumulative_f1=self.cumulative.weighted_f1,
            cumulative_accuracy=self.cumulative.accuracy,
        )
        self.batches.append(result)
        return result

    def run(self, tweets: Iterable[Tweet]) -> EngineResult:
        """Discretize a stream into micro-batches and process them all."""
        start = time.perf_counter()
        batch: List[Tweet] = []
        for tweet in tweets:
            batch.append(tweet)
            if len(batch) >= self.batch_size:
                self.process_batch(batch)
                batch = []
        if batch:
            self.process_batch(batch)
        elapsed = time.perf_counter() - start
        return EngineResult(
            n_processed=self.n_processed,
            n_labeled=self.n_labeled,
            n_unlabeled=self.n_unlabeled,
            metrics=self.cumulative.as_dict(),
            batches=list(self.batches),
            elapsed_seconds=elapsed,
            n_alerts=self.alert_manager.n_alerts,
        )
