"""Stream replay and end-to-end latency measurement.

"Real-time" detection is a latency claim, not just a throughput claim:
an alert is only useful if it fires moments after the tweet is posted.
This module replays a recorded tweet stream against the pipeline at a
configurable arrival rate — in *simulated* time by default, so tests
and benches stay fast and deterministic — and tracks per-tweet
detection latency (arrival → classified) plus queueing behaviour when
the offered rate exceeds the pipeline's service rate.

The simulation is a simple single-server queue fed by the arrival
process: each tweet needs ``service_time`` seconds of pipeline compute
(measured, or supplied), waits behind earlier tweets, and its latency
is (completion - arrival). This is exactly the back-pressure behaviour
a single-node deployment exhibits, and it shows the crossover where a
configuration stops being real-time (utilization >= 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.data.tweet import Tweet
from repro.obs.metrics import MetricsRegistry
from repro.streamml.stats import percentile


@dataclass
class LatencyReport:
    """Latency distribution of one replay."""

    n_tweets: int
    offered_rate: float
    service_rate: float
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    max_queue_depth: int

    @property
    def utilization(self) -> float:
        """Offered load relative to capacity (>= 1 means unstable)."""
        if self.service_rate <= 0:
            return float("inf")
        return self.offered_rate / self.service_rate

    @property
    def is_real_time(self) -> bool:
        """Whether the queue is stable (latency does not grow unboundedly)."""
        return self.utilization < 1.0


class StreamReplayer:
    """Replays tweets at a fixed rate against a per-tweet processor.

    Args:
        process: callable invoked once per tweet (the pipeline's
            ``process``); its measured cost defines the service rate
            unless ``service_time_s`` is given.
        service_time_s: fixed per-tweet service time for the queueing
            simulation; ``None`` measures each call with a wall clock.
        metrics: optional registry; each replay records its simulated
            latencies into ``replay_latency_seconds`` and measured
            service times into ``replay_service_seconds`` histograms.
            The :class:`LatencyReport` itself always uses exact sorted
            percentiles over the full sample — the registry view is for
            export alongside the rest of the run's telemetry.
    """

    def __init__(
        self,
        process: Callable[[Tweet], object],
        service_time_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.process = process
        self.service_time_s = service_time_s
        self.metrics = metrics

    def replay(
        self,
        tweets: Iterable[Tweet],
        arrival_rate: float,
    ) -> LatencyReport:
        """Replay a stream arriving at ``arrival_rate`` tweets/second.

        Time is simulated: tweet *i* arrives at ``i / arrival_rate``;
        the single server processes tweets FIFO, each costing its
        (measured or fixed) service time. Latency is completion minus
        arrival.
        """
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        latencies: List[float] = []
        service_times: List[float] = []
        server_free_at = 0.0
        max_queue_depth = 0
        queue_depth = 0
        last_completion = 0.0
        completions: List[float] = []
        for index, tweet in enumerate(tweets):
            arrival = index / arrival_rate
            if self.service_time_s is None:
                started = time.perf_counter()
                self.process(tweet)
                service = time.perf_counter() - started
            else:
                self.process(tweet)
                service = self.service_time_s
            service_times.append(service)
            start = max(arrival, server_free_at)
            completion = start + service
            server_free_at = completion
            latencies.append(completion - arrival)
            completions.append(completion)
            # Queue depth at this arrival: completed jobs leave.
            queue_depth = sum(1 for c in completions if c > arrival)
            max_queue_depth = max(max_queue_depth, queue_depth)
            last_completion = completion
        if not latencies:
            raise ValueError("cannot replay an empty stream")
        if self.metrics is not None:
            latency_hist = self.metrics.histogram("replay_latency_seconds")
            service_hist = self.metrics.histogram("replay_service_seconds")
            for latency, service in zip(latencies, service_times):
                latency_hist.observe(latency)
                service_hist.observe(service)
        mean_service = sum(service_times) / len(service_times)
        return LatencyReport(
            n_tweets=len(latencies),
            offered_rate=arrival_rate,
            service_rate=1.0 / mean_service if mean_service > 0 else 0.0,
            mean_latency_s=sum(latencies) / len(latencies),
            p50_latency_s=percentile(latencies, 50),
            p95_latency_s=percentile(latencies, 95),
            p99_latency_s=percentile(latencies, 99),
            max_latency_s=max(latencies),
            max_queue_depth=max_queue_depth,
        )

    def find_max_stable_rate(
        self,
        tweets: Sequence[Tweet],
        rates: Sequence[float],
        latency_budget_s: float,
    ) -> Optional[float]:
        """Largest offered rate whose p95 latency fits the budget.

        Rates are probed in increasing order against fresh replays of
        the same recorded stream; returns ``None`` if even the smallest
        rate misses the budget.
        """
        best: Optional[float] = None
        for rate in sorted(rates):
            report = self.replay(list(tweets), rate)
            if report.p95_latency_s <= latency_budget_s:
                best = rate
            else:
                break
        return best
