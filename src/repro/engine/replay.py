"""Stream replay and end-to-end latency measurement.

"Real-time" detection is a latency claim, not just a throughput claim:
an alert is only useful if it fires moments after the tweet is posted.
This module replays a recorded tweet stream against the pipeline at a
configurable arrival rate — in *simulated* time by default, so tests
and benches stay fast and deterministic — and tracks per-tweet
detection latency (arrival → classified) plus queueing behaviour when
the offered rate exceeds the pipeline's service rate.

The simulation is a simple single-server queue fed by the arrival
process: each tweet needs ``service_time`` seconds of pipeline compute
(measured, or supplied), waits behind earlier tweets, and its latency
is (completion - arrival). This is exactly the back-pressure behaviour
a single-node deployment exhibits, and it shows the crossover where a
configuration stops being real-time (utilization >= 1).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.data.tweet import Tweet
from repro.obs.metrics import MetricsRegistry
from repro.reliability.overload import BoundedIngestQueue, OverloadController
from repro.streamml.stats import percentile


class StepClock:
    """Deterministic fake clock: advances a fixed step per reading.

    Injected in place of ``time.perf_counter`` to make replay
    measurements a pure function of call count — tests that assert on
    service rates or ``find_max_stable_rate`` become reproducible on
    any host. Each *pair* of readings (start, stop) around a processed
    tweet yields exactly ``step_s`` of simulated service time.
    """

    def __init__(self, step_s: float = 0.001, start_s: float = 0.0) -> None:
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        self.step_s = step_s
        self.now_s = start_s
        self.n_reads = 0

    def __call__(self) -> float:
        self.n_reads += 1
        self.now_s += self.step_s
        return self.now_s


@dataclass
class LatencyReport:
    """Latency distribution of one replay."""

    n_tweets: int
    offered_rate: float
    service_rate: float
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    max_queue_depth: int

    @property
    def utilization(self) -> float:
        """Offered load relative to capacity (>= 1 means unstable).

        ``nan`` when the service rate is unmeasured (zero or ``nan``):
        a report with no timing information must not claim either
        stability or overload.
        """
        if math.isnan(self.service_rate) or self.service_rate <= 0:
            return float("nan")
        return self.offered_rate / self.service_rate

    @property
    def is_real_time(self) -> bool:
        """Whether the queue is stable (latency does not grow unboundedly)."""
        return self.utilization < 1.0


class StreamReplayer:
    """Replays tweets at a fixed rate against a per-tweet processor.

    Args:
        process: callable invoked once per tweet (the pipeline's
            ``process``); its measured cost defines the service rate
            unless ``service_time_s`` is given.
        service_time_s: fixed per-tweet service time for the queueing
            simulation; ``None`` measures each call with a wall clock.
        metrics: optional registry; each replay records its simulated
            latencies into ``replay_latency_seconds`` and measured
            service times into ``replay_service_seconds`` histograms.
            The :class:`LatencyReport` itself always uses exact sorted
            percentiles over the full sample — the registry view is for
            export alongside the rest of the run's telemetry.
        clock: timing source for measured service times (defaults to
            ``time.perf_counter``). Inject a :class:`StepClock` to make
            measured replays — and therefore
            :meth:`find_max_stable_rate` — fully deterministic.
    """

    def __init__(
        self,
        process: Callable[[Tweet], object],
        service_time_s: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.process = process
        self.service_time_s = service_time_s
        self.metrics = metrics
        self.clock = clock

    def replay(
        self,
        tweets: Iterable[Tweet],
        arrival_rate: float,
    ) -> LatencyReport:
        """Replay a stream arriving at ``arrival_rate`` tweets/second.

        Time is simulated: tweet *i* arrives at ``i / arrival_rate``;
        the single server processes tweets FIFO, each costing its
        (measured or fixed) service time. Latency is completion minus
        arrival.
        """
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        latencies: List[float] = []
        service_times: List[float] = []
        server_free_at = 0.0
        max_queue_depth = 0
        queue_depth = 0
        last_completion = 0.0
        completions: List[float] = []
        for index, tweet in enumerate(tweets):
            arrival = index / arrival_rate
            if self.service_time_s is None:
                started = self.clock()
                self.process(tweet)
                service = self.clock() - started
            else:
                self.process(tweet)
                service = self.service_time_s
            service_times.append(service)
            start = max(arrival, server_free_at)
            completion = start + service
            server_free_at = completion
            latencies.append(completion - arrival)
            completions.append(completion)
            # Queue depth at this arrival: completed jobs leave.
            queue_depth = sum(1 for c in completions if c > arrival)
            max_queue_depth = max(max_queue_depth, queue_depth)
            last_completion = completion
        if not latencies:
            raise ValueError("cannot replay an empty stream")
        if self.metrics is not None:
            latency_hist = self.metrics.histogram("replay_latency_seconds")
            service_hist = self.metrics.histogram("replay_service_seconds")
            for latency, service in zip(latencies, service_times):
                latency_hist.observe(latency)
                service_hist.observe(service)
        mean_service = sum(service_times) / len(service_times)
        return LatencyReport(
            n_tweets=len(latencies),
            offered_rate=arrival_rate,
            service_rate=(
                1.0 / mean_service if mean_service > 0 else float("nan")
            ),
            mean_latency_s=sum(latencies) / len(latencies),
            p50_latency_s=percentile(latencies, 50),
            p95_latency_s=percentile(latencies, 95),
            p99_latency_s=percentile(latencies, 99),
            max_latency_s=max(latencies),
            max_queue_depth=max_queue_depth,
        )

    def find_max_stable_rate(
        self,
        tweets: Sequence[Tweet],
        rates: Sequence[float],
        latency_budget_s: float,
    ) -> Optional[float]:
        """Largest offered rate whose p95 latency fits the budget.

        Rates are probed in increasing order against fresh replays of
        the same recorded stream; returns ``None`` if even the smallest
        rate misses the budget.
        """
        best: Optional[float] = None
        for rate in sorted(rates):
            report = self.replay(list(tweets), rate)
            if report.p95_latency_s <= latency_budget_s:
                best = rate
            else:
                break
        return best


@dataclass
class OverloadReport:
    """Outcome of one closed-loop (queue-fed) replay.

    The accounting invariant every replay must satisfy:
    ``n_offered == n_processed + n_shed`` (validation-quarantined
    tweets, if any, are the caller's to add — this layer sees only
    clean traffic).
    """

    n_offered: int
    n_processed: int
    n_shed: int
    n_batches: int
    max_queue_depth: int
    max_backlog_fraction: float
    n_deadline_misses: int
    final_tier: int
    max_tier_reached: int
    makespan_s: float
    queue_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def shed_fraction(self) -> float:
        """Share of offered traffic the queue shed."""
        if self.n_offered == 0:
            return 0.0
        return self.n_shed / self.n_offered

    @property
    def mean_rate_hz(self) -> float:
        """Processed tweets per simulated second (``nan`` if untimed)."""
        if self.makespan_s <= 0:
            return float("nan")
        return self.n_processed / self.makespan_s

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (CI smoke output, bench records)."""
        return {
            "n_offered": self.n_offered,
            "n_processed": self.n_processed,
            "n_shed": self.n_shed,
            "shed_fraction": self.shed_fraction,
            "n_batches": self.n_batches,
            "max_queue_depth": self.max_queue_depth,
            "max_backlog_fraction": self.max_backlog_fraction,
            "n_deadline_misses": self.n_deadline_misses,
            "final_tier": self.final_tier,
            "max_tier_reached": self.max_tier_reached,
            "makespan_s": self.makespan_s,
            "queue_counters": dict(self.queue_counters),
        }


def replay_closed_loop(
    arrivals: Iterable[Tuple[Tweet, float]],
    queue: BoundedIngestQueue,
    process_batch: Callable[[List[Tweet]], object],
    controller: Optional[OverloadController] = None,
    batch_size: int = 500,
    service_time_s: Optional[Union[float, Dict[int, float]]] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> OverloadReport:
    """Replay timestamped arrivals through a bounded queue, closed-loop.

    A single simulated server drains the queue in batches while
    arrivals accumulate: each ``(tweet, arrival_s)`` is offered at its
    timestamp, and whenever the server is free before the next arrival
    it drains up to the current batch size and "works" for the batch's
    duration — measured via ``clock`` around ``process_batch``, or
    modeled as ``len(batch) * service_time_s`` (a float, or a dict from
    degrade-tier level to per-tweet seconds). Backlog therefore builds
    exactly when the offered rate exceeds the service rate, which is
    what exercises shedding and the overload controller.

    With a ``controller``, each batch's (simulated) duration feeds
    :meth:`~repro.reliability.overload.OverloadController.observe_batch`
    and the next drain uses the controller's adjusted batch size; the
    feature-tier decision is the *caller's* to apply inside
    ``process_batch`` (engines attach the controller themselves — this
    standalone loop is for benches and smoke tests).

    Returns an :class:`OverloadReport`; ``queue`` is left drained.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    n_batches = 0
    n_processed = 0
    n_misses_before = (
        controller.n_deadline_misses if controller is not None else 0
    )
    max_backlog_fraction = 0.0
    server_free_s = 0.0

    def current_batch_size() -> int:
        return controller.batch_size if controller is not None else batch_size

    def service_batch(start_s: float) -> float:
        """Drain + process one batch; returns the new server-free time."""
        nonlocal n_batches, n_processed
        # Pressure is judged on the backlog the server *faced*, not the
        # post-drain remainder — sampling after the drain would hide a
        # queue that refills between batches.
        fraction_before = queue.depth_fraction
        batch = queue.drain(current_batch_size())
        if not batch:
            return start_s
        if service_time_s is None:
            t0 = clock()
            process_batch(batch)
            duration = clock() - t0
        else:
            process_batch(batch)
            if isinstance(service_time_s, dict):
                tier = int(controller.tier) if controller is not None else 0
                per_tweet = service_time_s[tier]
            else:
                per_tweet = service_time_s
            duration = len(batch) * per_tweet
        n_batches += 1
        n_processed += len(batch)
        if controller is not None:
            controller.observe_batch(
                duration, queue_fraction=fraction_before
            )
        return start_s + duration

    for tweet, arrival_s in arrivals:
        # Let the server catch up on backlog it had time for.
        while len(queue):
            start_s = max(server_free_s, queue.peek_arrival() or 0.0)
            if start_s >= arrival_s:
                break
            server_free_s = service_batch(start_s)
        queue.offer(tweet, arrival_s=arrival_s)
        max_backlog_fraction = max(max_backlog_fraction, queue.depth_fraction)
    while len(queue):
        start_s = max(server_free_s, queue.peek_arrival() or 0.0)
        server_free_s = service_batch(start_s)
    return OverloadReport(
        n_offered=queue.n_offered,
        n_processed=n_processed,
        n_shed=queue.n_shed,
        n_batches=n_batches,
        max_queue_depth=queue.max_depth,
        max_backlog_fraction=max_backlog_fraction,
        n_deadline_misses=(
            controller.n_deadline_misses - n_misses_before
            if controller is not None
            else 0
        ),
        final_tier=int(controller.tier) if controller is not None else 0,
        max_tier_reached=(
            int(controller.max_tier_reached) if controller is not None else 0
        ),
        makespan_s=server_free_s,
        queue_counters=queue.as_counters(),
    )


# ----------------------------------------------------------------------
# Deterministic chaos scenario (partition fault domains end to end)
# ----------------------------------------------------------------------

def model_state_digest(model: object) -> str:
    """Stable content hash of a model's full serialized state.

    Two engines whose models digest identically have bit-identical
    weights, counters, and structure — the equivalence the chaos suite
    asserts between faulted and fault-free runs.
    """
    import hashlib
    import json

    from repro.streamml.serialize import model_to_dict

    payload = json.dumps(model_to_dict(model), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos_scenario` execution."""

    n_tweets: int
    n_batches: int
    n_injected: int
    elapsed_s: float
    n_retries: int
    n_quarantined: int
    n_partition_timeouts: int
    n_speculative_launches: int
    n_speculative_wins: int
    n_pool_rebuilds: int
    final_f1: float
    model_digest: str
    #: One-look operational summary (see :class:`repro.obs.slo.Scorecard`).
    scorecard: Dict[str, Any] = field(default_factory=dict)
    #: Flight-recorder incident dumps written during the run.
    flight_dumps: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (CI smoke checks, bench summaries)."""
        return {
            "n_tweets": self.n_tweets,
            "n_batches": self.n_batches,
            "n_injected": self.n_injected,
            "elapsed_s": self.elapsed_s,
            "n_retries": self.n_retries,
            "n_quarantined": self.n_quarantined,
            "n_partition_timeouts": self.n_partition_timeouts,
            "n_speculative_launches": self.n_speculative_launches,
            "n_speculative_wins": self.n_speculative_wins,
            "n_pool_rebuilds": self.n_pool_rebuilds,
            "final_f1": self.final_f1,
            "model_digest": self.model_digest,
            "scorecard": dict(self.scorecard),
            "flight_dumps": list(self.flight_dumps),
        }


def run_chaos_scenario(
    tweets: Sequence[Tweet],
    config: Optional[object] = None,
    *,
    fault_kind: str = "worker_hang",
    every_n_calls: int = 4,
    n_partitions: int = 2,
    batch_size: int = 500,
    runner: str = "processes",
    n_workers: int = 2,
    partition_deadline_s: float = 5.0,
    speculate: Optional[float] = None,
    max_retries: int = 3,
    seed: int = 11,
    hang_s: float = 30.0,
    slow_s: float = 0.25,
    max_rebuilds_per_run: int = 1,
    flight_dir: Optional[str] = None,
    pipelined: bool = False,
) -> ChaosReport:
    """Drive a micro-batch run through a seeded partition-fault storm.

    Every ``every_n_calls``-th runner call injects one ``fault_kind``
    fault (cycling deterministically over the partitions), so the run
    exercises the full self-healing path: partition deadlines catch the
    hangs, pool rebuilds replace killed workers, per-partition retries
    re-run the affected slices, and — because engine-level retries
    advance the injector's call index past the faulty one — every batch
    eventually completes with the *same* merged state a fault-free run
    produces. ``every_n_calls`` must be >= 2 so a retry lands on a
    clean call index.

    Fault decisions ride in the pickled task, so a resubmit *within*
    the same runner call re-triggers the same fault; recovery comes
    from the engine's retry (a fresh call), which is why
    ``max_rebuilds_per_run`` defaults low — burning the rebuild budget
    fast surfaces ``worker_lost`` to the engine without extra forks.

    With ``every_n_calls <= 0``, no injector is attached: that is the
    fault-free baseline the chaos tests compare digests against.

    ``flight_dir`` attaches a :class:`~repro.obs.recorder.FlightRecorder`
    to the engine: every quarantine / pool rebuild / crash during the
    storm dumps the recent-event ring as JSONL into that directory, and
    the report lists the dump files.

    ``pipelined`` runs the storm through the engine's double-buffered
    path — the chaos suite asserts its digest matches the synchronous
    (and fault-free) runs, pinning the overlap as bit-exact under
    faults too.
    """
    from repro.core.config import PipelineConfig
    from repro.engine.microbatch import MicroBatchEngine
    from repro.engine.runners import ProcessPoolRunner, make_runner
    from repro.obs.recorder import FlightRecorder
    from repro.obs.slo import Scorecard
    from repro.reliability.deadletter import DeadLetterQueue
    from repro.reliability.faults import FaultInjectingRunner, FaultInjector
    from repro.reliability.supervisor import RetryPolicy

    if every_n_calls == 1:
        raise ValueError(
            "every_n_calls must be >= 2 (a retry must be able to land "
            "on a clean call index) or <= 0 for the fault-free baseline"
        )
    if runner == "processes":
        base: object = ProcessPoolRunner(
            n_processes=n_workers,
            max_rebuilds_per_run=max_rebuilds_per_run,
        )
    else:
        base = make_runner(runner, n_workers)
    injector: Optional[FaultInjector] = None
    exec_runner = base
    if every_n_calls > 0:
        # One faulty partition per every_n_calls-th call, cycling over
        # partitions so each fault domain gets exercised.
        schedule = {
            call: ((call // every_n_calls) % n_partitions,)
            for call in range(every_n_calls - 1, 10_000, every_n_calls)
        }
        injector = FaultInjector(
            schedule=schedule,
            seed=seed,
            transient=True,
            kind=fault_kind,
            hang_s=hang_s,
            slow_s=slow_s,
        )
        exec_runner = FaultInjectingRunner(base, injector, owns_inner=True)
    dead_letters = DeadLetterQueue()
    policy = RetryPolicy(
        max_retries=max_retries,
        base_delay_s=0.0,
        jitter=0.0,
        seed=seed,
        sleep=lambda _s: None,
    )
    recorder = (
        FlightRecorder(dump_dir=flight_dir)
        if flight_dir is not None
        else None
    )
    engine = MicroBatchEngine(
        config if config is not None else PipelineConfig(n_classes=2),
        n_partitions=n_partitions,
        batch_size=batch_size,
        runner=exec_runner,  # type: ignore[arg-type]
        retry_policy=policy,
        dead_letters=dead_letters,
        partition_deadline_s=partition_deadline_s,
        speculate=speculate,
        recorder=recorder,
        pipelined=pipelined,
    )
    started = time.perf_counter()
    try:
        result = engine.run(tweets)
        digest = model_state_digest(engine.model)
        registry = engine.metrics
        elapsed_s = time.perf_counter() - started
        scorecard = Scorecard.from_registry(
            registry,
            f1=float(result.metrics.get("f1", float("nan"))),
            throughput=(
                len(tweets) / elapsed_s if elapsed_s > 0 else float("nan")
            ),
        )
        flight_dumps = []
        if recorder is not None and recorder.dump_dir is not None:
            flight_dumps = sorted(
                str(p) for p in recorder.dump_dir.glob("flight-*.jsonl")
            )
        report = ChaosReport(
            n_tweets=len(tweets),
            n_batches=len(result.batches),
            n_injected=injector.n_injected if injector is not None else 0,
            elapsed_s=elapsed_s,
            n_retries=result.n_retries,
            n_quarantined=result.n_quarantined,
            n_partition_timeouts=int(
                registry.total("partition_timeouts_total")
            ),
            n_speculative_launches=int(
                registry.total("speculative_launches_total")
            ),
            n_speculative_wins=int(
                registry.total("speculative_wins_total")
            ),
            n_pool_rebuilds=int(registry.total("pool_rebuilds_total")),
            final_f1=float(result.metrics.get("f1", 0.0)),
            model_digest=digest,
            scorecard=scorecard.as_dict(),
            flight_dumps=flight_dumps,
        )
    finally:
        engine.close()
        exec_runner.close()  # type: ignore[union-attr]
    return report
