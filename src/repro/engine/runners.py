"""Partition-task executors: serial, thread pool, process pool.

A runner executes a list of zero-argument callables (one per data
partition) and returns their results in order. ``SerialRunner`` is the
reference; ``ThreadPoolRunner`` overlaps partitions on threads (limited
by the GIL for pure-Python stages, included for API parity and for
I/O-bound sources); ``ProcessPoolRunner`` achieves real multi-core
execution at the price of pickling the task closures, mirroring
Spark's executor processes.
"""

from __future__ import annotations

import abc
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

R = TypeVar("R")

Task = Callable[[], R]


class Runner(abc.ABC):
    """Executes partition tasks and returns results in input order."""

    @abc.abstractmethod
    def run(self, tasks: Sequence[Task]) -> List:
        """Execute all tasks; results keep the input order."""

    def close(self) -> None:
        """Release any pooled resources (no-op by default)."""

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialRunner(Runner):
    """Runs tasks one after another on the calling thread."""

    def run(self, tasks: Sequence[Task]) -> List:
        return [task() for task in tasks]


class ThreadPoolRunner(Runner):
    """Runs tasks on a shared thread pool."""

    def __init__(self, n_threads: int = 4) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.n_threads)
        return self._pool

    def run(self, tasks: Sequence[Task]) -> List:
        pool = self._ensure_pool()
        return list(pool.map(_call, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ProcessPoolRunner(Runner):
    """Runs tasks on worker processes (tasks must be picklable)."""

    def __init__(self, n_processes: int = 4) -> None:
        if n_processes < 1:
            raise ValueError("n_processes must be >= 1")
        self.n_processes = n_processes
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.n_processes)
        return self._pool

    def run(self, tasks: Sequence[Task]) -> List:
        pool = self._ensure_pool()
        return list(pool.map(_call, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def _call(task: Task) -> object:
    """Top-level trampoline so tasks cross process boundaries."""
    return task()
