"""Partition-task executors: serial, thread pool, process pool.

A runner executes a list of zero-argument callables (one per data
partition) and returns their results in order. ``SerialRunner`` is the
reference; ``ThreadPoolRunner`` overlaps partitions on threads (limited
by the GIL for pure-Python stages, included for API parity and for
I/O-bound sources); ``ProcessPoolRunner`` achieves real multi-core
execution at the price of pickling the task closures, mirroring
Spark's executor processes.

A task that raises is re-raised as :class:`PartitionError` carrying the
partition index, so failures in pooled workers stay attributable. The
error is additionally classified as *transient* (worth retrying: lost
workers, I/O hiccups, anything raised as :class:`TransientWorkerError`)
or *fatal* (deterministic bugs or bad data, where a retry would fail
identically); the micro-batch engine's retry loop and the stream
supervisor only re-attempt transient failures.

Ownership: a runner created by the caller is closed by the caller
(use the context-manager form or ``close()``); the micro-batch engine
closes only runners it created itself — see
:class:`repro.engine.microbatch.MicroBatchEngine`.

Resident worker state: tasks that share heavyweight read-only driver
state (models, normalizer statistics, lexicons) wrap it in a
:class:`StateBroadcast` instead of carrying it per task. The broadcast
serializes its payload once per version — no matter how many tasks
reference it — and worker processes keep the last decoded payload in a
module-level cache keyed by ``(key, version)``, so one batch's
partitions (and any retry attempts against the same state) deserialize
the driver state once per worker instead of once per task.
"""

from __future__ import annotations

import abc
import itertools
import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

R = TypeVar("R")

Task = Callable[[], R]

RUNNER_KINDS = ("serial", "threads", "processes")


class TransientWorkerError(RuntimeError):
    """A retryable partition failure (injected faults, flaky workers).

    Raise this from partition code (or fault injectors) to mark a
    failure as transient: the resulting :class:`PartitionError` carries
    ``transient=True`` and retry loops will re-attempt the batch.
    """


#: Exception types classified as transient: environmental failures
#: (sockets, pipes, timeouts, lost pool workers) that a retry against
#: the same input can plausibly survive. Everything else — TypeError,
#: ValueError, arithmetic errors — is deterministic and fatal: the same
#: tweet would fail the same way on every attempt, so the fix is
#: quarantine (dead-letter queue), not retry.
TRANSIENT_ERROR_TYPES = (
    TransientWorkerError,
    ConnectionError,
    TimeoutError,
    EOFError,
    OSError,
)


def is_transient_error(exc: BaseException) -> bool:
    """Whether a partition failure is worth retrying."""
    if isinstance(exc, PartitionError):
        return exc.transient
    return isinstance(exc, TRANSIENT_ERROR_TYPES)


class PartitionError(RuntimeError):
    """A partition task failed; carries the failing partition's index.

    Pool executors surface worker exceptions without saying which task
    raised; wrapping every task execution in this error keeps failures
    attributable and picklable across process boundaries. ``transient``
    records the retry classification of the original exception
    (:func:`is_transient_error`); ``partition_index`` is ``-1`` when the
    failure cannot be attributed to a single partition (e.g. the whole
    worker pool died).
    """

    def __init__(
        self, partition_index: int, message: str, transient: bool = False
    ) -> None:
        super().__init__(partition_index, message, transient)
        self.partition_index = partition_index
        self.message = message
        self.transient = transient

    def __str__(self) -> str:
        kind = "transient" if self.transient else "fatal"
        return f"partition {self.partition_index} failed ({kind}): {self.message}"


#: Worker-resident broadcast cache: key -> (version, decoded payload).
#: One entry per broadcast key (each new version replaces the previous
#: one), so memory stays bounded by the number of live broadcasters.
_BROADCAST_CACHE: Dict[str, Tuple[int, object]] = {}
_BROADCAST_LOCK = threading.Lock()
_BROADCAST_IDS = itertools.count()


def new_broadcast_key(prefix: str = "broadcast") -> str:
    """A process-unique key for a sequence of :class:`StateBroadcast`.

    Combines the driver's PID with a process-wide counter, so two
    broadcasters in the same driver (or drivers sharing a worker pool)
    can never alias each other's cache entries.
    """
    return f"{prefix}-{os.getpid()}-{next(_BROADCAST_IDS)}"


def clear_broadcast_cache() -> None:
    """Drop all worker-resident broadcast state (test isolation hook)."""
    with _BROADCAST_LOCK:
        _BROADCAST_CACHE.clear()


class StateBroadcast:
    """Versioned, read-only driver state shared by many partition tasks.

    The driver wraps one batch's heavyweight state (model, normalizer
    statistics, lexicon deltas, ...) in a broadcast and hands the *same*
    broadcast object to every partition task. Three properties make
    this cheap:

    * **Serial/thread runners** never pickle the task, so
      :meth:`value` returns the live payload object directly — tasks
      must treat it as read-only (they already must, since sibling
      partitions share it).
    * **Pickling is once per version.** The payload is encoded lazily
      on the first task pickle and the bytes are reused for every
      subsequent task (and every retry attempt against the same state).
    * **Decoding is once per worker per version.** Worker processes
      cache the decoded payload keyed by ``(key, version)``; a worker
      running several partitions of the same batch deserializes the
      driver state once.

    The payload must not be ``None`` (that value flags "not yet
    decoded" on the worker side).
    """

    __slots__ = ("key", "version", "_value", "_encoded")

    def __init__(self, key: str, version: int, value: object) -> None:
        if value is None:
            raise ValueError("broadcast payload must not be None")
        self.key = key
        self.version = version
        self._value: Optional[object] = value
        self._encoded: Optional[bytes] = None

    def value(self) -> object:
        """The broadcast payload (live on the driver, cached on workers)."""
        value = self._value
        if value is not None:
            return value
        with _BROADCAST_LOCK:
            cached = _BROADCAST_CACHE.get(self.key)
            if cached is not None and cached[0] == self.version:
                value = cached[1]
            else:
                assert self._encoded is not None
                value = pickle.loads(self._encoded)
                _BROADCAST_CACHE[self.key] = (self.version, value)
        self._value = value
        return value

    def __getstate__(self) -> Tuple[str, int, bytes]:
        encoded = self._encoded
        if encoded is None:
            # Driver side, first task being pickled: encode the payload
            # once and reuse the bytes for every sibling task.
            encoded = pickle.dumps(self._value, protocol=pickle.HIGHEST_PROTOCOL)
            self._encoded = encoded
        return (self.key, self.version, encoded)

    def __setstate__(self, state: Tuple[str, int, bytes]) -> None:
        self.key, self.version, self._encoded = state
        self._value = None


class Runner(abc.ABC):
    """Executes partition tasks and returns results in input order."""

    @abc.abstractmethod
    def run(self, tasks: Sequence[Task]) -> List:
        """Execute all tasks; results keep the input order.

        Raises:
            PartitionError: if any task raises; the error names the
                failing partition and wraps the original message.
        """

    def close(self) -> None:
        """Release any pooled resources (no-op by default)."""

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialRunner(Runner):
    """Runs tasks one after another on the calling thread."""

    def run(self, tasks: Sequence[Task]) -> List:
        return [_run_task(item) for item in enumerate(tasks)]


class ThreadPoolRunner(Runner):
    """Runs tasks on a shared thread pool."""

    def __init__(self, n_threads: int = 4) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.n_threads)
        return self._pool

    def run(self, tasks: Sequence[Task]) -> List:
        pool = self._ensure_pool()
        return list(pool.map(_run_task, enumerate(tasks)))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ProcessPoolRunner(Runner):
    """Runs tasks on worker processes (tasks must be picklable)."""

    def __init__(self, n_processes: int = 4) -> None:
        if n_processes < 1:
            raise ValueError("n_processes must be >= 1")
        self.n_processes = n_processes
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.n_processes)
        return self._pool

    def run(self, tasks: Sequence[Task]) -> List:
        pool = self._ensure_pool()
        try:
            return list(pool.map(_run_task, enumerate(tasks)))
        except BrokenProcessPool as exc:
            # The pool is unusable once a worker dies; discard it so the
            # next run() builds a fresh one, and classify the failure as
            # transient — a retry against new workers can succeed.
            self.close()
            raise PartitionError(
                -1, f"worker pool broken: {exc}", transient=True
            ) from exc

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


def make_runner(kind: str, n_workers: int = 4) -> Runner:
    """Build a runner from a string spec ("serial"/"threads"/"processes")."""
    if kind == "serial":
        return SerialRunner()
    if kind == "threads":
        return ThreadPoolRunner(n_threads=n_workers)
    if kind == "processes":
        return ProcessPoolRunner(n_processes=n_workers)
    raise ValueError(
        f"unknown runner kind {kind!r}; expected one of {RUNNER_KINDS}"
    )


def _run_task(indexed: Tuple[int, Task]) -> object:
    """Top-level trampoline: crosses process boundaries, tags failures."""
    index, task = indexed
    try:
        return task()
    except PartitionError:
        raise
    except Exception as exc:
        raise PartitionError(
            index,
            f"{type(exc).__name__}: {exc}",
            transient=is_transient_error(exc),
        ) from exc
