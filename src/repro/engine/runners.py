"""Partition-task executors: serial, thread pool, process pool.

A runner executes a list of zero-argument callables (one per data
partition) and returns their results in order. ``SerialRunner`` is the
reference; ``ThreadPoolRunner`` overlaps partitions on threads (limited
by the GIL for pure-Python stages, included for API parity and for
I/O-bound sources); ``ProcessPoolRunner`` achieves real multi-core
execution at the price of pickling the task closures, mirroring
Spark's executor processes.

A task that raises is re-raised as :class:`PartitionError` carrying the
partition index, so failures in pooled workers stay attributable. The
error is additionally classified as *transient* (worth retrying: lost
workers, I/O hiccups, anything raised as :class:`TransientWorkerError`)
or *fatal* (deterministic bugs or bad data, where a retry would fail
identically); the micro-batch engine's retry loop and the stream
supervisor only re-attempt transient failures.

Ownership: a runner created by the caller is closed by the caller
(use the context-manager form or ``close()``); the micro-batch engine
closes only runners it created itself — see
:class:`repro.engine.microbatch.MicroBatchEngine`.

Resident worker state: tasks that share heavyweight read-only driver
state (models, normalizer statistics, lexicons) wrap it in a
:class:`StateBroadcast` instead of carrying it per task. The broadcast
serializes its payload once per version — no matter how many tasks
reference it — and worker processes keep the last decoded payload in a
bounded module-level cache keyed by ``(key, version)``, so one batch's
partitions (and any retry attempts against the same state) deserialize
the driver state once per worker instead of once per task.

Zero-copy transport: under a process runner the encoded payload is
written once into a ``multiprocessing.shared_memory`` segment and the
pickled task carries only ``(key, version, segment name, size)`` — the
payload bytes never travel through the pool's task pipe, and each
worker maps the segment read-only and unpickles straight out of the
mapping. Segment lifecycle is explicit: the driver creates a segment
lazily on the first task pickle of a version, unlinks it when the
broadcast is superseded (version bump) or released (engine close), and
an ``atexit`` sweep unlinks anything a crashed driver left behind.
Workers attach, decode, and detach immediately; they never own
segments.
"""

from __future__ import annotations

import abc
import atexit
import itertools
import os
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

R = TypeVar("R")

Task = Callable[[], R]

RUNNER_KINDS = ("serial", "threads", "processes")


class TransientWorkerError(RuntimeError):
    """A retryable partition failure (injected faults, flaky workers).

    Raise this from partition code (or fault injectors) to mark a
    failure as transient: the resulting :class:`PartitionError` carries
    ``transient=True`` and retry loops will re-attempt the batch.
    """


#: Exception types classified as transient: environmental failures
#: (sockets, pipes, timeouts, lost pool workers) that a retry against
#: the same input can plausibly survive. Everything else — TypeError,
#: ValueError, arithmetic errors — is deterministic and fatal: the same
#: tweet would fail the same way on every attempt, so the fix is
#: quarantine (dead-letter queue), not retry.
TRANSIENT_ERROR_TYPES = (
    TransientWorkerError,
    ConnectionError,
    TimeoutError,
    EOFError,
    OSError,
)


def is_transient_error(exc: BaseException) -> bool:
    """Whether a partition failure is worth retrying."""
    if isinstance(exc, PartitionError):
        return exc.transient
    return isinstance(exc, TRANSIENT_ERROR_TYPES)


class PartitionError(RuntimeError):
    """A partition task failed; carries the failing partition's index.

    Pool executors surface worker exceptions without saying which task
    raised; wrapping every task execution in this error keeps failures
    attributable and picklable across process boundaries. ``transient``
    records the retry classification of the original exception
    (:func:`is_transient_error`); ``partition_index`` is ``-1`` when the
    failure cannot be attributed to a single partition (e.g. the whole
    worker pool died).
    """

    def __init__(
        self, partition_index: int, message: str, transient: bool = False
    ) -> None:
        super().__init__(partition_index, message, transient)
        self.partition_index = partition_index
        self.message = message
        self.transient = transient

    def __str__(self) -> str:
        kind = "transient" if self.transient else "fatal"
        return f"partition {self.partition_index} failed ({kind}): {self.message}"


#: Worker-resident broadcast cache: key -> (version, decoded payload),
#: in least-recently-used order. One entry per broadcast key (each new
#: version replaces the previous one), and the cache as a whole is
#: bounded at :data:`BROADCAST_CACHE_MAX` keys — a long-lived worker
#: pool shared by many engine lifetimes sheds dead broadcasters'
#: payloads instead of accumulating one entry per engine forever.
_BROADCAST_CACHE: "OrderedDict[str, Tuple[int, object]]" = OrderedDict()
_BROADCAST_LOCK = threading.Lock()
_BROADCAST_IDS = itertools.count()

#: Hard bound on worker-resident broadcast cache entries (keys). Live
#: broadcasters re-decode on the rare eviction miss; dead broadcasters
#: stop leaking.
BROADCAST_CACHE_MAX = 8

#: Driver-resident shared-memory segments: segment name -> SharedMemory.
#: Every entry is a segment this process created and must unlink; the
#: atexit sweep is the safety net for drivers that crash between
#: creating a segment and releasing its broadcast.
_LIVE_SEGMENTS: Dict[str, "shared_memory.SharedMemory"] = {}


def new_broadcast_key(prefix: str = "broadcast") -> str:
    """A process-unique key for a sequence of :class:`StateBroadcast`.

    Combines the driver's PID with a process-wide counter, so two
    broadcasters in the same driver (or drivers sharing a worker pool)
    can never alias each other's cache entries.
    """
    return f"{prefix}-{os.getpid()}-{next(_BROADCAST_IDS)}"


def clear_broadcast_cache() -> None:
    """Drop all worker-resident broadcast state (test isolation hook)."""
    with _BROADCAST_LOCK:
        _BROADCAST_CACHE.clear()


def broadcast_cache_size() -> int:
    """Number of broadcast keys currently cached in this process."""
    with _BROADCAST_LOCK:
        return len(_BROADCAST_CACHE)


def evict_broadcast(key: str) -> int:
    """Drop this process's cached payload for ``key``; returns cache size.

    Called locally when a broadcaster closes, and shipped to pool
    workers as a tombstone task (:meth:`Runner.evict_broadcast`) so a
    shared long-lived pool forgets a dead engine's state promptly
    rather than waiting for LRU pressure.
    """
    with _BROADCAST_LOCK:
        _BROADCAST_CACHE.pop(key, None)
        return len(_BROADCAST_CACHE)


def _cache_put(key: str, version: int, value: object) -> None:
    """Insert/refresh a cache entry, evicting the LRU key past the cap."""
    _BROADCAST_CACHE[key] = (version, value)
    _BROADCAST_CACHE.move_to_end(key)
    while len(_BROADCAST_CACHE) > BROADCAST_CACHE_MAX:
        _BROADCAST_CACHE.popitem(last=False)


def live_segment_names() -> List[str]:
    """Names of shared-memory segments this process currently owns."""
    return list(_LIVE_SEGMENTS)


def _release_segment(name: str) -> None:
    """Close and unlink one driver-owned segment (idempotent)."""
    segment = _LIVE_SEGMENTS.pop(name, None)
    if segment is None:
        return
    try:
        segment.close()
        segment.unlink()
    except (FileNotFoundError, OSError):  # already gone — fine
        pass


def _release_all_segments() -> None:
    """atexit sweep: unlink anything a crashed driver left behind."""
    for name in list(_LIVE_SEGMENTS):
        _release_segment(name)


atexit.register(_release_all_segments)


def _load_from_segment(name: str, size: int) -> object:
    """Attach a broadcast segment, unpickle straight from the mapping.

    The worker never copies the payload bytes: ``pickle.loads`` reads
    through a memoryview over the shared mapping. Attach happens at
    most once per ``(key, version)`` per worker — the decoded payload
    goes into the module cache and subsequent tasks hit that.

    Attaching re-registers the segment with the resource tracker, which
    pool workers share with the driver under the default fork start
    method — the duplicate registration dedups into the driver's own,
    and only the driver ever unlinks (explicitly unregistering its
    entry), so the tracker stays balanced.
    """
    segment = shared_memory.SharedMemory(name=name)
    try:
        view = segment.buf[:size]
        try:
            return pickle.loads(view)
        finally:
            view.release()
    finally:
        segment.close()


class StateBroadcast:
    """Versioned, read-only driver state shared by many partition tasks.

    The driver wraps one batch's heavyweight state (model, normalizer
    statistics, lexicon deltas, ...) in a broadcast and hands the *same*
    broadcast object to every partition task. Four properties make
    this cheap:

    * **Serial/thread runners** never pickle the task, so
      :meth:`value` returns the live payload object directly — tasks
      must treat it as read-only (they already must, since sibling
      partitions share it).
    * **Pickling is once per version.** The payload is encoded lazily
      on the first task pickle and the bytes are reused for every
      subsequent task (and every retry attempt against the same state).
    * **Transport is zero-copy.** When shared memory is enabled (the
      default), the encoded bytes are written once into a
      ``multiprocessing.shared_memory`` segment and each task pickle
      carries only the segment's name — sibling tasks add O(1) bytes to
      the pool pipe instead of re-shipping the payload.
    * **Decoding is once per worker per version.** Worker processes
      map the segment, unpickle directly from the shared mapping, and
      cache the decoded payload keyed by ``(key, version)``; a worker
      running several partitions of the same batch deserializes the
      driver state once.

    Lifecycle: the segment belongs to the *driver*. Call
    :meth:`release` when the broadcast is superseded or its owner
    closes — the micro-batch engine does this on every version bump and
    in ``close()`` — and the module's ``atexit`` sweep unlinks whatever
    a crashed driver leaves. Workers attach and detach within one
    decode; they never unlink.

    The payload must not be ``None`` (that value flags "not yet
    decoded" on the worker side).
    """

    __slots__ = (
        "key", "version", "_value", "_encoded", "_segment_name",
        "_payload_size", "use_shared_memory",
    )

    def __init__(
        self,
        key: str,
        version: int,
        value: object,
        use_shared_memory: bool = True,
    ) -> None:
        if value is None:
            raise ValueError("broadcast payload must not be None")
        self.key = key
        self.version = version
        self._value: Optional[object] = value
        self._encoded: Optional[bytes] = None
        self._segment_name: Optional[str] = None
        self._payload_size = 0
        self.use_shared_memory = use_shared_memory

    def value(self) -> object:
        """The broadcast payload (live on the driver, cached on workers)."""
        value = self._value
        if value is not None:
            return value
        with _BROADCAST_LOCK:
            cached = _BROADCAST_CACHE.get(self.key)
            if cached is not None and cached[0] == self.version:
                _BROADCAST_CACHE.move_to_end(self.key)
                value = cached[1]
            else:
                if self._segment_name is not None:
                    value = _load_from_segment(
                        self._segment_name, self._payload_size
                    )
                else:
                    assert self._encoded is not None
                    value = pickle.loads(self._encoded)
                _cache_put(self.key, self.version, value)
        self._value = value
        return value

    def _encode(self) -> bytes:
        encoded = self._encoded
        if encoded is None:
            encoded = pickle.dumps(self._value, protocol=pickle.HIGHEST_PROTOCOL)
            self._encoded = encoded
        return encoded

    def _ensure_segment(self, encoded: bytes) -> Optional[str]:
        """Write the payload into a shared segment once (driver side)."""
        if self._segment_name is not None:
            return self._segment_name
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, len(encoded))
            )
            segment.buf[: len(encoded)] = encoded
        except (OSError, ValueError):
            # No usable /dev/shm (full, or exotic platform): fall back
            # to shipping the bytes inline with each task pickle.
            return None
        _LIVE_SEGMENTS[segment.name] = segment
        self._segment_name = segment.name
        self._payload_size = len(encoded)
        return segment.name

    def release(self) -> None:
        """Unlink the driver-owned segment (idempotent).

        Must be called by the broadcast's owner when the version is
        superseded or the owning engine closes. Workers that already
        decoded this version keep serving from their cache; a retry
        against a released version would re-pickle inline (it cannot
        happen in the engine, which releases only after the batch —
        including all retry attempts — completed).
        """
        name, self._segment_name = self._segment_name, None
        self._payload_size = 0
        if name is not None:
            _release_segment(name)

    def __getstate__(
        self,
    ) -> Tuple[str, int, Optional[bytes], Optional[str], int]:
        with _BROADCAST_LOCK:
            # The pool's feeder thread pickles tasks concurrently with
            # driver code; encode + segment creation must be one-shot.
            encoded = self._encode()
            segment_name = (
                self._ensure_segment(encoded)
                if self.use_shared_memory
                else None
            )
        if segment_name is not None:
            return (self.key, self.version, None, segment_name, len(encoded))
        return (self.key, self.version, encoded, None, len(encoded))

    def __setstate__(
        self, state: Tuple[str, int, Optional[bytes], Optional[str], int]
    ) -> None:
        (
            self.key,
            self.version,
            self._encoded,
            self._segment_name,
            self._payload_size,
        ) = state
        self._value = None
        self.use_shared_memory = self._segment_name is not None


class Runner(abc.ABC):
    """Executes partition tasks and returns results in input order."""

    @abc.abstractmethod
    def run(self, tasks: Sequence[Task]) -> List:
        """Execute all tasks; results keep the input order.

        Raises:
            PartitionError: if any task raises; the error names the
                failing partition and wraps the original message.
        """

    def close(self) -> None:
        """Release any pooled resources (no-op by default)."""

    def evict_broadcast(self, key: str) -> None:
        """Forget a dead broadcaster's cached payload everywhere.

        The default covers in-process execution (serial/thread runners
        share this process's cache); pool-backed runners additionally
        ship eviction tasks to their workers.
        """
        evict_broadcast(key)

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialRunner(Runner):
    """Runs tasks one after another on the calling thread."""

    def run(self, tasks: Sequence[Task]) -> List:
        return [_run_task(item) for item in enumerate(tasks)]


class ThreadPoolRunner(Runner):
    """Runs tasks on a shared thread pool."""

    def __init__(self, n_threads: int = 4) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.n_threads)
        return self._pool

    def run(self, tasks: Sequence[Task]) -> List:
        pool = self._ensure_pool()
        return list(pool.map(_run_task, enumerate(tasks)))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ProcessPoolRunner(Runner):
    """Runs tasks on worker processes (tasks must be picklable)."""

    def __init__(self, n_processes: int = 4) -> None:
        if n_processes < 1:
            raise ValueError("n_processes must be >= 1")
        self.n_processes = n_processes
        self._pool: Optional[ProcessPoolExecutor] = None

    @staticmethod
    def _ensure_tracker_running() -> None:
        """Start the multiprocessing resource tracker pre-fork.

        Workers attach broadcast segments, and attaching registers the
        segment with the process's resource tracker. If the tracker is
        already running when the pool forks (the default start method
        on Linux), every worker inherits and shares the driver's
        tracker: worker registrations dedup into the driver's own entry
        and the driver's unlink keeps the cache balanced. Without this,
        a worker whose fork predates the tracker spawns its *own*
        tracker, which then warns about (or worse, tries to clean)
        driver-owned segments when the worker exits.
        """
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals vary
            pass

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._ensure_tracker_running()
            self._pool = ProcessPoolExecutor(max_workers=self.n_processes)
        return self._pool

    def run(self, tasks: Sequence[Task]) -> List:
        pool = self._ensure_pool()
        try:
            return list(pool.map(_run_task, enumerate(tasks)))
        except BrokenProcessPool as exc:
            # The pool is unusable once a worker dies; discard it so the
            # next run() builds a fresh one, and classify the failure as
            # transient — a retry against new workers can succeed.
            self.close()
            raise PartitionError(
                -1, f"worker pool broken: {exc}", transient=True
            ) from exc

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def evict_broadcast(self, key: str) -> None:
        evict_broadcast(key)
        pool = self._pool
        if pool is None:
            return
        # Best effort: one eviction task per worker slot. With a warm
        # pool each idle worker picks up one; a busy or partially-warm
        # pool may miss some workers, which the LRU bound then covers.
        try:
            futures = [
                pool.submit(evict_broadcast, key)
                for _ in range(self.n_processes)
            ]
            for future in futures:
                future.result(timeout=5.0)
        except Exception:
            # Eviction is an optimisation — a broken or shutting-down
            # pool must not turn engine close() into a failure.
            pass


def make_runner(kind: str, n_workers: int = 4) -> Runner:
    """Build a runner from a string spec ("serial"/"threads"/"processes")."""
    if kind == "serial":
        return SerialRunner()
    if kind == "threads":
        return ThreadPoolRunner(n_threads=n_workers)
    if kind == "processes":
        return ProcessPoolRunner(n_processes=n_workers)
    raise ValueError(
        f"unknown runner kind {kind!r}; expected one of {RUNNER_KINDS}"
    )


def _run_task(indexed: Tuple[int, Task]) -> object:
    """Top-level trampoline: crosses process boundaries, tags failures."""
    index, task = indexed
    try:
        return task()
    except PartitionError:
        raise
    except Exception as exc:
        raise PartitionError(
            index,
            f"{type(exc).__name__}: {exc}",
            transient=is_transient_error(exc),
        ) from exc
