"""Partition-task executors: serial, thread pool, process pool.

A runner executes a list of zero-argument callables (one per data
partition) and returns their results in order. ``SerialRunner`` is the
reference; ``ThreadPoolRunner`` overlaps partitions on threads (limited
by the GIL for pure-Python stages, included for API parity and for
I/O-bound sources); ``ProcessPoolRunner`` achieves real multi-core
execution at the price of pickling the task closures, mirroring
Spark's executor processes.

A task that raises is re-raised as :class:`PartitionError` carrying the
partition index, so failures in pooled workers stay attributable. The
error is additionally classified as *transient* (worth retrying: lost
workers, I/O hiccups, anything raised as :class:`TransientWorkerError`)
or *fatal* (deterministic bugs or bad data, where a retry would fail
identically); the micro-batch engine's retry loop and the stream
supervisor only re-attempt transient failures.

Ownership: a runner created by the caller is closed by the caller
(use the context-manager form or ``close()``); the micro-batch engine
closes only runners it created itself — see
:class:`repro.engine.microbatch.MicroBatchEngine`.

Resident worker state: tasks that share heavyweight read-only driver
state (models, normalizer statistics, lexicons) wrap it in a
:class:`StateBroadcast` instead of carrying it per task. The broadcast
serializes its payload once per version — no matter how many tasks
reference it — and worker processes keep the last decoded payload in a
bounded module-level cache keyed by ``(key, version)``, so one batch's
partitions (and any retry attempts against the same state) deserialize
the driver state once per worker instead of once per task.

Zero-copy transport: under a process runner the encoded payload is
written once into a ``multiprocessing.shared_memory`` segment and the
pickled task carries only ``(key, version, segment name, size)`` — the
payload bytes never travel through the pool's task pipe, and each
worker maps the segment read-only and unpickles straight out of the
mapping. Segment lifecycle is explicit: the driver creates a segment
lazily on the first task pickle of a version, unlinks it when the
broadcast is superseded (version bump) or released (engine close), and
an ``atexit`` sweep unlinks anything a crashed driver left behind.
Workers attach, decode, and detach immediately; they never own
segments.
"""

from __future__ import annotations

import abc
import atexit
import itertools
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.metrics import MetricsRegistry

R = TypeVar("R")

Task = Callable[[], R]

RUNNER_KINDS = ("serial", "threads", "processes")


class TransientWorkerError(RuntimeError):
    """A retryable partition failure (injected faults, flaky workers).

    Raise this from partition code (or fault injectors) to mark a
    failure as transient: the resulting :class:`PartitionError` carries
    ``transient=True`` and retry loops will re-attempt the batch.
    """


#: Exception types classified as transient: environmental failures
#: (sockets, pipes, timeouts, lost pool workers) that a retry against
#: the same input can plausibly survive. Everything else — TypeError,
#: ValueError, arithmetic errors — is deterministic and fatal: the same
#: tweet would fail the same way on every attempt, so the fix is
#: quarantine (dead-letter queue), not retry.
TRANSIENT_ERROR_TYPES = (
    TransientWorkerError,
    ConnectionError,
    TimeoutError,
    EOFError,
    OSError,
)


def is_transient_error(exc: BaseException) -> bool:
    """Whether a partition failure is worth retrying."""
    if isinstance(exc, PartitionError):
        return exc.transient
    return isinstance(exc, TRANSIENT_ERROR_TYPES)


class PartitionError(RuntimeError):
    """A partition task failed; carries the failing partition's index.

    Pool executors surface worker exceptions without saying which task
    raised; wrapping every task execution in this error keeps failures
    attributable and picklable across process boundaries. ``transient``
    records the retry classification of the original exception
    (:func:`is_transient_error`); ``partition_index`` is ``-1`` when the
    failure cannot be attributed to a single partition (e.g. the whole
    worker pool died).
    """

    def __init__(
        self, partition_index: int, message: str, transient: bool = False
    ) -> None:
        super().__init__(partition_index, message, transient)
        self.partition_index = partition_index
        self.message = message
        self.transient = transient

    def __str__(self) -> str:
        kind = "transient" if self.transient else "fatal"
        return f"partition {self.partition_index} failed ({kind}): {self.message}"


#: Per-task outcome classes reported by :meth:`Runner.run_with_deadline`.
#: ``ok`` carries a result; ``failed`` carries the task's own
#: :class:`PartitionError` (transient or fatal per the usual
#: classification); ``timed_out`` means the partition was still running
#: when the deadline expired; ``worker_lost`` means its worker process
#: died and the rebuild budget ran out before a clean re-run.
OUTCOME_OK = "ok"
OUTCOME_FAILED = "failed"
OUTCOME_TIMED_OUT = "timed_out"
OUTCOME_WORKER_LOST = "worker_lost"

TASK_OUTCOMES = (
    OUTCOME_OK,
    OUTCOME_FAILED,
    OUTCOME_TIMED_OUT,
    OUTCOME_WORKER_LOST,
)

#: How often the deadline loop re-checks futures, the clock, and the
#: speculation trigger. Small enough that deadlines land within ~50ms,
#: large enough that polling is invisible next to partition work.
_POLL_INTERVAL_S = 0.05


@dataclass
class TaskOutcome:
    """One partition task's fate under :meth:`Runner.run_with_deadline`."""

    partition_index: int
    status: str
    result: object = None
    error: Optional[PartitionError] = None
    duration_s: float = 0.0
    #: Whether the *winning* attempt was a speculative duplicate.
    speculative: bool = False

    @property
    def ok(self) -> bool:
        return self.status == OUTCOME_OK

    @property
    def retryable(self) -> bool:
        """Whether re-running this partition can plausibly succeed.

        Timeouts and lost workers are environmental by definition; a
        ``failed`` outcome defers to the wrapped error's transient flag.
        """
        if self.status in (OUTCOME_TIMED_OUT, OUTCOME_WORKER_LOST):
            return True
        return (
            self.status == OUTCOME_FAILED
            and self.error is not None
            and self.error.transient
        )

    def to_error(self) -> PartitionError:
        """The outcome as a raisable :class:`PartitionError`."""
        if self.error is not None:
            return self.error
        return PartitionError(
            self.partition_index,
            f"partition {self.status}",
            transient=self.status != OUTCOME_FAILED,
        )


@dataclass
class RunReport:
    """What :meth:`Runner.run_with_deadline` observed for one task set.

    ``outcomes`` keeps the input task order. The counters cover this
    call only; :class:`ProcessPoolRunner` additionally accumulates
    lifetime ``n_pool_rebuilds`` on the runner itself.
    """

    outcomes: List[TaskOutcome] = field(default_factory=list)
    n_speculative_launched: int = 0
    n_speculative_wins: int = 0
    n_pool_rebuilds: int = 0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def results(self) -> List:
        """All results in task order; raises the first non-ok outcome."""
        out = []
        for outcome in self.outcomes:
            if not outcome.ok:
                raise outcome.to_error()
            out.append(outcome.result)
        return out


def _validate_deadline_args(
    deadline_s: Optional[float], speculate_after: Optional[float]
) -> None:
    if deadline_s is not None and deadline_s <= 0:
        raise ValueError("deadline_s must be positive")
    if speculate_after is not None:
        if deadline_s is None:
            raise ValueError("speculate_after requires deadline_s")
        if not 0.0 < speculate_after <= 1.0:
            raise ValueError("speculate_after must be in (0, 1]")


#: Worker-resident broadcast cache: key -> (version, decoded payload),
#: in least-recently-used order. One entry per broadcast key (each new
#: version replaces the previous one), and the cache as a whole is
#: bounded at :data:`BROADCAST_CACHE_MAX` keys — a long-lived worker
#: pool shared by many engine lifetimes sheds dead broadcasters'
#: payloads instead of accumulating one entry per engine forever.
_BROADCAST_CACHE: "OrderedDict[str, Tuple[int, object]]" = OrderedDict()
_BROADCAST_LOCK = threading.Lock()
_BROADCAST_IDS = itertools.count()

#: Hard bound on worker-resident broadcast cache entries (keys). Live
#: broadcasters re-decode on the rare eviction miss; dead broadcasters
#: stop leaking.
BROADCAST_CACHE_MAX = 8

#: Driver-resident shared-memory segments: segment name -> SharedMemory.
#: Every entry is a segment this process created and must unlink; the
#: atexit sweep is the safety net for drivers that crash between
#: creating a segment and releasing its broadcast.
_LIVE_SEGMENTS: Dict[str, "shared_memory.SharedMemory"] = {}


def new_broadcast_key(prefix: str = "broadcast") -> str:
    """A process-unique key for a sequence of :class:`StateBroadcast`.

    Combines the driver's PID with a process-wide counter, so two
    broadcasters in the same driver (or drivers sharing a worker pool)
    can never alias each other's cache entries.
    """
    return f"{prefix}-{os.getpid()}-{next(_BROADCAST_IDS)}"


def clear_broadcast_cache() -> None:
    """Drop all worker-resident broadcast state (test isolation hook)."""
    with _BROADCAST_LOCK:
        _BROADCAST_CACHE.clear()


def broadcast_cache_size() -> int:
    """Number of broadcast keys currently cached in this process."""
    with _BROADCAST_LOCK:
        return len(_BROADCAST_CACHE)


def evict_broadcast(key: str) -> int:
    """Drop this process's cached payload for ``key``; returns cache size.

    Called locally when a broadcaster closes, and shipped to pool
    workers as a tombstone task (:meth:`Runner.evict_broadcast`) so a
    shared long-lived pool forgets a dead engine's state promptly
    rather than waiting for LRU pressure.
    """
    with _BROADCAST_LOCK:
        _BROADCAST_CACHE.pop(key, None)
        return len(_BROADCAST_CACHE)


def _cache_put(key: str, version: int, value: object) -> None:
    """Insert/refresh a cache entry, evicting the LRU key past the cap."""
    _BROADCAST_CACHE[key] = (version, value)
    _BROADCAST_CACHE.move_to_end(key)
    while len(_BROADCAST_CACHE) > BROADCAST_CACHE_MAX:
        _BROADCAST_CACHE.popitem(last=False)


def live_segment_names() -> List[str]:
    """Names of shared-memory segments this process currently owns."""
    return list(_LIVE_SEGMENTS)


def _release_segment(name: str) -> None:
    """Close and unlink one driver-owned segment (idempotent)."""
    segment = _LIVE_SEGMENTS.pop(name, None)
    if segment is None:
        return
    try:
        segment.close()
        segment.unlink()
    except (FileNotFoundError, OSError):  # already gone — fine
        pass


def _release_all_segments() -> None:
    """atexit sweep: unlink anything a crashed driver left behind."""
    for name in list(_LIVE_SEGMENTS):
        _release_segment(name)


atexit.register(_release_all_segments)


def _load_from_segment(name: str, size: int) -> object:
    """Attach a broadcast segment, unpickle straight from the mapping.

    The worker never copies the payload bytes: ``pickle.loads`` reads
    through a memoryview over the shared mapping. Attach happens at
    most once per ``(key, version)`` per worker — the decoded payload
    goes into the module cache and subsequent tasks hit that.

    Attaching re-registers the segment with the resource tracker, which
    pool workers share with the driver under the default fork start
    method — the duplicate registration dedups into the driver's own,
    and only the driver ever unlinks (explicitly unregistering its
    entry), so the tracker stays balanced.
    """
    segment = shared_memory.SharedMemory(name=name)
    try:
        view = segment.buf[:size]
        try:
            return pickle.loads(view)
        finally:
            view.release()
    finally:
        segment.close()


class StateBroadcast:
    """Versioned, read-only driver state shared by many partition tasks.

    The driver wraps one batch's heavyweight state (model, normalizer
    statistics, lexicon deltas, ...) in a broadcast and hands the *same*
    broadcast object to every partition task. Four properties make
    this cheap:

    * **Serial/thread runners** never pickle the task, so
      :meth:`value` returns the live payload object directly — tasks
      must treat it as read-only (they already must, since sibling
      partitions share it).
    * **Pickling is once per version.** The payload is encoded lazily
      on the first task pickle and the bytes are reused for every
      subsequent task (and every retry attempt against the same state).
    * **Transport is zero-copy.** When shared memory is enabled (the
      default), the encoded bytes are written once into a
      ``multiprocessing.shared_memory`` segment and each task pickle
      carries only the segment's name — sibling tasks add O(1) bytes to
      the pool pipe instead of re-shipping the payload.
    * **Decoding is once per worker per version.** Worker processes
      map the segment, unpickle directly from the shared mapping, and
      cache the decoded payload keyed by ``(key, version)``; a worker
      running several partitions of the same batch deserializes the
      driver state once.

    Lifecycle: the segment belongs to the *driver*. Call
    :meth:`release` when the broadcast is superseded or its owner
    closes — the micro-batch engine does this on every version bump and
    in ``close()`` — and the module's ``atexit`` sweep unlinks whatever
    a crashed driver leaves. Workers attach and detach within one
    decode; they never unlink.

    The payload must not be ``None`` (that value flags "not yet
    decoded" on the worker side).
    """

    __slots__ = (
        "key", "version", "_value", "_encoded", "_segment_name",
        "_payload_size", "use_shared_memory", "_encode_seconds",
    )

    def __init__(
        self,
        key: str,
        version: int,
        value: object,
        use_shared_memory: bool = True,
    ) -> None:
        if value is None:
            raise ValueError("broadcast payload must not be None")
        self.key = key
        self.version = version
        self._value: Optional[object] = value
        self._encoded: Optional[bytes] = None
        self._segment_name: Optional[str] = None
        self._payload_size = 0
        self.use_shared_memory = use_shared_memory
        self._encode_seconds: Optional[float] = None

    @property
    def encode_seconds(self) -> Optional[float]:
        """Seconds spent pickling the payload (driver side, once per
        version); ``None`` until :meth:`_encode` has run — i.e. under
        serial/thread runners, where the payload is never encoded."""
        return self._encode_seconds

    @property
    def payload_bytes(self) -> Optional[int]:
        """Encoded payload size in bytes; ``None`` before encoding."""
        if self._encoded is not None:
            return len(self._encoded)
        if self._payload_size:
            return self._payload_size
        return None

    def value(self, metrics: Optional["MetricsRegistry"] = None) -> object:
        """The broadcast payload (live on the driver, cached on workers).

        When ``metrics`` (a partition-local registry) is given, the
        resolution path is recorded: ``broadcast_decode_total`` counts
        by ``source`` (``live``/``cache``/``segment``/``inline``) and
        ``broadcast_decode_seconds`` observes actual decode time (the
        live short-circuit costs nothing and books no histogram entry).
        """
        value = self._value
        if value is not None:
            if metrics is not None:
                metrics.counter(
                    "broadcast_decode_total", source="live"
                ).inc()
            return value
        t_start = time.perf_counter()
        source = "cache"
        with _BROADCAST_LOCK:
            cached = _BROADCAST_CACHE.get(self.key)
            if cached is not None and cached[0] == self.version:
                _BROADCAST_CACHE.move_to_end(self.key)
                value = cached[1]
            else:
                if self._segment_name is not None:
                    source = "segment"
                    value = _load_from_segment(
                        self._segment_name, self._payload_size
                    )
                else:
                    source = "inline"
                    assert self._encoded is not None
                    value = pickle.loads(self._encoded)
                _cache_put(self.key, self.version, value)
        self._value = value
        if metrics is not None:
            metrics.counter("broadcast_decode_total", source=source).inc()
            metrics.histogram("broadcast_decode_seconds").observe(
                time.perf_counter() - t_start
            )
        return value

    def _encode(self) -> bytes:
        encoded = self._encoded
        if encoded is None:
            t_start = time.perf_counter()
            encoded = pickle.dumps(self._value, protocol=pickle.HIGHEST_PROTOCOL)
            self._encode_seconds = time.perf_counter() - t_start
            self._encoded = encoded
        return encoded

    def _ensure_segment(self, encoded: bytes) -> Optional[str]:
        """Write the payload into a shared segment once (driver side)."""
        if self._segment_name is not None:
            return self._segment_name
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, len(encoded))
            )
            segment.buf[: len(encoded)] = encoded
        except (OSError, ValueError):
            # No usable /dev/shm (full, or exotic platform): fall back
            # to shipping the bytes inline with each task pickle.
            return None
        _LIVE_SEGMENTS[segment.name] = segment
        self._segment_name = segment.name
        self._payload_size = len(encoded)
        return segment.name

    def release(self) -> None:
        """Unlink the driver-owned segment (idempotent).

        Must be called by the broadcast's owner when the version is
        superseded or the owning engine closes. Workers that already
        decoded this version keep serving from their cache; a retry
        against a released version would re-pickle inline (it cannot
        happen in the engine, which releases only after the batch —
        including all retry attempts — completed).
        """
        name, self._segment_name = self._segment_name, None
        self._payload_size = 0
        if name is not None:
            _release_segment(name)

    def __getstate__(
        self,
    ) -> Tuple[str, int, Optional[bytes], Optional[str], int]:
        with _BROADCAST_LOCK:
            # The pool's feeder thread pickles tasks concurrently with
            # driver code; encode + segment creation must be one-shot.
            encoded = self._encode()
            segment_name = (
                self._ensure_segment(encoded)
                if self.use_shared_memory
                else None
            )
        if segment_name is not None:
            return (self.key, self.version, None, segment_name, len(encoded))
        return (self.key, self.version, encoded, None, len(encoded))

    def __setstate__(
        self, state: Tuple[str, int, Optional[bytes], Optional[str], int]
    ) -> None:
        (
            self.key,
            self.version,
            self._encoded,
            self._segment_name,
            self._payload_size,
        ) = state
        self._value = None
        self.use_shared_memory = self._segment_name is not None
        self._encode_seconds = None


def _round_up_segment(size: int) -> int:
    """Round a segment size up to a 64 KiB multiple.

    Tweet-block payloads drift a little from batch to batch; rounding
    the allocation means a pooled segment absorbs that jitter instead
    of being unlinked and re-created every time the payload grows by a
    few bytes.
    """
    return max(1, (size + 0xFFFF) & ~0xFFFF)


class SegmentPool:
    """Reusable driver-owned shared-memory segments for tweet blocks.

    A pipelined engine has at most two tweet blocks alive at once (the
    batch being merged and the batch in flight), so the pool keeps up
    to ``max_segments`` free segments and hands them back out:
    segment creation — an mmap plus a resource-tracker registration —
    happens a handful of times per engine lifetime instead of once per
    batch. Pooled segments stay registered in the module's live-segment
    table, so the ``atexit`` sweep still covers a crashed driver, and
    :meth:`close` unlinks everything the pool holds.
    """

    def __init__(self, max_segments: int = 2) -> None:
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        self.max_segments = max_segments
        self._free: List["shared_memory.SharedMemory"] = []
        self._closed = False

    def acquire(self, size: int) -> Optional["shared_memory.SharedMemory"]:
        """A segment of at least ``size`` bytes, pooled or fresh.

        Returns ``None`` when shared memory is unavailable (no usable
        ``/dev/shm``); callers fall back to inline transport.
        """
        while self._free:
            segment = self._free.pop()
            if segment.size >= size:
                return segment
            # Too small to reuse; retire it and keep looking.
            _release_segment(segment.name)
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=_round_up_segment(size)
            )
        except (OSError, ValueError):
            return None
        _LIVE_SEGMENTS[segment.name] = segment
        return segment

    def recycle(self, segment: "shared_memory.SharedMemory") -> None:
        """Return a segment for reuse (or unlink it past the bound)."""
        if self._closed or len(self._free) >= self.max_segments:
            _release_segment(segment.name)
        else:
            self._free.append(segment)

    def close(self) -> None:
        """Unlink every pooled segment (idempotent)."""
        self._closed = True
        while self._free:
            _release_segment(self._free.pop().name)


class TweetSlice:
    """One partition's tweets, resolvable driver- or worker-side.

    Driver-side (serial/thread runners, where tasks are never pickled)
    the slice wraps the live partition list and :meth:`resolve` returns
    it unchanged. Under a process runner the driver encodes the whole
    batch once into a :class:`TweetBlock` and each slice pickles to an
    O(1) ``(segment name, offset, length)`` descriptor; the worker
    attaches the segment, unpickles its partition straight out of the
    shared mapping, and detaches. When shared memory is unavailable the
    block falls back to inline transport — the descriptor then carries
    the partition's pickled payload itself.
    """

    __slots__ = ("_live", "_segment_name", "_offset", "_length", "_inline")

    def __init__(
        self,
        live: Optional[list] = None,
        segment_name: Optional[str] = None,
        offset: int = 0,
        length: int = 0,
        inline: Optional[bytes] = None,
    ) -> None:
        self._live = live
        self._segment_name = segment_name
        self._offset = offset
        self._length = length
        self._inline = inline

    @property
    def n_bytes(self) -> int:
        """Encoded transport size (0 for a live, never-encoded slice)."""
        if self._inline is not None:
            return len(self._inline)
        return self._length

    def resolve(self) -> list:
        """The partition's tweet list (decoded at most once)."""
        if self._live is not None:
            return self._live
        if self._segment_name is not None:
            segment = shared_memory.SharedMemory(name=self._segment_name)
            try:
                view = segment.buf[self._offset:self._offset + self._length]
                try:
                    value = pickle.loads(view)
                finally:
                    view.release()
            finally:
                segment.close()
        else:
            assert self._inline is not None
            value = pickle.loads(self._inline)
        self._live = value
        return value

    def __getstate__(
        self,
    ) -> Tuple[Optional[str], int, int, Optional[bytes]]:
        if self._segment_name is not None:
            return (self._segment_name, self._offset, self._length, None)
        if self._inline is not None:
            return (None, 0, 0, self._inline)
        # A live-only slice pickled directly (a custom pool runner that
        # never went through TweetBlock.encode): ship the bytes inline.
        return (
            None, 0, 0,
            pickle.dumps(self._live, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def __setstate__(
        self, state: Tuple[Optional[str], int, int, Optional[bytes]]
    ) -> None:
        self._live = None
        (self._segment_name, self._offset, self._length, self._inline) = state


class TweetBlock:
    """One micro-batch's tweets, encoded once for all partitions.

    :meth:`encode` pickles each partition's tweet list once and lays
    the payloads out back-to-back in a single pooled shared-memory
    segment; the block's ``slices`` are :class:`TweetSlice` descriptors
    that pickle to O(1) coordinates. N partitions therefore cost one
    encode pass and one segment write — not N tweet-list pickles
    through the pool's task pipe.

    Lifecycle mirrors :class:`StateBroadcast`: the segment is
    driver-owned, registered for the ``atexit`` sweep, and recycled
    into the owning :class:`SegmentPool` by :meth:`close`. Call
    ``close()`` only after the batch — including every retry and
    speculative attempt — has resolved: a recycled segment's buffer is
    overwritten by the next batch, which is safe only because late
    losing attempts have their results discarded.
    """

    __slots__ = ("slices", "n_bytes", "_segment", "_pool")

    def __init__(
        self,
        slices: List[TweetSlice],
        n_bytes: int,
        segment: Optional["shared_memory.SharedMemory"],
        pool: Optional[SegmentPool],
    ) -> None:
        self.slices = slices
        self.n_bytes = n_bytes
        self._segment = segment
        self._pool = pool

    @classmethod
    def live(cls, partitions: Sequence[list]) -> "TweetBlock":
        """A no-transport block: slices wrap the live partition lists.

        Used with runners that never pickle their tasks (serial,
        threads) — resolution is a pointer dereference and ``n_bytes``
        stays 0.
        """
        return cls([TweetSlice(live=list(p)) for p in partitions], 0, None, None)

    @classmethod
    def encode(
        cls,
        partitions: Sequence[list],
        pool: Optional[SegmentPool] = None,
    ) -> "TweetBlock":
        """Encode partition tweet lists into one shared segment."""
        payloads = [
            pickle.dumps(list(p), protocol=pickle.HIGHEST_PROTOCOL)
            for p in partitions
        ]
        total = sum(len(p) for p in payloads)
        segment = pool.acquire(total) if pool is not None else None
        if segment is None:
            slices = [TweetSlice(inline=payload) for payload in payloads]
            return cls(slices, total, None, None)
        offset = 0
        slices = []
        for payload in payloads:
            segment.buf[offset:offset + len(payload)] = payload
            slices.append(
                TweetSlice(
                    segment_name=segment.name,
                    offset=offset,
                    length=len(payload),
                )
            )
            offset += len(payload)
        return cls(slices, total, segment, pool)

    def close(self) -> None:
        """Recycle the segment into the pool (idempotent)."""
        segment, self._segment = self._segment, None
        if segment is not None and self._pool is not None:
            self._pool.recycle(segment)


class Runner(abc.ABC):
    """Executes partition tasks and returns results in input order."""

    #: Whether this runner pickles tasks to ship them to workers. The
    #: micro-batch engine consults this to pick the tweet transport:
    #: pickling runners get a :class:`TweetBlock` (one shared-memory
    #: encode per batch, O(1) descriptors per task); in-process runners
    #: get live tweet lists. Custom backends that serialize tasks
    #: should set this to ``True`` to opt into the block transport.
    needs_pickled_tasks = False

    @abc.abstractmethod
    def run(self, tasks: Sequence[Task]) -> List:
        """Execute all tasks; results keep the input order.

        Raises:
            PartitionError: if any task raises; the error names the
                failing partition and wraps the original message.
        """

    def run_with_deadline(
        self,
        tasks: Sequence[Task],
        deadline_s: Optional[float] = None,
        speculate_after: Optional[float] = None,
    ) -> RunReport:
        """Execute all tasks, classifying each outcome instead of raising.

        Unlike :meth:`run`, one bad partition does not poison its
        siblings: every task gets a :class:`TaskOutcome` (``ok``,
        ``failed``, ``timed_out`` or ``worker_lost``) and the caller
        decides what to retry, speculate or quarantine.

        ``deadline_s`` bounds the whole task set; ``speculate_after``
        (a fraction of the deadline in ``(0, 1]``) asks pool runners to
        launch duplicate attempts for partitions still unresolved past
        that point — first finisher wins, the loser is cancelled or its
        result discarded.

        This default implementation runs tasks serially on the calling
        thread. In-process execution cannot preempt a running task, so
        the deadline and speculation arguments are validated but not
        enforced: outcomes here are only ever ``ok`` or ``failed``.
        """
        _validate_deadline_args(deadline_s, speculate_after)
        outcomes: List[TaskOutcome] = []
        for item in enumerate(tasks):
            started = time.perf_counter()
            try:
                result = _run_task(item)
            except PartitionError as exc:
                outcomes.append(
                    TaskOutcome(
                        item[0],
                        OUTCOME_FAILED,
                        error=exc,
                        duration_s=time.perf_counter() - started,
                    )
                )
            else:
                outcomes.append(
                    TaskOutcome(
                        item[0],
                        OUTCOME_OK,
                        result=result,
                        duration_s=time.perf_counter() - started,
                    )
                )
        return RunReport(outcomes=outcomes)

    def close(self) -> None:
        """Release any pooled resources (no-op by default)."""

    def evict_broadcast(self, key: str) -> None:
        """Forget a dead broadcaster's cached payload everywhere.

        The default covers in-process execution (serial/thread runners
        share this process's cache); pool-backed runners additionally
        ship eviction tasks to their workers.
        """
        evict_broadcast(key)

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialRunner(Runner):
    """Runs tasks one after another on the calling thread."""

    def run(self, tasks: Sequence[Task]) -> List:
        return [_run_task(item) for item in enumerate(tasks)]


class ThreadPoolRunner(Runner):
    """Runs tasks on a shared thread pool."""

    def __init__(self, n_threads: int = 4) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.n_threads)
        return self._pool

    def run(self, tasks: Sequence[Task]) -> List:
        pool = self._ensure_pool()
        return list(pool.map(_run_task, enumerate(tasks)))

    def run_with_deadline(
        self,
        tasks: Sequence[Task],
        deadline_s: Optional[float] = None,
        speculate_after: Optional[float] = None,
    ) -> RunReport:
        """Threaded variant: enforces the deadline, never speculates.

        Threads cannot be killed, so a timed-out task keeps running in
        the background — safe because partition tasks are pure — and
        its eventual result is discarded. Speculating a duplicate onto
        the same GIL would only slow the straggler down further, so
        ``speculate_after`` is validated but ignored.
        """
        _validate_deadline_args(deadline_s, speculate_after)
        pool = self._ensure_pool()
        started = time.perf_counter()
        futures: Dict[Future, int] = {
            pool.submit(_run_task, item): item[0]
            for item in enumerate(tasks)
        }
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
        done, pending = wait(list(futures), timeout=deadline_s)
        for future in done:
            index = futures[future]
            duration = time.perf_counter() - started
            try:
                result = future.result()
            except PartitionError as exc:
                outcomes[index] = TaskOutcome(
                    index, OUTCOME_FAILED, error=exc, duration_s=duration
                )
            else:
                outcomes[index] = TaskOutcome(
                    index, OUTCOME_OK, result=result, duration_s=duration
                )
        for future in pending:
            index = futures[future]
            future.cancel()
            outcomes[index] = TaskOutcome(
                index,
                OUTCOME_TIMED_OUT,
                error=PartitionError(
                    index,
                    f"partition exceeded {deadline_s:.3f}s deadline",
                    transient=True,
                ),
                duration_s=time.perf_counter() - started,
            )
        return RunReport(outcomes=[o for o in outcomes if o is not None])

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ProcessPoolRunner(Runner):
    """Runs tasks on worker processes (tasks must be picklable).

    Workers are *persistent*: the pool is created lazily on the first
    run and survives across batches until :meth:`close` (or a rebuild
    after a worker death), so per-batch cost is task descriptors and
    results through the pool pipe — the decoded :class:`StateBroadcast`
    stays resident in each worker's cache and tweet payloads travel via
    :class:`TweetBlock` segments.

    ``evict_timeout_s`` bounds how long :meth:`evict_broadcast` waits on
    each worker's tombstone task. ``max_rebuilds_per_run`` caps how many
    times one :meth:`run_with_deadline` call replaces a broken pool
    before classifying the surviving partitions as ``worker_lost``;
    ``n_pool_rebuilds`` counts rebuilds over the runner's lifetime.
    """

    needs_pickled_tasks = True

    def __init__(
        self,
        n_processes: int = 4,
        evict_timeout_s: float = 5.0,
        max_rebuilds_per_run: int = 2,
    ) -> None:
        if n_processes < 1:
            raise ValueError("n_processes must be >= 1")
        if evict_timeout_s <= 0:
            raise ValueError("evict_timeout_s must be positive")
        if max_rebuilds_per_run < 0:
            raise ValueError("max_rebuilds_per_run must be >= 0")
        self.n_processes = n_processes
        self.evict_timeout_s = evict_timeout_s
        self.max_rebuilds_per_run = max_rebuilds_per_run
        self.n_pool_rebuilds = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    @staticmethod
    def _ensure_tracker_running() -> None:
        """Start the multiprocessing resource tracker pre-fork.

        Workers attach broadcast segments, and attaching registers the
        segment with the process's resource tracker. If the tracker is
        already running when the pool forks (the default start method
        on Linux), every worker inherits and shares the driver's
        tracker: worker registrations dedup into the driver's own entry
        and the driver's unlink keeps the cache balanced. Without this,
        a worker whose fork predates the tracker spawns its *own*
        tracker, which then warns about (or worse, tries to clean)
        driver-owned segments when the worker exits.
        """
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals vary
            pass

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._ensure_tracker_running()
            self._pool = ProcessPoolExecutor(max_workers=self.n_processes)
        return self._pool

    def run(self, tasks: Sequence[Task]) -> List:
        pool = self._ensure_pool()
        try:
            return list(pool.map(_run_task, enumerate(tasks)))
        except BrokenProcessPool as exc:
            # The pool is unusable once a worker dies; discard it so the
            # next run() builds a fresh one, and classify the failure as
            # transient — a retry against new workers can succeed.
            self.close()
            raise PartitionError(
                -1, f"worker pool broken: {exc}", transient=True
            ) from exc

    def run_with_deadline(
        self,
        tasks: Sequence[Task],
        deadline_s: Optional[float] = None,
        speculate_after: Optional[float] = None,
    ) -> RunReport:
        """Deadline-aware execution with speculation and pool recovery.

        The driver polls futures instead of blocking on ``pool.map``,
        so one partition's fate never hides its siblings': each task
        resolves to ``ok`` or ``failed`` as its future completes,
        partitions still unresolved at the deadline become
        ``timed_out``, and a dead worker breaks only the *pool* — the
        completed siblings keep their results, the pool is rebuilt in
        place (broadcast segments in ``_LIVE_SEGMENTS`` are untouched,
        so workers re-attach the same driver state), and only the
        unresolved partitions are resubmitted, up to
        ``max_rebuilds_per_run`` times per call.

        With ``speculate_after`` set, partitions still unresolved past
        that fraction of the deadline get one duplicate attempt; the
        first finisher wins and the loser is cancelled (or, if already
        running, its result is discarded — tasks are pure, so the extra
        execution is wasted work, never corruption).

        If a timed-out partition's worker is still grinding when the
        call returns, the whole pool is abandoned (workers terminated)
        rather than handed, poisoned, to the next call; that abandonment
        counts as a pool rebuild.
        """
        _validate_deadline_args(deadline_s, speculate_after)
        n_tasks = len(tasks)
        outcomes: List[Optional[TaskOutcome]] = [None] * n_tasks
        report = RunReport(outcomes=outcomes)  # type: ignore[arg-type]
        if n_tasks == 0:
            return report
        started = time.perf_counter()
        speculate_at = (
            started + speculate_after * deadline_s
            if speculate_after is not None and deadline_s is not None
            else None
        )
        # Future -> (partition index, speculative attempt?, submit time).
        in_flight: Dict[Future, Tuple[int, bool, float]] = {}
        unresolved: Set[int] = set(range(n_tasks))
        speculated: Set[int] = set()
        to_submit: List[Tuple[int, bool]] = [(i, False) for i in range(n_tasks)]
        pool_broken = False
        rebuilds = 0

        def resolve(index: int, outcome: TaskOutcome) -> None:
            outcomes[index] = outcome
            unresolved.discard(index)

        while unresolved:
            if not pool_broken and to_submit:
                try:
                    pool = self._ensure_pool()
                    while to_submit:
                        index, speculative = to_submit[0]
                        future = pool.submit(_run_task, (index, tasks[index]))
                        to_submit.pop(0)
                        in_flight[future] = (
                            index, speculative, time.perf_counter()
                        )
                except (BrokenProcessPool, RuntimeError):
                    pool_broken = True
            if pool_broken:
                # In-flight results are lost with the pool; completed
                # partitions keep theirs. Rebuild and resubmit only the
                # unresolved ones — or give up on them past the budget.
                pool_broken = False
                in_flight.clear()
                self.close()
                if rebuilds >= self.max_rebuilds_per_run:
                    for index in sorted(unresolved):
                        outcomes[index] = TaskOutcome(
                            index,
                            OUTCOME_WORKER_LOST,
                            error=PartitionError(
                                index,
                                "worker lost and pool rebuild budget "
                                f"({self.max_rebuilds_per_run}) exhausted",
                                transient=True,
                            ),
                            duration_s=time.perf_counter() - started,
                        )
                    unresolved.clear()
                    break
                rebuilds += 1
                self.n_pool_rebuilds += 1
                report.n_pool_rebuilds += 1
                speculated -= unresolved
                to_submit = [(i, False) for i in sorted(unresolved)]
                continue
            now = time.perf_counter()
            if deadline_s is not None and now - started >= deadline_s:
                break
            timeout = _POLL_INTERVAL_S
            if deadline_s is not None:
                timeout = min(
                    timeout, max(0.001, started + deadline_s - now)
                )
            done, _ = wait(
                list(in_flight),
                timeout=timeout,
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                index, speculative, submitted = in_flight.pop(future)
                if index not in unresolved:
                    continue  # the sibling attempt already won
                duration = time.perf_counter() - submitted
                try:
                    result = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                except PartitionError as exc:
                    resolve(
                        index,
                        TaskOutcome(
                            index,
                            OUTCOME_FAILED,
                            error=exc,
                            duration_s=duration,
                            speculative=speculative,
                        ),
                    )
                except Exception as exc:  # pragma: no cover - defensive
                    resolve(
                        index,
                        TaskOutcome(
                            index,
                            OUTCOME_FAILED,
                            error=PartitionError(
                                index,
                                f"{type(exc).__name__}: {exc}",
                                transient=is_transient_error(exc),
                            ),
                            duration_s=duration,
                            speculative=speculative,
                        ),
                    )
                else:
                    resolve(
                        index,
                        TaskOutcome(
                            index,
                            OUTCOME_OK,
                            result=result,
                            duration_s=duration,
                            speculative=speculative,
                        ),
                    )
                    if speculative:
                        report.n_speculative_wins += 1
            # Cancel the losing sibling of any partition that resolved.
            for future in list(in_flight):
                if in_flight[future][0] not in unresolved:
                    future.cancel()
                    del in_flight[future]
            if (
                speculate_at is not None
                and time.perf_counter() >= speculate_at
            ):
                for index in sorted(unresolved - speculated):
                    speculated.add(index)
                    to_submit.append((index, True))
                    report.n_speculative_launched += 1

        # Deadline expiry (or budget exhaustion) path: classify the
        # leftovers and decide whether the pool survives this call.
        hung_worker = False
        for future in list(in_flight):
            index, _speculative, _submitted = in_flight.pop(future)
            if (
                index in unresolved
                and not future.cancel()
                and not future.done()
            ):
                hung_worker = True
        for index in sorted(unresolved):
            outcomes[index] = TaskOutcome(
                index,
                OUTCOME_TIMED_OUT,
                error=PartitionError(
                    index,
                    f"partition exceeded {deadline_s:.3f}s deadline",
                    transient=True,
                ),
                duration_s=time.perf_counter() - started,
            )
        unresolved.clear()
        if hung_worker:
            # A worker is still grinding an abandoned task; terminate
            # the pool rather than hand it, busy, to the next batch.
            self._abandon_pool()
            self.n_pool_rebuilds += 1
            report.n_pool_rebuilds += 1
        return report

    def _abandon_pool(self) -> None:
        """Tear down a pool whose workers may be hung (best effort).

        ``shutdown(wait=True)`` would block behind the hung task, so:
        cancel what's queued, terminate the worker processes, and let
        the next ``run`` build a fresh pool. Broadcast segments are
        driver-owned and survive untouched.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - executor internals vary
            pass
        for proc in processes:
            if proc.is_alive():
                proc.terminate()
        for proc in processes:
            proc.join(timeout=1.0)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def evict_broadcast(self, key: str) -> None:
        evict_broadcast(key)
        pool = self._pool
        if pool is None:
            return
        # Best effort: one eviction task per worker slot. With a warm
        # pool each idle worker picks up one; a busy or partially-warm
        # pool may miss some workers, which the LRU bound then covers.
        try:
            futures = [
                pool.submit(evict_broadcast, key)
                for _ in range(self.n_processes)
            ]
        except Exception:
            # Eviction is an optimisation — a broken or shutting-down
            # pool must not turn engine close() into a failure.
            return
        for future in futures:
            try:
                future.result(timeout=self.evict_timeout_s)
            except Exception:
                # One hung or dying worker must not abort eviction on
                # the rest of the pool; the LRU bound covers the miss.
                continue


def make_runner(kind: str, n_workers: int = 4) -> Runner:
    """Build a runner from a string spec ("serial"/"threads"/"processes")."""
    if kind == "serial":
        return SerialRunner()
    if kind == "threads":
        return ThreadPoolRunner(n_threads=n_workers)
    if kind == "processes":
        return ProcessPoolRunner(n_processes=n_workers)
    raise ValueError(
        f"unknown runner kind {kind!r}; expected one of {RUNNER_KINDS}"
    )


def _run_task(indexed: Tuple[int, Task]) -> object:
    """Top-level trampoline: crosses process boundaries, tags failures."""
    index, task = indexed
    try:
        return task()
    except PartitionError:
        raise
    except Exception as exc:
        raise PartitionError(
            index,
            f"{type(exc).__name__}: {exc}",
            transient=is_transient_error(exc),
        ) from exc
