"""Task-oriented operator DAG (Fig. 3): the Storm/Heron/Flink view.

Per-record engines deploy a directed acyclic graph of operators, each
instantiated as parallel tasks. This module models that topology: the
aggression pipeline is expressed as operators (extract → filter → train
/ predict → statistics → metrics), records flow one at a time, each
operator fans its input across its task instances (hash or round-robin
grouping), and shared state (the global model) is refreshed
periodically — demonstrating that the architecture is engine-agnostic
(§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

ProcessFn = Callable[[Any, int], Optional[Any]]


@dataclass
class Operator:
    """One streaming operator with ``parallelism`` task instances.

    Args:
        name: operator name (unique within a topology).
        process: function of (record, task_index) returning the output
            record, or ``None`` to drop it (filter semantics).
        parallelism: number of task instances.
        grouping: "round_robin" or "hash" (by the record's hash).
    """

    name: str
    process: ProcessFn
    parallelism: int = 1
    grouping: str = "round_robin"
    _next_task: int = field(default=0, repr=False)
    processed_per_task: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.grouping not in ("round_robin", "hash"):
            raise ValueError(f"unknown grouping {self.grouping!r}")
        self.processed_per_task = [0] * self.parallelism

    def route(self, record: Any) -> int:
        """Pick the task instance that will process this record."""
        if self.grouping == "hash":
            return hash(record) % self.parallelism
        task = self._next_task
        self._next_task = (self._next_task + 1) % self.parallelism
        return task

    def run(self, record: Any) -> Optional[Any]:
        """Process one record on its routed task."""
        task = self.route(record)
        self.processed_per_task[task] += 1
        return self.process(record, task)


class Topology:
    """A linear-or-branching DAG of operators.

    Edges are declared with :meth:`connect`; :meth:`push` injects one
    record at the source and propagates it through every downstream
    path (depth-first), honoring drops.
    """

    def __init__(self, source_name: str = "source") -> None:
        self.source_name = source_name
        self._operators: Dict[str, Operator] = {}
        self._edges: Dict[str, List[str]] = {source_name: []}
        self.n_pushed = 0

    def add_operator(self, operator: Operator) -> "Topology":
        """Register an operator node."""
        if operator.name in self._operators or operator.name == self.source_name:
            raise ValueError(f"duplicate operator name {operator.name!r}")
        self._operators[operator.name] = operator
        self._edges.setdefault(operator.name, [])
        return self

    def connect(self, upstream: str, downstream: str) -> "Topology":
        """Add an edge; both endpoints must already exist."""
        if upstream != self.source_name and upstream not in self._operators:
            raise ValueError(f"unknown upstream {upstream!r}")
        if downstream not in self._operators:
            raise ValueError(f"unknown downstream {downstream!r}")
        self._edges[upstream].append(downstream)
        self._check_acyclic()
        return self

    def _check_acyclic(self) -> None:
        state: Dict[str, int] = {}

        def visit(node: str) -> None:
            if state.get(node) == 1:
                raise ValueError("topology contains a cycle")
            if state.get(node) == 2:
                return
            state[node] = 1
            for nxt in self._edges.get(node, []):
                visit(nxt)
            state[node] = 2

        visit(self.source_name)

    def operator(self, name: str) -> Operator:
        """Look an operator up by name."""
        return self._operators[name]

    def push(self, record: Any) -> None:
        """Inject one record at the source and propagate it."""
        self.n_pushed += 1
        self._propagate(self.source_name, record)

    def _propagate(self, node: str, record: Any) -> None:
        for downstream_name in self._edges.get(node, []):
            operator = self._operators[downstream_name]
            output = operator.run(record)
            if output is not None:
                self._propagate(downstream_name, output)

    def push_many(self, records: Sequence[Any]) -> None:
        """Inject a sequence of records."""
        for record in records:
            self.push(record)

    def stats(self) -> Dict[str, List[int]]:
        """Per-operator, per-task processed-record counts."""
        return {
            name: list(op.processed_per_task)
            for name, op in self._operators.items()
        }
