"""Distributed stream-processing substrate (Spark Streaming analog).

The paper deploys its pipeline on Apache Spark Streaming: the tweet
stream is discretized into micro-batches, each micro-batch is an
RDD-like partitioned dataset transformed in parallel, training happens
as local-model updates merged into a global model, and the global model
is broadcast for the next micro-batch (Fig. 2). This subpackage
re-implements that execution model:

* :mod:`repro.engine.rdd` — partitioned datasets with map / filter /
  aggregate / reduce, executed by a pluggable runner;
* :mod:`repro.engine.runners` — serial, thread-pool, and process-pool
  partition executors;
* :mod:`repro.engine.microbatch` — the micro-batch engine wiring the
  Fig. 2 dataflow over the pipeline stages;
* :mod:`repro.engine.sequential` — MOA-like single-threaded execution;
* :mod:`repro.engine.cluster` — a calibrated cost model reproducing the
  scalability study (Figs. 15/16) for arbitrary node×core layouts;
* :mod:`repro.engine.topology` — the task-oriented operator-DAG view
  (Fig. 3) for per-record engines (Storm/Heron/Flink style).
"""

from repro.engine.cluster import ClusterSpec, CostModel, SimulatedCluster
from repro.engine.microbatch import (
    EngineResult,
    MicroBatchEngine,
    MicroBatchResult,
    StageTimings,
)
from repro.engine.rdd import RDD, parallelize, round_robin_partitions
from repro.engine.replay import (
    ChaosReport,
    LatencyReport,
    OverloadReport,
    StepClock,
    StreamReplayer,
    model_state_digest,
    replay_closed_loop,
    run_chaos_scenario,
)
from repro.engine.runners import (
    PartitionError,
    ProcessPoolRunner,
    SerialRunner,
    ThreadPoolRunner,
    TransientWorkerError,
    is_transient_error,
    make_runner,
)
from repro.engine.sequential import SequentialEngine
from repro.engine.topology import Operator, Topology

__all__ = [
    "ClusterSpec",
    "CostModel",
    "SimulatedCluster",
    "EngineResult",
    "MicroBatchEngine",
    "MicroBatchResult",
    "StageTimings",
    "RDD",
    "ChaosReport",
    "LatencyReport",
    "OverloadReport",
    "StepClock",
    "StreamReplayer",
    "model_state_digest",
    "replay_closed_loop",
    "run_chaos_scenario",
    "parallelize",
    "round_robin_partitions",
    "PartitionError",
    "ProcessPoolRunner",
    "SerialRunner",
    "ThreadPoolRunner",
    "TransientWorkerError",
    "is_transient_error",
    "make_runner",
    "SequentialEngine",
    "Operator",
    "Topology",
]
