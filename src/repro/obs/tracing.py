"""Lightweight stage spans over the metrics registry.

Replaces the scattered ``time.perf_counter()`` arithmetic in the
engines and the supervisor: a :class:`Span` is a context manager that
measures one stage and emits its duration into a registry histogram
(``stage_seconds{stage=..., **tracer labels}``), so per-stage latency
distributions (p50/p95/p99) and exact per-stage second totals come from
one bookkeeping path. :class:`repro.engine.microbatch.StageTimings` is
a *view* over this span data, not a parallel accumulator.

Spans nest: the tracer keeps a stack, each span knows its parent and
its ``path`` (``"batch/partition_execute"``), and nothing here is
thread-shared — partition tasks build their own registry + tracer and
ship a snapshot back to the driver.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import DEFAULT_QUANTILES, MetricsRegistry

#: Metric family spans emit into by default.
STAGE_SECONDS = "stage_seconds"


class Span:
    """One measured stage; use as a context manager.

    The duration is recorded on exit into the tracer's histogram family
    and exposed as :attr:`duration` for callers that also want the raw
    number (the micro-batch engine builds its per-batch
    ``StageTimings`` from these).
    """

    __slots__ = ("tracer", "name", "labels", "parent",
                 "started", "duration")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        labels: Dict[str, str],
        parent: Optional["Span"],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.labels = labels
        self.parent = parent
        self.started: Optional[float] = None
        self.duration: Optional[float] = None

    @property
    def path(self) -> str:
        """Slash-joined ancestry, e.g. ``"batch/model_merge"``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}/{self.name}"

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self.started is not None
        self.duration = time.perf_counter() - self.started
        self.tracer._pop(self)


class Tracer:
    """Factory for spans bound to one registry and base label set.

    Args:
        registry: where span durations are recorded.
        labels: labels stamped on every span's metrics (e.g.
            ``{"engine": "microbatch"}``).
        metric: histogram family name (default ``stage_seconds``).
        quantiles: quantile points tracked per stage.
        sketch_every: quantile-sketch sampling factor for the emitted
            histograms (1 = sketch every observation).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        labels: Optional[Dict[str, str]] = None,
        metric: str = STAGE_SECONDS,
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
        sketch_every: int = 1,
    ) -> None:
        self.registry = registry
        self.labels = dict(labels or {})
        self.metric = metric
        self.quantiles = tuple(quantiles)
        self.sketch_every = sketch_every
        self._stack: List[Span] = []

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **labels: str) -> Span:
        """A new span for stage ``name`` (enter it with ``with``)."""
        merged = dict(self.labels)
        merged.update(labels)
        merged["stage"] = name
        return Span(self, name, merged, self.current)

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)
        assert span.duration is not None
        self.registry.histogram(
            self.metric,
            quantiles=self.quantiles,
            sketch_every=self.sketch_every,
            **span.labels,
        ).observe(span.duration)


def stage_seconds_by_stage(
    registry: MetricsRegistry, metric: str = STAGE_SECONDS, **label_filter: str
) -> Dict[str, float]:
    """Exact seconds spent per stage, read back from span histograms.

    Sums the ``metric`` family's histogram sums grouped by their
    ``stage`` label, restricted to children matching ``label_filter``
    (e.g. ``engine="sequential"``).
    """
    wanted = set(
        (str(k), str(v)) for k, v in label_filter.items()
    )
    totals: Dict[str, float] = {}
    for (name, labels), hist in registry._histograms.items():
        if name != metric or not wanted.issubset(labels):
            continue
        stage = dict(labels).get("stage", "")
        totals[stage] = totals.get(stage, 0.0) + hist.sum
    return totals
