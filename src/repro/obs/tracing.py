"""Lightweight stage spans over the metrics registry.

Replaces the scattered ``time.perf_counter()`` arithmetic in the
engines and the supervisor: a :class:`Span` is a context manager that
measures one stage and emits its duration into a registry histogram
(``stage_seconds{stage=..., **tracer labels}``), so per-stage latency
distributions (p50/p95/p99) and exact per-stage second totals come from
one bookkeeping path. :class:`repro.engine.microbatch.StageTimings` is
a *view* over this span data, not a parallel accumulator.

Spans nest: the tracer keeps a stack, each span knows its parent and
its ``path`` (``"batch/partition_execute"``), and nothing here is
thread-shared — partition tasks build their own registry + tracer and
ship a snapshot back to the driver.

Cross-process tracing: every span carries a process-local ``span_id``
(monotonic per tracer, so ids are deterministic for a deterministic
code path), and a tracer opened with ``capture=True`` additionally
keeps a flat :class:`SpanRecord` per finished span. Worker-side
tracers bundle their records into a :class:`WorkerTelemetry` that
rides back to the driver inside the partition output, where
:func:`span_tree` nests the flat records back into a tree and the
engine stitches the per-partition subtrees under its own
``partition_execute`` span — one trace per micro-batch, speculative
winners and retries annotated by the driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import DEFAULT_QUANTILES, MetricsRegistry

#: Metric family spans emit into by default.
STAGE_SECONDS = "stage_seconds"

#: Metric family worker-side partition spans emit into — kept separate
#: from the driver's ``stage_seconds`` so driver-observed and
#: worker-observed stage costs never alias (the worker snapshots fold
#: into the same driver registry).
WORKER_STAGE_SECONDS = "worker_stage_seconds"


@dataclass
class SpanRecord:
    """One finished span, flattened for cross-process shipping.

    ``span_id``/``parent_id`` encode the tree (ids are tracer-local and
    assigned at span creation, so a deterministic code path yields a
    deterministic tree); ``start_s`` is the offset from the tracer's
    epoch, which orders siblings without any cross-process clock
    agreement.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    duration_s: float
    labels: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly flat form (flight recorder, trace dumps)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "labels": dict(self.labels),
        }


@dataclass
class WorkerTelemetry:
    """A partition task's captured spans, shipped back to the driver.

    Deliberately tiny: a handful of :class:`SpanRecord` (one per
    partition stage) plus the worker's pid and the task's wall time.
    Metric *deltas* travel separately on the partition output's
    registry snapshot; this is only the trace structure. Speculative
    losers never produce one of these — the deadline runner discards a
    losing attempt's entire result, telemetry included, exactly once.
    """

    spans: List[SpanRecord] = field(default_factory=list)
    pid: int = 0
    wall_s: float = 0.0

    def tree(self) -> List[Dict[str, Any]]:
        """The captured spans nested as a tree (see :func:`span_tree`)."""
        return span_tree(self.spans)

    def stage_seconds(self) -> Dict[str, float]:
        """Per-stage seconds summed over the captured spans."""
        totals: Dict[str, float] = {}
        for record in self.spans:
            totals[record.name] = (
                totals.get(record.name, 0.0) + record.duration_s
            )
        return totals


def span_tree(records: Iterable[SpanRecord]) -> List[Dict[str, Any]]:
    """Nest flat span records into parent→children dicts.

    Children (and roots) are ordered by ``span_id`` — creation order —
    so the same execution always renders the same tree. Records whose
    parent is missing (e.g. the parent belongs to another process)
    become roots.
    """
    nodes: Dict[int, Dict[str, Any]] = {}
    ordered: List[SpanRecord] = sorted(records, key=lambda r: r.span_id)
    for record in ordered:
        node = record.as_dict()
        node["children"] = []
        nodes[record.span_id] = node
    roots: List[Dict[str, Any]] = []
    for record in ordered:
        node = nodes[record.span_id]
        parent = (
            nodes.get(record.parent_id)
            if record.parent_id is not None
            else None
        )
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


class Span:
    """One measured stage; use as a context manager.

    The duration is recorded on exit into the tracer's histogram family
    and exposed as :attr:`duration` for callers that also want the raw
    number (the micro-batch engine builds its per-batch
    ``StageTimings`` from these).
    """

    __slots__ = ("tracer", "name", "labels", "parent",
                 "span_id", "started", "duration")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        labels: Dict[str, str],
        parent: Optional["Span"],
        span_id: int = 0,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.labels = labels
        self.parent = parent
        self.span_id = span_id
        self.started: Optional[float] = None
        self.duration: Optional[float] = None

    @property
    def path(self) -> str:
        """Slash-joined ancestry, e.g. ``"batch/model_merge"``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}/{self.name}"

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self.started is not None
        self.duration = time.perf_counter() - self.started
        self.tracer._pop(self)


class Tracer:
    """Factory for spans bound to one registry and base label set.

    Args:
        registry: where span durations are recorded.
        labels: labels stamped on every span's metrics (e.g.
            ``{"engine": "microbatch"}``).
        metric: histogram family name (default ``stage_seconds``).
        quantiles: quantile points tracked per stage.
        sketch_every: quantile-sketch sampling factor for the emitted
            histograms (1 = sketch every observation).
        capture: keep a flat :class:`SpanRecord` per finished span in
            :attr:`records` (cross-process trace shipping / stitching).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        labels: Optional[Dict[str, str]] = None,
        metric: str = STAGE_SECONDS,
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
        sketch_every: int = 1,
        capture: bool = False,
    ) -> None:
        self.registry = registry
        self.labels = dict(labels or {})
        self.metric = metric
        self.quantiles = tuple(quantiles)
        self.sketch_every = sketch_every
        self.capture = capture
        self.records: List[SpanRecord] = []
        self._stack: List[Span] = []
        self._next_span_id = 1
        self._epoch = time.perf_counter()

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **labels: str) -> Span:
        """A new span for stage ``name`` (enter it with ``with``)."""
        merged = dict(self.labels)
        merged.update(labels)
        merged["stage"] = name
        span_id = self._next_span_id
        self._next_span_id += 1
        return Span(self, name, merged, self.current, span_id=span_id)

    def drain(self) -> List[SpanRecord]:
        """Hand over (and clear) the captured span records."""
        records, self.records = self.records, []
        return records

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)
        assert span.duration is not None
        self.registry.histogram(
            self.metric,
            quantiles=self.quantiles,
            sketch_every=self.sketch_every,
            **span.labels,
        ).observe(span.duration)
        if self.capture:
            assert span.started is not None
            self.records.append(
                SpanRecord(
                    span_id=span.span_id,
                    parent_id=(
                        span.parent.span_id
                        if span.parent is not None
                        else None
                    ),
                    name=span.name,
                    start_s=span.started - self._epoch,
                    duration_s=span.duration,
                    labels=span.labels,
                )
            )


def stage_seconds_by_stage(
    registry: MetricsRegistry, metric: str = STAGE_SECONDS, **label_filter: str
) -> Dict[str, float]:
    """Exact seconds spent per stage, read back from span histograms.

    Sums the ``metric`` family's histogram sums grouped by their
    ``stage`` label, restricted to children matching ``label_filter``
    (e.g. ``engine="sequential"``).
    """
    wanted = set(
        (str(k), str(v)) for k, v in label_filter.items()
    )
    totals: Dict[str, float] = {}
    for (name, labels), hist in registry._histograms.items():
        if name != metric or not wanted.issubset(labels):
            continue
        stage = dict(labels).get("stage", "")
        totals[stage] = totals.get(stage, 0.0) + hist.sum
    return totals
