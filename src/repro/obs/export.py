"""Telemetry export: JSONL event sink and Prometheus text exposition.

Two consumers, two formats:

* :class:`TelemetrySink` appends one JSON object per line to a file —
  periodic metric snapshots plus discrete run events (alerts,
  quarantines, checkpoints, run start/end). JSONL survives crashes
  (every line is flushed) and is trivially greppable/parsable, which is
  what the CI smoke step and offline analysis want.
* :func:`prometheus_exposition` renders a snapshot in the Prometheus
  text format (counters/gauges as-is, histograms as summaries with
  ``quantile`` labels plus ``_sum``/``_count``), so a scrape endpoint
  or textfile collector can serve the same registry.

Wired into the CLI via ``--metrics-out`` / ``--metrics-every``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot

PathLike = Union[str, Path]

#: Default name prefix for exposed metrics.
PROM_PREFIX = "repro_"


class TelemetrySink:
    """Append-only JSONL event stream for one run.

    Every event carries ``event`` (its kind), ``ts`` (wall-clock epoch
    seconds) and ``seq`` (a per-sink monotonic sequence number, so
    ordering survives coarse timestamps). Lines are flushed as written;
    a crash loses at most the event being formatted.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[TextIO] = open(
            self.path, "a", encoding="utf-8"
        )
        self._seq = 0

    def event(self, kind: str, **fields: Any) -> None:
        """Append one event line (no-op after :meth:`close`)."""
        if self._handle is None:
            return
        payload: Dict[str, Any] = {
            "event": kind, "ts": time.time(), "seq": self._seq
        }
        payload.update(fields)
        self._seq += 1
        self._handle.write(json.dumps(payload, separators=(",", ":")))
        self._handle.write("\n")
        self._handle.flush()

    def snapshot(
        self,
        source: Union[MetricsRegistry, MetricsSnapshot],
        exact: bool = False,
        **fields: Any,
    ) -> None:
        """Append a ``snapshot`` event with the registry's current state.

        Compact by default (quantile estimates only); pass
        ``exact=True`` to embed the full sketch state.
        """
        if isinstance(source, MetricsRegistry):
            source = source.snapshot()
        self.event("snapshot", metrics=source.as_dict(exact=exact), **fields)

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    items = [f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())]
    if extra:
        items.append(extra)
    if not items:
        return ""
    return "{" + ",".join(items) + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    return repr(float(value))


def prometheus_exposition(
    source: Union[MetricsRegistry, MetricsSnapshot],
    prefix: str = PROM_PREFIX,
) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters and gauges become single samples; histograms are exposed
    summary-style: one sample per tracked quantile (``quantile``
    label), plus ``<name>_sum`` and ``<name>_count``. Unset gauges and
    never-observed quantiles are skipped.
    """
    if isinstance(source, MetricsRegistry):
        source = source.snapshot()
    lines = []
    seen_types = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {prefix}{name} {kind}")

    for (name, labels), value in sorted(source.counters.items()):
        type_line(name, "counter")
        lines.append(
            f"{prefix}{name}{_format_labels(dict(labels))} "
            f"{_format_value(value)}"
        )
    for (name, labels), value in sorted(source.gauges.items()):
        if value is None:
            continue
        type_line(name, "gauge")
        lines.append(
            f"{prefix}{name}{_format_labels(dict(labels))} "
            f"{_format_value(value)}"
        )
    for (name, labels), state in sorted(source.histograms.items()):
        type_line(name, "summary")
        label_dict = dict(labels)
        for sketch in state.sketches:
            if sketch.value is None:
                continue
            quantile_label = f'quantile="{sketch.quantile:g}"'
            lines.append(
                f"{prefix}{name}"
                f"{_format_labels(label_dict, quantile_label)} "
                f"{_format_value(sketch.value)}"
            )
        lines.append(
            f"{prefix}{name}_sum{_format_labels(label_dict)} "
            f"{_format_value(state.sum)}"
        )
        lines.append(
            f"{prefix}{name}_count{_format_labels(label_dict)} "
            f"{_format_value(state.count)}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_exposition(
    source: Union[MetricsRegistry, MetricsSnapshot],
    path: PathLike,
    prefix: str = PROM_PREFIX,
) -> int:
    """Write the exposition text to ``path``; returns the byte count."""
    text = prometheus_exposition(source, prefix=prefix)
    data = text.encode("utf-8")
    Path(path).write_bytes(data)
    return len(data)
