"""Telemetry export: JSONL event sink and Prometheus text exposition.

Two consumers, two formats:

* :class:`TelemetrySink` appends one JSON object per line to a file —
  periodic metric snapshots plus discrete run events (alerts,
  quarantines, checkpoints, run start/end). JSONL survives crashes
  (every line is flushed) and is trivially greppable/parsable, which is
  what the CI smoke step and offline analysis want.
* :func:`prometheus_exposition` renders a snapshot in the Prometheus
  text format (counters/gauges as-is, histograms as summaries with
  ``quantile`` labels plus ``_sum``/``_count``), so a scrape endpoint
  or textfile collector can serve the same registry.

Wired into the CLI via ``--metrics-out`` / ``--metrics-every``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, TextIO, Union

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot

PathLike = Union[str, Path]

#: Default name prefix for exposed metrics.
PROM_PREFIX = "repro_"


class TelemetrySink:
    """Append-only JSONL event stream for one run.

    Every event carries ``event`` (its kind), ``ts`` (wall-clock epoch
    seconds) and ``seq`` (a per-sink monotonic sequence number, so
    ordering survives coarse timestamps). Lines are flushed as written;
    a crash loses at most the event being formatted.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[TextIO] = open(
            self.path, "a", encoding="utf-8"
        )
        self._seq = 0

    def event(self, kind: str, **fields: Any) -> None:
        """Append one event line (no-op after :meth:`close`)."""
        if self._handle is None:
            return
        payload: Dict[str, Any] = {
            "event": kind, "ts": time.time(), "seq": self._seq
        }
        payload.update(fields)
        self._seq += 1
        self._handle.write(json.dumps(payload, separators=(",", ":")))
        self._handle.write("\n")
        self._handle.flush()

    def snapshot(
        self,
        source: Union[MetricsRegistry, MetricsSnapshot],
        exact: bool = False,
        **fields: Any,
    ) -> None:
        """Append a ``snapshot`` event with the registry's current state.

        Compact by default (quantile estimates only); pass
        ``exact=True`` to embed the full sketch state.
        """
        if isinstance(source, MetricsRegistry):
            source = source.snapshot()
        self.event("snapshot", metrics=source.as_dict(exact=exact), **fields)

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    items = [f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())]
    if extra:
        items.append(extra)
    if not items:
        return ""
    return "{" + ",".join(items) + "}"


def _escape(value: str) -> str:
    """Label-value escaping per the exposition format: backslash first
    (so later escapes aren't double-escaped), then quote and newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    # HELP text escapes only backslash and newline (quotes are legal).
    return str(value).replace("\\", "\\\\").replace("\n", "\\n")


#: Operator-facing help strings for the well-known metric families;
#: families not listed get a generic HELP line (the format requires
#: HELP/TYPE once per family, before its first sample).
METRIC_HELP: Dict[str, str] = {
    "tweets_consumed_total": "Tweets drawn from the source stream.",
    "tweets_ingested_total": "Tweets handed to the engine after ingest.",
    "tweets_processed_total": "Tweets fully processed by the pipeline.",
    "tweets_quarantined_total": "Tweets quarantined to the dead-letter queue.",
    "overload_shed_total": "Tweets shed by the bounded ingest queue.",
    "retries_total": "Batch/partition retry attempts.",
    "batches_total": "Micro-batches completed.",
    "batch_seconds": "Wall-clock seconds per micro-batch.",
    "partition_seconds": "Runner-observed seconds per partition task.",
    "stage_seconds": "Driver-observed seconds per engine stage.",
    "worker_stage_seconds": "Worker-observed seconds per partition stage.",
    "tweet_stage_seconds": "Per-tweet seconds per pipeline stage.",
    "broadcast_encode_seconds": "Seconds pickling the batch broadcast.",
    "broadcast_decode_seconds": "Seconds decoding the broadcast per task.",
    "broadcast_decode_total": "Broadcast reads by resolution source.",
    "tweet_block_encode_seconds": "Seconds encoding the batch tweet block.",
    "transport_bytes_total": "Bytes shipped to workers, by channel.",
    "pipeline_fill": "In-flight pipelined batches (0 or 1).",
    "driver_idle_seconds": "Driver seconds blocked awaiting partitions.",
    "worker_idle_seconds": "Worker seconds idle between pipelined batches.",
    "partition_timeouts_total": "Partitions that blew their deadline.",
    "speculative_launches_total": "Speculative duplicate tasks launched.",
    "speculative_wins_total": "Speculative duplicates that won.",
    "pool_rebuilds_total": "Worker-pool rebuilds after lost workers.",
    "alerts_total": "Aggression alerts raised.",
    "checkpoints_total": "Checkpoints written.",
    "ingest_queue_depth": "Tweets waiting in the bounded ingest queue.",
    "degrade_level": "Current feature-degradation tier (0 = full).",
    "controller_n_partitions": "Partition count chosen by the controller.",
    "checkpoint_corrupt_total": "Corrupt checkpoint files skipped on resume.",
    "requests_total": "Serving requests answered, by endpoint and status.",
    "request_seconds": "Serving request latency, by endpoint.",
    "requests_degraded_total": "Requests answered below FULL feature tier.",
    "requests_error_total": "Requests that failed in the handler (500s).",
    "requests_shed_total": "Requests shed by admission control (429s).",
    "admission_queue_depth": "Requests waiting in the admission room.",
    "inflight_requests": "Requests currently being handled.",
    "snapshots_published_total": "Model snapshots published to the store.",
    "snapshot_rejected_total": "Snapshots refused (checksum/structure).",
    "snapshot_swaps_total": "Hot model swaps completed by the server.",
    "snapshot_latest_version": "Newest snapshot version in the store.",
    "serving_snapshot_version": "Snapshot version currently serving.",
}


def _format_value(value: float) -> str:
    return repr(float(value))


def prometheus_exposition(
    source: Union[MetricsRegistry, MetricsSnapshot],
    prefix: str = PROM_PREFIX,
) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters and gauges become single samples; histograms are exposed
    summary-style: one sample per tracked quantile (``quantile``
    label), plus ``<name>_sum`` and ``<name>_count``. Unset gauges and
    never-observed quantiles are skipped. ``# HELP`` and ``# TYPE``
    headers are emitted exactly once per family, before its first
    sample; label values are escaped (backslash, double-quote,
    newline) so adversarial label content cannot corrupt the format.
    """
    if isinstance(source, MetricsRegistry):
        source = source.snapshot()
    lines = []
    seen_types = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            help_text = METRIC_HELP.get(name, f"{name} (no help registered).")
            lines.append(f"# HELP {prefix}{name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {prefix}{name} {kind}")

    for (name, labels), value in sorted(source.counters.items()):
        type_line(name, "counter")
        lines.append(
            f"{prefix}{name}{_format_labels(dict(labels))} "
            f"{_format_value(value)}"
        )
    for (name, labels), value in sorted(source.gauges.items()):
        if value is None:
            continue
        type_line(name, "gauge")
        lines.append(
            f"{prefix}{name}{_format_labels(dict(labels))} "
            f"{_format_value(value)}"
        )
    for (name, labels), state in sorted(source.histograms.items()):
        type_line(name, "summary")
        label_dict = dict(labels)
        for sketch in state.sketches:
            if sketch.value is None:
                continue
            quantile_label = f'quantile="{sketch.quantile:g}"'
            lines.append(
                f"{prefix}{name}"
                f"{_format_labels(label_dict, quantile_label)} "
                f"{_format_value(sketch.value)}"
            )
        lines.append(
            f"{prefix}{name}_sum{_format_labels(label_dict)} "
            f"{_format_value(state.sum)}"
        )
        lines.append(
            f"{prefix}{name}_count{_format_labels(label_dict)} "
            f"{_format_value(state.count)}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_exposition(
    source: Union[MetricsRegistry, MetricsSnapshot],
    path: PathLike,
    prefix: str = PROM_PREFIX,
) -> int:
    """Write the exposition text to ``path``; returns the byte count."""
    text = prometheus_exposition(source, prefix=prefix)
    data = text.encode("utf-8")
    Path(path).write_bytes(data)
    return len(data)
