"""Unified observability layer: metrics, spans, telemetry export.

Every subsystem — the reference pipeline, both engines, the stream
supervisor, alerting — reports into a process-local
:class:`MetricsRegistry`; stage costs are measured with
:class:`Tracer`/:class:`Span` context managers; and runs export their
telemetry as JSONL events (:class:`TelemetrySink`) or Prometheus text
exposition (:func:`prometheus_exposition`). Partition-side registries
fold into the driver via :class:`MetricsSnapshot.merge`, exactly like
per-partition normalizer statistics.
"""

from repro.obs.console import OpsConsole
from repro.obs.export import (
    TelemetrySink,
    prometheus_exposition,
    write_exposition,
)
from repro.obs.logconfig import configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    HistogramState,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.profile import ProfileReport, ProfileSlice, profile_call
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import (
    SLO,
    Scorecard,
    SLOTracker,
    default_slos,
    family_quantile,
)
from repro.obs.tracing import (
    Span,
    SpanRecord,
    Tracer,
    WorkerTelemetry,
    span_tree,
    stage_seconds_by_stage,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramState",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_QUANTILES",
    "Span",
    "SpanRecord",
    "Tracer",
    "WorkerTelemetry",
    "span_tree",
    "stage_seconds_by_stage",
    "TelemetrySink",
    "prometheus_exposition",
    "write_exposition",
    "configure_logging",
    "get_logger",
    "OpsConsole",
    "FlightRecorder",
    "ProfileReport",
    "ProfileSlice",
    "profile_call",
    "SLO",
    "SLOTracker",
    "Scorecard",
    "default_slos",
    "family_quantile",
]
