"""Opt-in deterministic per-partition profiling (``--profile-partitions``).

Each partition task wraps its body in a ``cProfile.Profile`` —
deterministic tracing, not statistical sampling, so two runs over the
same tweets attribute the same call counts — and ships back a compact
:class:`ProfileSlice`: the top functions by cumulative time, already
aggregated per ``(file, line, function)``. The driver folds every
partition's slice into one :class:`ProfileReport` (plain dict merge by
function key, exactly like metric snapshots) and renders a top-K table
for the CLI / bench summary.

The full ``pstats`` table never crosses the process boundary: a slice
is bounded at :data:`SLICE_LIMIT` rows per partition, keeping the
overhead of shipping profiles negligible next to running them.
cProfile itself costs real time (~1.3-2x on tight Python loops), which
is why this is opt-in and excluded from the telemetry-overhead budget.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

#: Rows shipped back per partition (top by cumulative time).
SLICE_LIMIT = 40

#: ``(filename, lineno, function)`` — pstats' function key.
FuncKey = Tuple[str, int, str]


@dataclass
class ProfileSlice:
    """One partition's aggregated profile rows.

    ``rows`` maps the pstats function key to
    ``(ncalls, tottime, cumtime)``; ``wall_s`` is the profiled body's
    wall time, kept so merged percentages stay meaningful.
    """

    rows: Dict[FuncKey, Tuple[int, float, float]] = field(
        default_factory=dict
    )
    wall_s: float = 0.0


def profile_call(func: Callable[[], Any]) -> Tuple[Any, ProfileSlice]:
    """Run ``func`` under cProfile; return ``(result, slice)``."""
    profiler = cProfile.Profile()
    result = profiler.runcall(func)
    stats = pstats.Stats(profiler)
    rows: Dict[FuncKey, Tuple[int, float, float]] = {}
    # stats.stats maps func_key -> (cc, nc, tottime, cumtime, callers).
    ranked = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][3],
        reverse=True,
    )
    for key, (_cc, ncalls, tottime, cumtime, _callers) in ranked[
        :SLICE_LIMIT
    ]:
        rows[key] = (ncalls, tottime, cumtime)
    wall = getattr(stats, "total_tt", 0.0)
    return result, ProfileSlice(rows=rows, wall_s=wall)


@dataclass
class ProfileReport:
    """Driver-side merge of many partitions' profile slices."""

    rows: Dict[FuncKey, Tuple[int, float, float]] = field(
        default_factory=dict
    )
    wall_s: float = 0.0
    n_slices: int = 0

    def merge(self, piece: ProfileSlice) -> None:
        """Fold one partition's slice into the cumulative report."""
        self.n_slices += 1
        self.wall_s += piece.wall_s
        rows = self.rows
        for key, (ncalls, tottime, cumtime) in piece.rows.items():
            prior = rows.get(key)
            if prior is None:
                rows[key] = (ncalls, tottime, cumtime)
            else:
                rows[key] = (
                    prior[0] + ncalls,
                    prior[1] + tottime,
                    prior[2] + cumtime,
                )

    def top(self, k: int = 15) -> List[Dict[str, Any]]:
        """Top-``k`` functions by total (self) time, JSON-friendly."""
        ranked = sorted(
            self.rows.items(), key=lambda item: item[1][1], reverse=True
        )
        out: List[Dict[str, Any]] = []
        for (filename, lineno, funcname), (
            ncalls,
            tottime,
            cumtime,
        ) in ranked[:k]:
            out.append(
                {
                    "function": f"{filename}:{lineno}({funcname})",
                    "ncalls": ncalls,
                    "tottime_s": tottime,
                    "cumtime_s": cumtime,
                }
            )
        return out

    def format_top(self, k: int = 15) -> str:
        """Readable top-``k`` table (one line per function)."""
        lines = [
            f"partition profile — top {k} by self time "
            f"({self.n_slices} partitions, {self.wall_s:.3f}s profiled)"
        ]
        for row in self.top(k):
            lines.append(
                f"  {row['tottime_s']:8.4f}s self {row['cumtime_s']:8.4f}s "
                f"cum {row['ncalls']:>9} calls  {row['function']}"
            )
        return "\n".join(lines)
